#!/usr/bin/env bash
# Golden gate for this repository. Fully offline: formatting, the
# baldur-lint static-analysis wall, a release build, the test suite (with
# and without the `validate` runtime-invariant feature), and a timestamped
# JSON summary under results/. Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

# `./ci.sh --bless` regenerates the golden snapshots under results/golden/
# (see tests/golden_suite.rs) and the registry-derived table in
# EXPERIMENTS.md, then exits; review the diff like any other.
if [ "${1:-}" = "--bless" ]; then
    echo "=== blessing golden snapshots (results/golden/)"
    BALDUR_BLESS=1 cargo test -q --test golden_suite
    echo "=== blessing the EXPERIMENTS.md registry table"
    BALDUR_BLESS=1 cargo test -q --test registry_suite experiments_md_table_matches_registry
    echo "=== blessing the lint report snapshot (results/golden/lint.json)"
    BALDUR_BLESS=1 cargo test -q --test lint_wall lint_json_snapshot_is_fresh
    echo "=== blessing the perf work-counter snapshot (results/golden/perf_ops.json)"
    BALDUR_BLESS=1 cargo test -q --test perf_suite perf_ops_golden_is_fresh
    exit 0
fi

stamp="$(date -u +%Y%m%dT%H%M%SZ)"
mkdir -p results
summary="results/ci_${stamp}.json"

steps=()
status=pass

run_step() {
    local name="$1"
    shift
    local t0 t1 rc
    t0=$(date +%s)
    echo "=== ${name}: $*"
    if "$@"; then
        rc=0
    else
        rc=$?
        status=fail
    fi
    t1=$(date +%s)
    steps+=("{\"name\":\"${name}\",\"command\":\"$*\",\"exit\":${rc},\"seconds\":$((t1 - t0))}")
    if [ "${rc}" -ne 0 ]; then
        write_summary
        echo "=== FAILED at ${name} (summary: ${summary})"
        exit "${rc}"
    fi
}

write_summary() {
    {
        echo "{"
        echo "  \"timestamp\": \"${stamp}\","
        echo "  \"status\": \"${status}\","
        echo "  \"steps\": ["
        local first=1
        for s in "${steps[@]}"; do
            if [ "${first}" -eq 1 ]; then first=0; else echo ","; fi
            printf '    %s' "${s}"
        done
        echo ""
        echo "  ]"
        echo "}"
    } >"${summary}"
}

run_step fmt cargo fmt --all --check
run_step lint cargo run --release -p baldur-lint
# The lint crate holds itself to the strictest bar: every rule, zero
# allowlist entries. A machine-readable report lands in results/lint.json
# on the ordinary run above; the snapshot test pins its shape.
run_step lint-self cargo run --release -p baldur-lint -- --self-check
run_step lint-json-smoke cargo test -q --test lint_wall lint_json_snapshot_is_fresh
run_step build cargo build --release
run_step test cargo test -q
# Explicit tier-1 gates for the sweep engine (both also run under `cargo
# test`, but a named step makes a determinism or snapshot break obvious):
# byte-identical output at 1/2/8 workers, and the golden CSV snapshots.
run_step thread-invariance cargo test -q --test thread_invariance
run_step golden cargo test -q --test golden_suite
run_step test-validate cargo test --features validate -q
run_step test-workspace cargo test --workspace -q
# Registry gates: the runner must enumerate every registered experiment,
# and the completeness suite enforces bin <-> spec bijection, golden (or
# recorded exemption) coverage, descriptor round-trips, and a fresh
# EXPERIMENTS.md table.
run_step registry-smoke cargo run --release -p baldur-bench --bin all_figures -- --list
run_step registry-completeness cargo test -q --test registry_suite
# Fault-injection smoke: small topology, 5% failures, fixed seed; asserts
# packet conservation and run-to-run byte-identity, exits nonzero on drift.
run_step fault-smoke cargo run --release -p baldur-bench --bin faults -- --smoke
# Crash-recovery smoke: SIGKILL a sweep subprocess mid-run, resume it from
# the completion journal, and require byte-identical figure output.
run_step crash-recovery-smoke cargo test -q --test crash_recovery
# Chaos smoke: seeded fail/repair schedules with the runtime invariant
# oracle on; asserts zero violations, byte-identical repeat runs, and the
# recovery-time bound, and prints a minimized reproduction on failure.
run_step chaos-smoke cargo run --release -p baldur-bench --bin chaos -- --smoke
# Overload smoke: incast/hotcast storms at 0.5x-4x load with the
# admission/pacing/deadline controls on; asserts the graceful-degradation
# floor, a quiet starvation/occupancy oracle, exact packet conservation,
# and byte-identical repeat runs.
run_step overload-smoke cargo run --release -p baldur-bench --bin overload -- --smoke
# Perf smoke: the hot-path benchmark workloads re-run their exact work
# counters (events popped, symbols coded, packets delivered) and gate
# them against results/golden/perf_ops.json — byte-identical at one
# worker thread and at eight; wall-clock numbers stay advisory.
run_step perf-smoke-1t env BALDUR_THREADS=1 cargo run --release -p baldur-bench --bin perf -- --smoke
run_step perf-smoke-8t env BALDUR_THREADS=8 cargo run --release -p baldur-bench --bin perf -- --smoke
# Scaling smoke: the 1K->4K head of the million-endpoint curve through
# the SoA kernel; asserts byte-identical repeat runs, 1-vs-8-thread sweep
# invariance, and packet conservation (wall/RSS columns stay advisory).
run_step scaling-smoke cargo run --release -p baldur-bench --bin scaling -- --smoke

write_summary
echo "=== OK (summary: ${summary})"

//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree as JSON text and parses JSON text back into values.
//!
//! Output is deterministic: float formatting is fixed (shortest round-trip
//! via `{}` with a `.0` suffix for integral values), non-finite floats
//! render as `null` (matching real serde_json), and map keys were already
//! sorted by the vendored `serde` when the tree was built.
//!
//! For artifacts that must round-trip *exactly* — the content-addressed run
//! cache — [`to_string_exact`] renders non-finite floats as the bare tokens
//! `NaN` / `Infinity` / `-Infinity` instead of `null`, and the parser
//! accepts those tokens, so `parse(render(x)) == x` bit-for-bit for every
//! finite and non-finite `f64` (shortest round-trip formatting guarantees
//! the finite case).

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn parse(msg: impl Into<String>, pos: usize) -> Self {
        Error(format!("{} at byte {pos}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// How [`render`] writes a non-finite float.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NonFinite {
    /// `null`, matching real serde_json (information-losing).
    Null,
    /// Bare `NaN` / `Infinity` / `-Infinity` tokens (non-standard JSON,
    /// but exactly invertible by this crate's parser).
    Tokens,
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the vendored renderer; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, NonFinite::Null, &mut out);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Never fails with the vendored renderer; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, NonFinite::Null, &mut out);
    Ok(out)
}

/// Renders `value` as compact JSON bytes.
///
/// # Errors
///
/// Never fails with the vendored renderer; the `Result` mirrors the real
/// crate's signature.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Renders `value` as compact JSON with *exactly invertible* floats:
/// non-finite values come out as `NaN` / `Infinity` / `-Infinity` instead
/// of `null`. Not standard JSON — use only for artifacts this crate itself
/// parses back (e.g. the run cache).
///
/// # Errors
///
/// Never fails with the vendored renderer; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_exact<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, NonFinite::Tokens, &mut out);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Accepts standard JSON plus the bare tokens `NaN` / `Infinity` /
/// `-Infinity` emitted by [`to_string_exact`]. Numbers without a fraction
/// or exponent parse as `Int`/`UInt`; everything else as `Float`.
///
/// # Errors
///
/// On malformed input, with the byte offset of the first problem.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(v)
}

/// Parses JSON text straight into a [`Deserialize`] type.
///
/// # Errors
///
/// On malformed JSON, or when the parsed tree does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    T::from_value(&v).map_err(|e| Error(e.message().to_string()))
}

fn render(value: &Value, indent: Option<usize>, depth: usize, nf: NonFinite, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // Keep floats visually distinct from integers, as the real
                // serde_json does.
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                    out.push_str(".0");
                }
            } else {
                match nf {
                    NonFinite::Null => out.push_str("null"),
                    NonFinite::Tokens if x.is_nan() => out.push_str("NaN"),
                    NonFinite::Tokens if *x > 0.0 => out.push_str("Infinity"),
                    NonFinite::Tokens => out.push_str("-Infinity"),
                }
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, nf, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, nf, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser over raw bytes (UTF-8 multibyte sequences
/// only ever appear inside strings, where they are copied through intact).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'N') => self.literal("NaN", Value::Float(f64::NAN)),
            Some(b'I') => self.literal("Infinity", Value::Float(f64::INFINITY)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::parse(
                format!("unexpected character `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // past '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // past '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(Error::parse("expected string key", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(Error::parse("expected `:`", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // past opening '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy a maximal run of plain bytes in one slice operation.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in string", start))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(Error::parse("control character in string", self.pos)),
                None => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a following \uXXXX low half.
                    if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(Error::parse("invalid low surrogate", self.pos));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(Error::parse("unpaired surrogate", self.pos));
                    }
                } else {
                    hi
                };
                let ch = char::from_u32(code)
                    .ok_or_else(|| Error::parse("invalid unicode escape", self.pos))?;
                out.push(ch);
            }
            other => {
                return Err(Error::parse(
                    format!("invalid escape `\\{}`", other as char),
                    self.pos - 1,
                ))
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated unicode escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("invalid unicode escape", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    #[allow(clippy::cast_precision_loss)]
    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            // `-Infinity` from the exact rendering mode.
            if self.peek() == Some(b'I') {
                return self.literal("Infinity", Value::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(format!("invalid number `{text}`"), start));
        }
        if let Some(digits) = text.strip_prefix('-') {
            // Negative integer; fall back to f64 if it overflows i64.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            return digits
                .parse::<f64>()
                .map(|x| Value::Float(-x))
                .map_err(|_| Error::parse(format!("invalid number `{text}`"), start));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_content() {
        let v = vec![("a".to_string(), 1u32), ("b".to_string(), 2u32)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"[["a",1],["b",2]]"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\""));
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_keep_a_decimal_point_and_nan_is_null() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value(" 42 ").unwrap(), Value::UInt(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse_value("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse_value("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        assert_eq!(
            parse_value(r#"[1,[2,3],{"a":null}]"#).unwrap(),
            Value::Array(vec![
                Value::UInt(1),
                Value::Array(vec![Value::UInt(2), Value::UInt(3)]),
                Value::Object(vec![("a".into(), Value::Null)]),
            ])
        );
        assert_eq!(parse_value(" [ ] ").unwrap(), Value::Array(vec![]));
        assert_eq!(parse_value("{ }").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse_value(r#""a\"b\\c\nAé""#).unwrap(),
            Value::Str("a\"b\\c\nAé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse_value(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert!(parse_value(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("{\"a\"}").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn exact_mode_round_trips_non_finite() {
        let v = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.25];
        let text = to_string_exact(&v).unwrap();
        assert_eq!(text, "[NaN,Infinity,-Infinity,0.25]");
        let Value::Array(items) = parse_value(&text).unwrap() else {
            panic!("expected array");
        };
        assert!(matches!(items[0], Value::Float(x) if x.is_nan()));
        assert_eq!(items[1], Value::Float(f64::INFINITY));
        assert_eq!(items[2], Value::Float(f64::NEG_INFINITY));
        assert_eq!(items[3], Value::Float(0.25));
    }

    #[test]
    fn finite_floats_round_trip_exactly() {
        // Shortest round-trip formatting (`{}`) guarantees parse() restores
        // the identical bits for every finite f64; spot-check awkward ones.
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            123456789.123456789,
        ] {
            let text = to_string_exact(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "text was {text}");
        }
    }

    #[test]
    fn from_str_deserializes_typed() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let pair: (u32, f64) = from_str("[7,0.5]").unwrap();
        assert_eq!(pair, (7, 0.5));
        assert!(from_str::<Vec<u32>>("[1,-2]").is_err());
    }
}

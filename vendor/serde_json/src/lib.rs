//! Offline stand-in for `serde_json`, rendering the vendored `serde`
//! [`Value`] tree as JSON text.
//!
//! Output is deterministic: float formatting is fixed (shortest round-trip
//! via `{}` with a `.0` suffix for integral values), non-finite floats
//! render as `null` (matching real serde_json), and map keys were already
//! sorted by the vendored `serde` when the tree was built.

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. The vendored renderer is infallible, so this is
/// only ever constructed by future fallible extensions; it exists to keep
/// the `Result` signature of the real crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the vendored renderer; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Never fails with the vendored renderer; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Renders `value` as compact JSON bytes.
///
/// # Errors
///
/// Never fails with the vendored renderer; the `Result` mirrors the real
/// crate's signature.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // Keep floats visually distinct from integers, as the real
                // serde_json does.
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_content() {
        let v = vec![("a".to_string(), 1u32), ("b".to_string(), 2u32)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"[["a",1],["b",2]]"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\""));
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_keep_a_decimal_point_and_nan_is_null() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}

//! Derive macros for the vendored serde facade.
//!
//! crates.io is unreachable in this build environment, so `syn`/`quote` are
//! unavailable; the derive input is parsed with a small hand-rolled walker
//! over [`proc_macro::TokenTree`]s instead. It supports the shapes this
//! workspace actually derives on:
//!
//! * structs with named fields,
//! * tuple structs (serialized transparently when single-field or marked
//!   `#[serde(transparent)]`, as an array otherwise),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation),
//! * `#[serde(default)]` on named fields — absent keys deserialize to
//!   `Default::default()` (schema-evolution for committed artifacts).
//!
//! Generic type parameters are intentionally rejected with a clear panic —
//! nothing in the workspace derives on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (named structs/variants) or index.
#[derive(Debug)]
struct Fields {
    /// Named field identifiers with their `#[serde(default)]` flag, in
    /// declaration order.
    named: Vec<(String, bool)>,
    /// Count of tuple fields (used when `named` is empty).
    tuple_len: usize,
    /// True for named-field bodies even when empty.
    is_named: bool,
}

/// Flags gathered from the `#[serde(...)]` attributes ahead of an item.
#[derive(Debug, Default, Clone, Copy)]
struct Attrs {
    /// `#[serde(transparent)]` was present.
    transparent: bool,
    /// `#[serde(default)]` was present (named fields only).
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Struct { fields: Fields, transparent: bool },
    Unit,
    Enum(Vec<(String, Fields, bool)>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize` (lowering into `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let body = serialize_body(&parsed);
    let name = &parsed.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` (rebuilding from
/// `serde::Value`), mirroring the shapes `derive(Serialize)` emits so any
/// serialized value round-trips.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let body = deserialize_body(&parsed);
    let name = &parsed.name;
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

fn deserialize_body(input: &Input) -> String {
    let name = &input.name;
    match &input.shape {
        Shape::Unit => format!(
            "match v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"{name}\", other)),\n\
             }}"
        ),
        Shape::Struct {
            fields,
            transparent,
        } => {
            if fields.is_named {
                let inits = named_fields_init(name, &fields.named);
                format!(
                    "let entries = ::serde::de::object(v, \"{name}\")?;\n\
                     let _ = &entries;\n\
                     ::std::result::Result::Ok({name} {{ {inits} }})"
                )
            } else if *transparent || fields.tuple_len == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let n = fields.tuple_len;
                let elems = tuple_elems_init(name, n);
                format!(
                    "let items = ::serde::de::array(v, \"{name}\", {n})?;\n\
                     ::std::result::Result::Ok({name}({elems}))"
                )
            }
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields, transparent) in variants {
                if !fields.is_named && fields.tuple_len == 0 {
                    unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                } else if fields.is_named {
                    let inits = named_fields_init(&format!("{name}::{vname}"), &fields.named);
                    tagged_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                             let entries = ::serde::de::object(inner, \"{name}::{vname}\")?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                         }}\n"
                    ));
                } else if *transparent || fields.tuple_len == 1 {
                    tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                    ));
                } else {
                    let n = fields.tuple_len;
                    let elems = tuple_elems_init(&format!("{name}::{vname}"), n);
                    tagged_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                             let items = \
                             ::serde::de::array(inner, \"{name}::{vname}\", {n})?;\n\
                             ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                         }}\n"
                    ));
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => ::std::result::Result::Err(\
                             ::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"enum {name}\", other)),\n\
                 }}"
            )
        }
    }
}

/// `f1: ::serde::de::field(entries, "Ty", "f1")?, ...` initializers for a
/// named-field struct or enum variant. Fields marked `#[serde(default)]`
/// go through `field_or_default` so their absence is not an error.
fn named_fields_init(ty: &str, names: &[(String, bool)]) -> String {
    names
        .iter()
        .map(|(f, default)| {
            let getter = if *default {
                "field_or_default"
            } else {
                "field"
            };
            format!("{f}: ::serde::de::{getter}(entries, \"{ty}\", \"{f}\")?")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// `::serde::de::elem(items, "Ty", 0)?, ...` initializers for a tuple shape.
fn tuple_elems_init(ty: &str, n: usize) -> String {
    (0..n)
        .map(|i| format!("::serde::de::elem(items, \"{ty}\", {i})?"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn serialize_body(input: &Input) -> String {
    match &input.shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Struct {
            fields,
            transparent,
        } => {
            if fields.is_named {
                named_fields_value(&fields.named, "self.")
            } else if *transparent || fields.tuple_len == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..fields.tuple_len)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let name = &input.name;
            let mut arms = String::new();
            for (vname, fields, transparent) in variants {
                let arm = if fields.is_named {
                    let binds = fields
                        .named
                        .iter()
                        .map(|(f, _)| f.as_str())
                        .collect::<Vec<_>>()
                        .join(", ");
                    let inner = named_fields_value(&fields.named, "");
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {inner})]),"
                    )
                } else if fields.tuple_len == 0 {
                    format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    )
                } else {
                    let binds: Vec<String> =
                        (0..fields.tuple_len).map(|i| format!("f{i}")).collect();
                    let inner = if *transparent || fields.tuple_len == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {inner})]),",
                        binds.join(", ")
                    )
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

fn named_fields_value(names: &[(String, bool)], accessor_prefix: &str) -> String {
    let items: Vec<String> = names
        .iter()
        .map(|(f, _)| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&{accessor_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let transparent = skip_attributes(&tokens, &mut i).transparent;
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                shape: Shape::Struct {
                    fields: parse_named_fields(g.stream()),
                    transparent,
                },
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                shape: Shape::Struct {
                    fields: Fields {
                        named: Vec::new(),
                        tuple_len: count_tuple_fields(g.stream()),
                        is_named: false,
                    },
                    transparent,
                },
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input {
                name,
                shape: Shape::Unit,
            },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                shape: Shape::Enum(parse_variants(g.stream())),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive on `{other} {name}`"),
    }
}

/// Skips leading attributes; returns the `#[serde(...)]` flags found
/// among them.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Attrs {
    let mut attrs = Attrs::default();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if attribute_has_serde_word(g.stream(), "transparent") {
                attrs.transparent = true;
            }
            if attribute_has_serde_word(g.stream(), "default") {
                attrs.default = true;
            }
            *i += 1;
        }
    }
    attrs
}

fn attribute_has_serde_word(stream: TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == word))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past a type (or discriminant expression) until a top-level `,`,
/// tracking `<`/`>` nesting so commas inside generics don't split fields.
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    let mut prev_dash = false;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' if prev_dash => {} // `->` in fn types: not a closer
                '>' => angle_depth -= 1,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        names.push((field, attrs.default));
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
    }
    Fields {
        named: names,
        tuple_len: 0,
        is_named: true,
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields, bool)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let transparent = skip_attributes(&tokens, &mut i).transparent;
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields {
                    named: Vec::new(),
                    tuple_len: count_tuple_fields(g.stream()),
                    is_named: false,
                }
            }
            _ => Fields {
                named: Vec::new(),
                tuple_len: 0,
                is_named: false,
            },
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1;
        variants.push((vname, fields, transparent));
    }
    variants
}

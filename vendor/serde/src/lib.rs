//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal serialization facade under the `serde`
//! package name. It supports exactly what the Baldur reproduction uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (including
//!   `#[serde(transparent)]` newtypes),
//! * `T: serde::Serialize` bounds on JSON-report helpers,
//! * rendering through the sibling vendored `serde_json` crate.
//!
//! [`Serialize`] lowers a value into a [`Value`] tree; map keys are always
//! emitted in sorted order so serialized output is byte-stable regardless of
//! hash-map iteration order (a determinism requirement checked by
//! `baldur-lint`).

pub use baldur_serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree, the intermediate representation every
/// [`Serialize`] implementation lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Lowers a value into a [`Value`] tree for JSON rendering.
pub trait Serialize {
    /// The value as a JSON tree.
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`.
///
/// The reproduction only ever serializes (reports, figures, CSV/JSON
/// artifacts); nothing is parsed back, so this carries no methods. It exists
/// so `#[derive(Deserialize)]` in the seed code keeps compiling.
pub trait Deserialize: Sized {}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<K: std::fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    /// Hash maps serialize with keys sorted lexicographically so the output
    /// is independent of iteration order.
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V: Deserialize> Deserialize for HashMap<K, V> {}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta", 1u32);
        m.insert("alpha", 2u32);
        m.insert("mid", 3u32);
        let Value::Object(entries) = m.to_value() else {
            panic!("expected object");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn option_and_nested() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![(1u32, 2.5f64)].to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.5)])])
        );
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal serialization facade under the `serde`
//! package name. It supports exactly what the Baldur reproduction uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (including
//!   `#[serde(transparent)]` newtypes),
//! * `T: serde::Serialize` bounds on JSON-report helpers,
//! * rendering through the sibling vendored `serde_json` crate.
//!
//! [`Serialize`] lowers a value into a [`Value`] tree; map keys are always
//! emitted in sorted order so serialized output is byte-stable regardless of
//! hash-map iteration order (a determinism requirement checked by
//! `baldur-lint`). [`Deserialize`] is the inverse — it rebuilds a value from
//! a [`Value`] tree (parsed from JSON by the sibling `serde_json`), which is
//! what the content-addressed run cache uses to replay stored reports.

pub use baldur_serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree, the intermediate representation every
/// [`Serialize`] implementation lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Lowers a value into a [`Value`] tree for JSON rendering.
pub trait Serialize {
    /// The value as a JSON tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from a [`Value`] tree (the inverse of
/// [`Serialize`]).
///
/// Unlike real serde there is no `Deserializer` abstraction: the only
/// source format in this workspace is the vendored `serde_json`, which
/// parses text into a [`Value`] first. Derived impls mirror the shapes
/// [`Serialize`] emits — named structs as objects, single-field tuple
/// structs transparently, enums externally tagged — so any value produced
/// by `to_value` round-trips through `from_value`.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    ///
    /// # Errors
    /// Returns a [`DeError`] describing the first structural mismatch
    /// (wrong kind, missing field, unknown enum variant, bad length).
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected WHAT, found KIND" — the workhorse mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", got.kind()))
    }

    /// An enum tag that names no variant of `ty`.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError::new(format!("unknown variant `{tag}` for enum {ty}"))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// A short name for the value's JSON kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `key` in an object value (first match; `None` otherwise
    /// or when `self` is not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Helpers used by `#[derive(Deserialize)]`-generated code.
///
/// Public because the generated impls live in downstream crates, but not
/// intended for direct use.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Views `v` as an object (for a named-field struct or variant `ty`).
    ///
    /// # Errors
    /// When `v` is not an object.
    pub fn object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
        match v {
            Value::Object(entries) => Ok(entries),
            other => Err(DeError::expected(ty, other)),
        }
    }

    /// Views `v` as an array of exactly `len` elements (tuple shapes).
    ///
    /// # Errors
    /// When `v` is not an array or has the wrong length.
    pub fn array<'a>(v: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], DeError> {
        match v {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(DeError::new(format!(
                "expected {len}-element array for {ty}, found {} elements",
                items.len()
            ))),
            other => Err(DeError::expected(ty, other)),
        }
    }

    /// Extracts and deserializes field `name` of struct/variant `ty`.
    ///
    /// # Errors
    /// When the field is missing or its value does not deserialize.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        ty: &str,
        name: &str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| DeError::new(format!("in {ty}.{name}: {}", e.message()))),
            None => Err(DeError::new(format!("missing field `{name}` in {ty}"))),
        }
    }

    /// Extracts and deserializes field `name` of struct/variant `ty`,
    /// falling back to `T::default()` when the key is absent (the
    /// `#[serde(default)]` contract: older artifacts written before the
    /// field existed keep parsing).
    ///
    /// # Errors
    /// When the field is present but malformed.
    pub fn field_or_default<T: Deserialize + Default>(
        entries: &[(String, Value)],
        ty: &str,
        name: &str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| DeError::new(format!("in {ty}.{name}: {}", e.message()))),
            None => Ok(T::default()),
        }
    }

    /// Deserializes element `idx` of a tuple shape `ty`.
    ///
    /// # Errors
    /// When the element does not deserialize (bounds are checked by
    /// [`array`] beforehand).
    pub fn elem<T: Deserialize>(items: &[Value], ty: &str, idx: usize) -> Result<T, DeError> {
        T::from_value(&items[idx])
            .map_err(|e| DeError::new(format!("in {ty}.{idx}: {}", e.message())))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!(
                        "{wide} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::new(format!("{u} out of range for {}", stringify!($t)))
                    })?,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!(
                        "{wide} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    /// Accepts any numeric value; `null` maps to NaN, matching the default
    /// JSON rendering of non-finite floats.
    #[allow(clippy::cast_precision_loss)]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeError::new(format!(
                        "expected single-char string, got {s:?}"
                    ))),
                }
            }
            other => Err(DeError::expected("char", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    /// `null` is `None`; anything else must deserialize as `T`. (A
    /// round-trip caveat inherited from the untagged representation:
    /// `Some(NaN)` serializes as `null` and comes back as `None`.)
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = de::array(v, "fixed-size array", N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length changed during deserialization"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = de::array(v, "tuple", LEN)?;
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = de::object(v, "map")?;
        entries
            .iter()
            .map(|(k, val)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| DeError::new(format!("unparseable map key {k:?}")))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    /// Hash maps serialize with keys sorted lexicographically so the output
    /// is independent of iteration order.
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K: std::str::FromStr + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = de::object(v, "map")?;
        entries
            .iter()
            .map(|(k, val)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| DeError::new(format!("unparseable map key {k:?}")))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta", 1u32);
        m.insert("alpha", 2u32);
        m.insert("mid", 3u32);
        let Value::Object(entries) = m.to_value() else {
            panic!("expected object");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn option_and_nested() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![(1u32, 2.5f64)].to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.5)])])
        );
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i16::from_value(&(-7i16).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(char::from_value(&'x'.to_value()), Ok('x'));
        assert_eq!(<()>::from_value(&().to_value()), Ok(()));
    }

    #[test]
    fn numeric_range_checks() {
        assert!(u8::from_value(&Value::UInt(256)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(i8::from_value(&Value::Int(128)).is_err());
        // Cross-kind integers are accepted when in range.
        assert_eq!(u64::from_value(&Value::Int(3)), Ok(3));
        assert_eq!(i64::from_value(&Value::UInt(3)), Ok(3));
    }

    #[test]
    fn float_accepts_null_as_nan() {
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert_eq!(f64::from_value(&Value::Int(-2)), Ok(-2.0));
        assert!(f64::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));

        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()), Ok(arr));
        assert!(<[f64; 3]>::from_value(&arr.to_value()).is_err());

        let tup = (1u32, "a".to_string(), 0.5f64);
        assert_eq!(<(u32, String, f64)>::from_value(&tup.to_value()), Ok(tup));

        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::UInt(9)), Ok(Some(9)));

        let mut m = std::collections::BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(1u32, "y".to_string());
        assert_eq!(BTreeMap::<u32, String>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn errors_carry_context() {
        let obj = Value::Object(vec![("a".into(), Value::Str("nope".into()))]);
        let err = de::field::<u32>(de::object(&obj, "T").unwrap(), "T", "a").unwrap_err();
        assert!(err.message().contains("T.a"), "got: {err}");
        let err = de::field::<u32>(de::object(&obj, "T").unwrap(), "T", "b").unwrap_err();
        assert!(err.message().contains("missing field `b`"), "got: {err}");
    }
}

//! Quickstart: simulate the Baldur all-optical network and one electrical
//! baseline on the same traffic, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use baldur::prelude::*;

fn main() {
    let nodes = 128;
    let workload = Workload::Synthetic {
        pattern: Pattern::RandomPermutation,
        load: 0.5,
        packets_per_node: 200,
    };

    println!("simulating {nodes} nodes, random permutation @ 0.5 load...\n");
    for (name, network) in NetworkKind::paper_lineup(nodes) {
        let cfg = RunConfig::new(nodes, network, workload);
        let r = baldur::run(&cfg);
        println!(
            "{name:>14}: avg {:>9.1} ns | p99 {:>9.1} ns | delivered {:>5.1}% | drops/traversal {:>6.3}%",
            r.avg_ns,
            r.p99_ns,
            r.delivery_ratio() * 100.0,
            r.drop_rate * 100.0
        );
    }

    println!("\nBaldur routes packets entirely in the optical domain: no");
    println!("buffers, no clock recovery, no O-E/E-O conversions — drops are");
    println!("handled by source retransmission with exponential backoff.");
}

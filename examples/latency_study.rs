//! A Figure-6-style load sweep on a single pattern, printed as a table.
//!
//! ```sh
//! cargo run --release --example latency_study
//! ```

use baldur::prelude::*;

fn main() {
    let nodes = 128;
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9];
    println!("transpose on {nodes} nodes: average latency (ns) by load\n");
    print!("{:>14}", "network");
    for l in loads {
        print!("{l:>10.1}");
    }
    println!();
    for (name, network) in NetworkKind::paper_lineup(nodes) {
        print!("{name:>14}");
        for load in loads {
            let cfg = RunConfig::new(
                nodes,
                network.clone(),
                Workload::Synthetic {
                    pattern: Pattern::Transpose,
                    load,
                    packets_per_node: 150,
                },
            );
            let r = baldur::run(&cfg);
            print!("{:>10.0}", r.avg_ns);
        }
        println!();
    }
    println!("\nwatch dragonfly and fat-tree saturate while the two");
    println!("multi-butterfly networks (Baldur, electrical MB) stay flat —");
    println!("and Baldur stays within a small factor of the 200 ns ideal.");
}

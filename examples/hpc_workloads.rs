//! Replay the four synthetic Design Forward HPC traces on Baldur and the
//! ideal network.
//!
//! ```sh
//! cargo run --release --example hpc_workloads
//! ```

use baldur::prelude::*;

fn main() {
    let nodes = 64;
    println!("HPC traces on {nodes} nodes (avg latency / completion time)\n");
    println!(
        "{:>4} | {:>22} | {:>22}",
        "app", "baldur", "ideal (200 ns flat)"
    );
    for app in HpcApp::ALL {
        let mut cells = Vec::new();
        for network in [
            NetworkKind::Baldur(BaldurParams::paper_for(nodes as u64)),
            NetworkKind::Ideal,
        ] {
            let cfg = RunConfig::new(
                nodes,
                network,
                Workload::Hpc {
                    app,
                    params: TraceParams::default_scale(),
                },
            );
            let r = baldur::run(&cfg);
            cells.push(format!(
                "{:>7.0} ns / {:>8.1} us",
                r.avg_ns,
                r.sim_end_ns / 1e3
            ));
        }
        println!("{:>4} | {} | {}", app.name(), cells[0], cells[1]);
    }
    println!("\ncompletion time tracks the dependency structure: receives");
    println!("gate sends, so network latency serializes whole phases.");
}

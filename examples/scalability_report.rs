//! Power, cost, and packaging summary across scales (Figures 8 and 10 plus
//! Sec. IV-G in one report).
//!
//! ```sh
//! cargo run --release --example scalability_report
//! ```

use baldur::cost::{cost_per_node, packaging_for};
use baldur::power::NetworkPower;

fn main() {
    println!("Baldur scalability: 1K -> 1M server nodes\n");
    println!(
        "{:>9} | {:>9} | {:>10} | {:>9} | {:>8} | vs best electrical",
        "nodes", "W/node", "USD/node", "cabinets", "m"
    );
    for requested in [1_024u64, 16_384, 131_072, 1 << 20] {
        let power = NetworkPower::Baldur.per_node(requested).total_w();
        let cost = cost_per_node(requested).total();
        let pack = packaging_for(requested);
        let best_rival = [
            NetworkPower::ElectricalMultiButterfly,
            NetworkPower::Dragonfly,
            NetworkPower::FatTree,
        ]
        .iter()
        .map(|n| n.per_node(requested).total_w())
        .fold(f64::MAX, f64::min);
        println!(
            "{requested:>9} | {power:>9.2} | {cost:>10.0} | {:>9} | {:>8} | {:.1}x less power",
            pack.cabinets(),
            pack.multiplicity,
            best_rival / power
        );
    }
    println!("\npower per node stays nearly flat while every electrical");
    println!("alternative grows superlinearly with switch radix — the");
    println!("paper's central scalability claim.");
}

//! Drive one packet through the gate-level 2x2 TL switch and render the
//! control waveforms (the Figure 5 reproduction).
//!
//! ```sh
//! cargo run --release --example circuit_waveform
//! ```

use baldur::experiments::figure5;

fn main() {
    let f = figure5();
    println!("one packet, routing bits [0, 1], into switch input 0:\n");
    print!("{}", f.ascii);
    println!(
        "\nthe packet exited on output port {} (routing bit 0 = up)",
        f.output_port
    );

    let path = std::env::temp_dir().join("baldur_switch.vcd");
    std::fs::write(&path, &f.vcd).expect("write VCD");
    println!("full VCD written to {} (open with GTKWave)", path.display());
}

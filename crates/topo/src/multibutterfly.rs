//! The randomized multi-butterfly (paper Sec. IV, after Chong et al. \[14\]
//! and Upfal \[18\]).
//!
//! Structure: `log2(N)` stages of radix-2 switches with path multiplicity
//! `m` (each switch has `2m` input and `2m` output ports, `m` per logical
//! direction). At stage `s` the switches are partitioned into `2^s` sorting
//! groups by the destination bits already consumed; each switch's `m`
//! direction-`d` outputs connect to *random* switches in the direction-`d`
//! sub-group of the next stage, balanced so every next-stage switch receives
//! exactly `2m` links. This balanced random wiring is what gives the
//! "expansion" property that makes the network immune to worst-case
//! permutations.
//!
//! The same object describes both Baldur (bufferless optical switches) and
//! the electrical multi-butterfly baseline (buffered routers) — they differ
//! only in the switch model applied by `baldur-net`.

use baldur_sim::rng::StreamRng;
use serde::{Deserialize, Serialize};

use crate::graph::NodeId;

/// One inter-stage link target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTarget {
    /// Switch index (within the whole next stage).
    pub switch: u32,
    /// Input port on that switch (0..2m).
    pub port: u32,
}

/// How the inter-stage links are arranged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Wiring {
    /// Balanced random wiring between sorting groups — the paper's
    /// multi-butterfly with the "expansion" property.
    Randomized,
    /// Conventional (dilated) butterfly wiring: all `m` direction-`d`
    /// links of a switch go to its single structural successor. Kept as
    /// the ablation baseline that *lacks* expansion and is therefore
    /// vulnerable to worst-case permutations.
    Dilated,
}

/// A randomized multi-butterfly topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiButterfly {
    nodes: u32,
    stages: u32,
    multiplicity: u32,
    wiring: Wiring,
    /// `links[stage][switch][dir][path] = LinkTarget` in stage+1
    /// (absent for the final stage, whose outputs go to nodes).
    links: Vec<Vec<[Vec<LinkTarget>; 2]>>,
}

impl MultiButterfly {
    /// Builds a multi-butterfly for `nodes` servers (a power of two ≥ 4)
    /// with path multiplicity `multiplicity`, wiring randomized by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a power of two ≥ 4 or `multiplicity` is 0.
    pub fn new(nodes: u32, multiplicity: u32, seed: u64) -> Self {
        Self::with_wiring(nodes, multiplicity, seed, Wiring::Randomized)
    }

    /// Builds with an explicit [`Wiring`] mode (`seed` is unused for
    /// [`Wiring::Dilated`]).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a power of two ≥ 4 or `multiplicity` is 0.
    pub fn with_wiring(nodes: u32, multiplicity: u32, seed: u64, wiring: Wiring) -> Self {
        assert!(
            nodes >= 4 && nodes.is_power_of_two(),
            "nodes must be a power of two >= 4"
        );
        assert!(multiplicity >= 1, "multiplicity must be >= 1");
        let stages = nodes.trailing_zeros();
        let switches = nodes / 2;
        let m = multiplicity;

        let mut links = Vec::with_capacity(stages as usize - 1);
        for s in 0..stages - 1 {
            let groups = 1u32 << s;
            let group_width = switches / groups; // switches per group at s
            let next_width = group_width / 2; // switches per subgroup at s+1
            let mut stage_links: Vec<[Vec<LinkTarget>; 2]> =
                vec![[Vec::new(), Vec::new()]; switches as usize];

            for g in 0..groups {
                for dir in 0..2u32 {
                    // Next-stage group `2g + dir` starts at this switch
                    // index (groups are contiguous destination-row blocks).
                    let next_group_base = (2 * g + dir) * next_width;
                    match wiring {
                        Wiring::Randomized => {
                            // Balanced random wiring: the m direction-`dir`
                            // outputs of the group_width source switches
                            // fill exactly the 2m inputs of the next_width
                            // target switches. Build m rounds; each round
                            // matches sources to target slots two-to-one
                            // via a shuffled slot list.
                            let mut rng = StreamRng::named(
                                seed,
                                "mbwire",
                                (u64::from(s) << 40) | (u64::from(g) << 8) | u64::from(dir),
                            );
                            for round in 0..m {
                                // Each round hands every target switch
                                // exactly 2 links, on its input ports
                                // (2*round) and (2*round + 1).
                                let mut slots: Vec<LinkTarget> = (0..next_width)
                                    .flat_map(|t| {
                                        let switch = next_group_base + t;
                                        [
                                            LinkTarget {
                                                switch,
                                                port: 2 * round,
                                            },
                                            LinkTarget {
                                                switch,
                                                port: 2 * round + 1,
                                            },
                                        ]
                                    })
                                    .collect();
                                rng.shuffle(&mut slots);
                                for src in 0..group_width {
                                    let switch = g * group_width + src;
                                    stage_links[switch as usize][dir as usize]
                                        .push(slots[src as usize]);
                                }
                            }
                        }
                        Wiring::Dilated => {
                            // Conventional butterfly fold: sources i and
                            // i + next_width both map to target
                            // i % next_width; each contributes m links on
                            // disjoint port halves.
                            for src in 0..group_width {
                                let switch = g * group_width + src;
                                let target = next_group_base + src % next_width;
                                let half = src / next_width; // 0 or 1
                                for round in 0..m {
                                    stage_links[switch as usize][dir as usize].push(LinkTarget {
                                        switch: target,
                                        port: 2 * round + half,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            links.push(stage_links);
        }

        MultiButterfly {
            nodes,
            stages,
            multiplicity,
            wiring,
            links,
        }
    }

    /// The wiring mode this instance was built with.
    pub fn wiring(&self) -> Wiring {
        self.wiring
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of stages (`log2(nodes)`).
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Switches per stage (`nodes / 2`).
    pub fn switches_per_stage(&self) -> u32 {
        self.nodes / 2
    }

    /// Total switches in the network.
    pub fn total_switches(&self) -> u64 {
        u64::from(self.stages) * u64::from(self.switches_per_stage())
    }

    /// Path multiplicity m.
    pub fn multiplicity(&self) -> u32 {
        self.multiplicity
    }

    /// The first-stage switch a node injects into.
    pub fn ingress_switch(&self, node: NodeId) -> u32 {
        node.0 / 2
    }

    /// The routing bits for `dst`, most-significant first: bit `s` selects
    /// the direction at stage `s`.
    pub fn routing_bits(&self, dst: NodeId) -> Vec<bool> {
        (0..self.stages)
            .rev()
            .map(|b| (dst.0 >> b) & 1 == 1)
            .collect()
    }

    /// The direction (0 or 1) a packet for `dst` takes at `stage`.
    pub fn direction(&self, dst: NodeId, stage: u32) -> u32 {
        (dst.0 >> (self.stages - 1 - stage)) & 1
    }

    /// The `m` candidate next-stage targets for (`stage`, `switch`,
    /// `dir`). For the final stage this is `None`: the packet exits to
    /// [`MultiButterfly::egress_node`].
    pub fn next_targets(&self, stage: u32, switch: u32, dir: u32) -> Option<&[LinkTarget]> {
        self.links
            .get(stage as usize)
            .map(|stage_links| stage_links[switch as usize][dir as usize].as_slice())
    }

    /// The node a final-stage switch's direction-`dir` outputs reach.
    pub fn egress_node(&self, final_switch: u32, dir: u32) -> NodeId {
        NodeId(2 * final_switch + dir)
    }

    /// Follows one concrete path (taking path index `path_choice % m` at
    /// every hop) and returns the switch sequence plus the destination
    /// reached — used by tests to prove deliverability.
    pub fn trace_route(&self, src: NodeId, dst: NodeId, path_choice: u32) -> (Vec<u32>, NodeId) {
        let mut switch = self.ingress_switch(src);
        let mut path = vec![switch];
        for s in 0..self.stages - 1 {
            let dir = self.direction(dst, s);
            let targets = self.next_targets(s, switch, dir).expect("inner stage");
            switch = targets[(path_choice % self.multiplicity) as usize].switch;
            path.push(switch);
        }
        let dir = self.direction(dst, self.stages - 1);
        (path, self.egress_node(switch, dir))
    }

    /// Checks the sorting-group invariants; used by tests and debug builds.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let switches = self.switches_per_stage();
        for (s, stage_links) in self.links.iter().enumerate() {
            let s = s as u32;
            let groups = 1u32 << (s + 1); // target groups at stage s+1
            let next_width = switches / groups;
            // Each target input port must be used exactly once.
            let mut used = vec![vec![false; 2 * self.multiplicity as usize]; switches as usize];
            for (sw, dirs) in stage_links.iter().enumerate() {
                let sw = sw as u32;
                let group = sw / (switches / (1 << s));
                for (dir, targets) in dirs.iter().enumerate() {
                    if targets.len() != self.multiplicity as usize {
                        return Err(format!("stage {s} switch {sw}: wrong fanout"));
                    }
                    let want_group = 2 * group + dir as u32;
                    for t in targets {
                        let tg = t.switch / next_width;
                        if tg != want_group {
                            return Err(format!(
                                "stage {s} switch {sw} dir {dir}: target {} in group {tg}, want {want_group}",
                                t.switch
                            ));
                        }
                        let slot = &mut used[t.switch as usize][t.port as usize];
                        if *slot {
                            return Err(format!(
                                "stage {} target {}:{} double-filled",
                                s + 1,
                                t.switch,
                                t.port
                            ));
                        }
                        *slot = true;
                    }
                }
            }
            for (sw, ports) in used.iter().enumerate() {
                if ports.iter().any(|&u| !u) {
                    return Err(format!("stage {} switch {sw} has unfilled inputs", s + 1));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_network_dimensions() {
        let mb = MultiButterfly::new(16, 2, 1);
        assert_eq!(mb.stages(), 4);
        assert_eq!(mb.switches_per_stage(), 8);
        assert_eq!(mb.total_switches(), 32);
        assert!(mb.validate().is_ok());
    }

    #[test]
    fn every_path_reaches_the_right_destination() {
        let mb = MultiButterfly::new(64, 3, 7);
        assert!(mb.validate().is_ok());
        for src in 0..64 {
            for dst in (0..64).step_by(7) {
                for choice in 0..3 {
                    let (_, reached) = mb.trace_route(NodeId(src), NodeId(dst), choice);
                    assert_eq!(reached, NodeId(dst), "src {src} dst {dst} path {choice}");
                }
            }
        }
    }

    #[test]
    fn routing_bits_msb_first() {
        let mb = MultiButterfly::new(16, 1, 0);
        assert_eq!(
            mb.routing_bits(NodeId(0b1010)),
            vec![true, false, true, false]
        );
        assert_eq!(mb.direction(NodeId(0b1010), 0), 1);
        assert_eq!(mb.direction(NodeId(0b1010), 3), 0);
    }

    #[test]
    fn wiring_is_deterministic_per_seed() {
        let a = MultiButterfly::new(32, 4, 99);
        let b = MultiButterfly::new(32, 4, 99);
        let c = MultiButterfly::new(32, 4, 100);
        for s in 0..a.stages() - 1 {
            for sw in 0..a.switches_per_stage() {
                for d in 0..2 {
                    assert_eq!(a.next_targets(s, sw, d), b.next_targets(s, sw, d));
                }
            }
        }
        // A different seed rewires at least something.
        let differs = (0..a.switches_per_stage())
            .any(|sw| (0..2).any(|d| a.next_targets(0, sw, d) != c.next_targets(0, sw, d)));
        assert!(differs);
    }

    #[test]
    fn randomization_spreads_targets() {
        // With m=4 and a large first-stage group, a switch's 4 up-targets
        // should usually not all collide on one target switch.
        let mb = MultiButterfly::new(256, 4, 3);
        let mut all_same = 0;
        for sw in 0..mb.switches_per_stage() {
            let t = mb.next_targets(0, sw, 0).unwrap();
            if t.iter().all(|x| x.switch == t[0].switch) {
                all_same += 1;
            }
        }
        assert!(all_same < 4, "{all_same} switches had fully-collided paths");
    }

    #[test]
    fn egress_nodes_cover_all_destinations() {
        let mb = MultiButterfly::new(32, 2, 5);
        let mut seen = [false; 32];
        for sw in 0..mb.switches_per_stage() {
            for d in 0..2 {
                seen[mb.egress_node(sw, d).0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        MultiButterfly::new(24, 2, 0);
    }

    #[test]
    fn dilated_wiring_is_valid_and_deterministic() {
        let a = MultiButterfly::with_wiring(64, 3, 1, Wiring::Dilated);
        let b = MultiButterfly::with_wiring(64, 3, 999, Wiring::Dilated);
        assert!(a.validate().is_ok());
        // Seed-independent: the structure is fixed.
        for s in 0..a.stages() - 1 {
            for sw in 0..a.switches_per_stage() {
                for d in 0..2 {
                    assert_eq!(a.next_targets(s, sw, d), b.next_targets(s, sw, d));
                }
            }
        }
        assert_eq!(a.wiring(), Wiring::Dilated);
    }

    #[test]
    fn dilated_wiring_still_delivers_correctly() {
        let mb = MultiButterfly::with_wiring(64, 2, 0, Wiring::Dilated);
        for src in (0..64).step_by(5) {
            for dst in (0..64).step_by(7) {
                for choice in 0..2 {
                    let (_, reached) = mb.trace_route(NodeId(src), NodeId(dst), choice);
                    assert_eq!(reached, NodeId(dst));
                }
            }
        }
    }

    #[test]
    fn dilated_lacks_path_diversity() {
        // All m links of a direction go to one successor: the defining
        // structural difference from the randomized multi-butterfly.
        let mb = MultiButterfly::with_wiring(256, 4, 0, Wiring::Dilated);
        for sw in 0..mb.switches_per_stage() {
            let t = mb.next_targets(0, sw, 0).unwrap();
            assert!(t.iter().all(|x| x.switch == t[0].switch));
        }
    }
}

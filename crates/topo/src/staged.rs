//! A uniform view over the staged (multi-stage, radix-2) topologies so
//! the Baldur network model can run on any of them.

use serde::{Deserialize, Serialize};

use crate::graph::NodeId;
use crate::multibutterfly::{LinkTarget, MultiButterfly, Wiring};
use crate::omega::Omega;

/// Which staged topology to build (configuration-level, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StagedKind {
    /// Randomized multi-butterfly (the paper's Baldur).
    MultiButterfly,
    /// Dilated structured butterfly (randomization ablation).
    DilatedButterfly,
    /// Omega / perfect shuffle (isomorphism check).
    Omega,
}

impl StagedKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StagedKind::MultiButterfly => "multibutterfly",
            StagedKind::DilatedButterfly => "dilated_butterfly",
            StagedKind::Omega => "omega",
        }
    }
}

/// A built staged topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Staged {
    /// Multi-butterfly (randomized or dilated).
    MultiButterfly(MultiButterfly),
    /// Omega network.
    Omega(Omega),
}

impl Staged {
    /// Builds `kind` for `nodes` servers with multiplicity `m`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a power of two ≥ 4 or `m` is 0.
    pub fn build(kind: StagedKind, nodes: u32, m: u32, seed: u64) -> Staged {
        match kind {
            StagedKind::MultiButterfly => Staged::MultiButterfly(MultiButterfly::with_wiring(
                nodes,
                m,
                seed,
                Wiring::Randomized,
            )),
            StagedKind::DilatedButterfly => {
                Staged::MultiButterfly(MultiButterfly::with_wiring(nodes, m, seed, Wiring::Dilated))
            }
            StagedKind::Omega => Staged::Omega(Omega::new(nodes, m)),
        }
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> u32 {
        match self {
            Staged::MultiButterfly(t) => t.nodes(),
            Staged::Omega(t) => t.nodes(),
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        match self {
            Staged::MultiButterfly(t) => t.stages(),
            Staged::Omega(t) => t.stages(),
        }
    }

    /// Switches per stage.
    pub fn switches_per_stage(&self) -> u32 {
        match self {
            Staged::MultiButterfly(t) => t.switches_per_stage(),
            Staged::Omega(t) => t.switches_per_stage(),
        }
    }

    /// Path multiplicity / dilation.
    pub fn multiplicity(&self) -> u32 {
        match self {
            Staged::MultiButterfly(t) => t.multiplicity(),
            Staged::Omega(t) => t.multiplicity(),
        }
    }

    /// The first-stage switch a node injects into.
    pub fn ingress_switch(&self, node: NodeId) -> u32 {
        match self {
            Staged::MultiButterfly(t) => t.ingress_switch(node),
            Staged::Omega(t) => t.ingress_switch(node),
        }
    }

    /// The direction a packet for `dst` takes at `stage`.
    pub fn direction(&self, dst: NodeId, stage: u32) -> u32 {
        match self {
            Staged::MultiButterfly(t) => t.direction(dst, stage),
            Staged::Omega(t) => t.direction(dst, stage),
        }
    }

    /// The `path`-th candidate target from (`stage`, `switch`, `dir`), or
    /// `None` at the final stage.
    pub fn target(&self, stage: u32, switch: u32, dir: u32, path: u32) -> Option<LinkTarget> {
        match self {
            Staged::MultiButterfly(t) => t
                .next_targets(stage, switch, dir)
                .map(|ts| ts[path as usize]),
            Staged::Omega(t) => t
                .next_targets(stage, switch, dir)
                .map(|ts| ts[path as usize]),
        }
    }

    /// The node a final-stage switch's direction-`dir` output reaches.
    pub fn egress_node(&self, final_switch: u32, dir: u32) -> NodeId {
        match self {
            Staged::MultiButterfly(t) => t.egress_node(final_switch, dir),
            Staged::Omega(t) => t.egress_node(final_switch, dir),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_and_agree_on_shape() {
        for kind in [
            StagedKind::MultiButterfly,
            StagedKind::DilatedButterfly,
            StagedKind::Omega,
        ] {
            let t = Staged::build(kind, 64, 3, 9);
            assert_eq!(t.nodes(), 64, "{}", kind.name());
            assert_eq!(t.stages(), 6);
            assert_eq!(t.switches_per_stage(), 32);
            assert_eq!(t.multiplicity(), 3);
        }
    }

    #[test]
    fn targets_are_in_range_for_all_kinds() {
        for kind in [
            StagedKind::MultiButterfly,
            StagedKind::DilatedButterfly,
            StagedKind::Omega,
        ] {
            let t = Staged::build(kind, 32, 2, 1);
            for stage in 0..t.stages() - 1 {
                for sw in 0..t.switches_per_stage() {
                    for dir in 0..2 {
                        for path in 0..2 {
                            let tg = t.target(stage, sw, dir, path).expect("inner stage");
                            assert!(tg.switch < t.switches_per_stage());
                            assert!(tg.port < 2 * t.multiplicity());
                        }
                    }
                }
            }
            assert!(t.target(t.stages() - 1, 0, 0, 0).is_none());
        }
    }

    #[test]
    fn staged_delivery_via_manual_walk() {
        for kind in [
            StagedKind::MultiButterfly,
            StagedKind::DilatedButterfly,
            StagedKind::Omega,
        ] {
            let t = Staged::build(kind, 64, 2, 5);
            for (src, dst) in [(0u32, 63u32), (17, 4), (33, 33), (5, 40)] {
                let mut sw = t.ingress_switch(NodeId(src));
                for s in 0..t.stages() - 1 {
                    let dir = t.direction(NodeId(dst), s);
                    sw = t.target(s, sw, dir, 1 % t.multiplicity()).unwrap().switch;
                }
                let dir = t.direction(NodeId(dst), t.stages() - 1);
                assert_eq!(
                    t.egress_node(sw, dir),
                    NodeId(dst),
                    "{}: {src}->{dst}",
                    kind.name()
                );
            }
        }
    }
}

//! Failed-edge masking for staged topologies.
//!
//! A fault-injection layer needs to take individual inter-stage links out
//! of service without rebuilding the topology. [`EdgeMask`] is a dense
//! bitset over the `(stage, output-port)` space of a staged network: the
//! network model consults it during path arbitration and simply skips
//! masked ports, so a failed link behaves exactly like a permanently busy
//! one (failure-aware routing falls out of the ordinary multiplicity
//! scan).
//!
//! The mask is dimension-agnostic: callers index ports however the owning
//! model does (Baldur uses `switch * 2m + dir * m + path`).

/// A dense failed-edge bitset over `(stage, port)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMask {
    stages: u32,
    ports_per_stage: u32,
    failed: Vec<bool>,
    failed_count: usize,
}

impl EdgeMask {
    /// An all-healthy mask for `stages` stages of `ports_per_stage`
    /// output ports each.
    pub fn new(stages: u32, ports_per_stage: u32) -> Self {
        EdgeMask {
            stages,
            ports_per_stage,
            failed: vec![false; stages as usize * ports_per_stage as usize],
            failed_count: 0,
        }
    }

    fn index(&self, stage: u32, port: u32) -> Option<usize> {
        if stage < self.stages && port < self.ports_per_stage {
            Some((stage * self.ports_per_stage + port) as usize)
        } else {
            None
        }
    }

    /// Marks the edge behind `(stage, port)` as failed. Out-of-range
    /// coordinates are ignored (a fault plan may be written for a larger
    /// topology than the one under test).
    pub fn fail(&mut self, stage: u32, port: u32) {
        if let Some(i) = self.index(stage, port) {
            if !self.failed[i] {
                self.failed[i] = true;
                self.failed_count += 1;
            }
        }
    }

    /// Returns the edge behind `(stage, port)` to service.
    pub fn restore(&mut self, stage: u32, port: u32) {
        if let Some(i) = self.index(stage, port) {
            if self.failed[i] {
                self.failed[i] = false;
                self.failed_count -= 1;
            }
        }
    }

    /// True when `(stage, port)` is currently failed.
    #[inline]
    pub fn is_failed(&self, stage: u32, port: u32) -> bool {
        match self.index(stage, port) {
            Some(i) => self.failed[i],
            None => false,
        }
    }

    /// True when no edge is failed — the hot-path fast-out.
    #[inline]
    pub fn is_all_healthy(&self) -> bool {
        self.failed_count == 0
    }

    /// Number of currently failed edges.
    pub fn failed_count(&self) -> usize {
        self.failed_count
    }

    /// Clears every failure.
    pub fn restore_all(&mut self) {
        self.failed.iter_mut().for_each(|f| *f = false);
        self.failed_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_and_restore_round_trip() {
        let mut m = EdgeMask::new(3, 8);
        assert!(m.is_all_healthy());
        m.fail(1, 5);
        m.fail(2, 0);
        assert!(m.is_failed(1, 5));
        assert!(m.is_failed(2, 0));
        assert!(!m.is_failed(0, 5));
        assert_eq!(m.failed_count(), 2);
        m.restore(1, 5);
        assert!(!m.is_failed(1, 5));
        assert_eq!(m.failed_count(), 1);
        m.restore_all();
        assert!(m.is_all_healthy());
    }

    #[test]
    fn double_fail_counts_once() {
        let mut m = EdgeMask::new(2, 2);
        m.fail(0, 0);
        m.fail(0, 0);
        assert_eq!(m.failed_count(), 1);
        m.restore(0, 0);
        assert!(m.is_all_healthy());
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut m = EdgeMask::new(2, 4);
        m.fail(9, 9);
        m.restore(9, 9);
        assert!(m.is_all_healthy());
        assert!(!m.is_failed(9, 9));
    }
}

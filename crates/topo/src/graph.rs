//! Port-level router graphs shared by the electrical network models.

use serde::{Deserialize, Serialize};

/// A server node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// What a router port connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// Another router's port.
    Router {
        /// Peer router index.
        router: u32,
        /// Peer port index.
        port: u32,
    },
    /// A server node (terminal port).
    Node(NodeId),
    /// Unconnected.
    Unused,
}

/// A directed port-level view of a switched network.
///
/// Invariant (checked by [`RouterGraph::validate`]): router-to-router links
/// are symmetric — if router A port x points at router B port y, then B's
/// port y points back at A's port x — and every node attaches to exactly
/// one terminal port.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterGraph {
    /// `neighbors[router][port]` — what each port connects to.
    pub neighbors: Vec<Vec<Endpoint>>,
    /// `link_delay_ps[router][port]` — propagation delay of the attached
    /// link in picoseconds.
    pub link_delay_ps: Vec<Vec<u64>>,
    /// `node_attach[node] = (router, port)`.
    pub node_attach: Vec<(u32, u32)>,
}

impl RouterGraph {
    /// An empty graph with `routers` routers of the given radix.
    pub fn new(routers: u32, radix: u32) -> Self {
        RouterGraph {
            neighbors: vec![vec![Endpoint::Unused; radix as usize]; routers as usize],
            link_delay_ps: vec![vec![0; radix as usize]; routers as usize],
            node_attach: Vec::new(),
        }
    }

    /// Number of routers.
    pub fn router_count(&self) -> u32 {
        self.neighbors.len() as u32
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> u32 {
        self.node_attach.len() as u32
    }

    /// Radix of `router`.
    pub fn radix(&self, router: u32) -> u32 {
        self.neighbors[router as usize].len() as u32
    }

    /// Connects two router ports bidirectionally with the given link delay.
    ///
    /// # Panics
    ///
    /// Panics if either port is already in use.
    pub fn connect(&mut self, a: (u32, u32), b: (u32, u32), delay_ps: u64) {
        for &(r, p) in &[a, b] {
            assert!(
                matches!(self.neighbors[r as usize][p as usize], Endpoint::Unused),
                "router {r} port {p} already connected"
            );
        }
        self.neighbors[a.0 as usize][a.1 as usize] = Endpoint::Router {
            router: b.0,
            port: b.1,
        };
        self.neighbors[b.0 as usize][b.1 as usize] = Endpoint::Router {
            router: a.0,
            port: a.1,
        };
        self.link_delay_ps[a.0 as usize][a.1 as usize] = delay_ps;
        self.link_delay_ps[b.0 as usize][b.1 as usize] = delay_ps;
    }

    /// Attaches the next node (ids are assigned sequentially) to a router
    /// port.
    ///
    /// # Panics
    ///
    /// Panics if the port is already in use.
    pub fn attach_node(&mut self, router: u32, port: u32, delay_ps: u64) -> NodeId {
        assert!(
            matches!(
                self.neighbors[router as usize][port as usize],
                Endpoint::Unused
            ),
            "router {router} port {port} already connected"
        );
        let node = NodeId(self.node_attach.len() as u32);
        self.neighbors[router as usize][port as usize] = Endpoint::Node(node);
        self.link_delay_ps[router as usize][port as usize] = delay_ps;
        self.node_attach.push((router, port));
        node
    }

    /// Marks a port as a delivery point for an *existing* node without
    /// changing the node's injection attachment. Used by multi-stage
    /// topologies where a node injects at the first stage but receives
    /// from the last.
    ///
    /// # Panics
    ///
    /// Panics if the port is already in use.
    pub fn attach_terminal(&mut self, node: NodeId, router: u32, port: u32, delay_ps: u64) {
        assert!(
            matches!(
                self.neighbors[router as usize][port as usize],
                Endpoint::Unused
            ),
            "router {router} port {port} already connected"
        );
        self.neighbors[router as usize][port as usize] = Endpoint::Node(node);
        self.link_delay_ps[router as usize][port as usize] = delay_ps;
    }

    /// The endpoint a port connects to.
    pub fn peer(&self, router: u32, port: u32) -> Endpoint {
        self.neighbors[router as usize][port as usize]
    }

    /// The link delay of a port.
    pub fn delay(&self, router: u32, port: u32) -> u64 {
        self.link_delay_ps[router as usize][port as usize]
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (r, ports) in self.neighbors.iter().enumerate() {
            for (p, ep) in ports.iter().enumerate() {
                if let Endpoint::Router { router, port } = ep {
                    let back = self.neighbors[*router as usize][*port as usize];
                    let want = Endpoint::Router {
                        router: r as u32,
                        port: p as u32,
                    };
                    if back != want {
                        return Err(format!(
                            "asymmetric link: {r}:{p} -> {router}:{port} but back is {back:?}"
                        ));
                    }
                }
            }
        }
        for (n, &(r, p)) in self.node_attach.iter().enumerate() {
            if self.neighbors[r as usize][p as usize] != Endpoint::Node(NodeId(n as u32)) {
                return Err(format!("node {n} attachment mismatch at {r}:{p}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_is_symmetric_and_validates() {
        let mut g = RouterGraph::new(2, 4);
        g.connect((0, 1), (1, 2), 100_000);
        let n = g.attach_node(0, 0, 10_000);
        assert_eq!(n, NodeId(0));
        assert_eq!(g.peer(0, 1), Endpoint::Router { router: 1, port: 2 });
        assert_eq!(g.delay(1, 2), 100_000);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut g = RouterGraph::new(2, 2);
        g.connect((0, 0), (1, 0), 1);
        g.connect((0, 0), (1, 1), 1);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut g = RouterGraph::new(2, 2);
        g.connect((0, 0), (1, 0), 1);
        g.neighbors[1][0] = Endpoint::Unused;
        assert!(g.validate().is_err());
    }
}

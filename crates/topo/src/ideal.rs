//! The ideal reference network (paper Sec. V-A): infinite bandwidth and a
//! flat 200 ns packet latency between any pair of nodes.

use serde::{Deserialize, Serialize};

/// The ideal network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ideal {
    /// Number of server nodes.
    pub nodes: u32,
    /// Flat latency in picoseconds (paper: 200 ns).
    pub latency_ps: u64,
}

impl Ideal {
    /// The paper's reference: flat 200 ns.
    pub fn paper(nodes: u32) -> Self {
        Ideal {
            nodes,
            latency_ps: 200_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_is_200ns() {
        let i = Ideal::paper(1024);
        assert_eq!(i.latency_ps, 200_000);
        assert_eq!(i.nodes, 1024);
    }
}

//! Network topologies for the Baldur reproduction.
//!
//! Four topologies from the paper's evaluation (Sec. V-A):
//!
//! * [`multibutterfly`] — the randomized multi-stage topology Baldur and the
//!   electrical multi-butterfly baseline share: radix-2 switches with path
//!   multiplicity `m` and random (balanced) connections between sorting
//!   groups, giving the "expansion" property that makes the network immune
//!   to worst-case permutations,
//! * [`dragonfly`] — Kim et al.'s balanced dragonfly (a = 2p = 2h),
//! * [`fattree`] — the 3-level k-ary fat-tree of Al-Fares et al.,
//! * [`omega`] — the Omega (perfect shuffle) network, for the paper's
//!   multi-stage isomorphism claim,
//! * [`ideal`] — the paper's infinite-bandwidth, flat-200 ns reference;
//!   [`staged`] unifies the multi-stage variants behind one interface.
//!
//! Electrical topologies also export a port-level [`graph::RouterGraph`]
//! consumed by the buffered-router simulation in `baldur-net`.

pub mod dragonfly;
pub mod fattree;
pub mod graph;
pub mod ideal;
pub mod mask;
pub mod multibutterfly;
pub mod omega;
pub mod staged;

pub use dragonfly::Dragonfly;
pub use fattree::FatTree;
pub use graph::{Endpoint, NodeId, RouterGraph};
pub use mask::EdgeMask;
pub use multibutterfly::MultiButterfly;
pub use omega::Omega;
pub use staged::{Staged, StagedKind};

//! The Omega network (Lawrie \[42\]), with link dilation.
//!
//! The paper expects Baldur to "achieve similar results with other
//! multi-stage topologies (e.g., Benes, Omega) because many multi-stage
//! networks are largely isomorphic" \[43\]. This module provides the Omega
//! so that claim can be tested: `log2(N)` identical stages, each a perfect
//! shuffle followed by a column of 2x2 switches, destination-tag routed.
//! Multiplicity here is plain link *dilation* (m parallel links along the
//! structural edge) — Omega's rigid shuffle has no sorting groups to
//! randomize within, which is exactly why it lacks the multi-butterfly's
//! expansion property.

use serde::{Deserialize, Serialize};

use crate::graph::NodeId;
use crate::multibutterfly::LinkTarget;

/// An Omega network of 2x2 switches with dilation m.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Omega {
    nodes: u32,
    stages: u32,
    multiplicity: u32,
}

impl Omega {
    /// Builds an Omega for `nodes` servers (a power of two ≥ 4) with link
    /// dilation `multiplicity`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a power of two ≥ 4 or `multiplicity` is 0.
    pub fn new(nodes: u32, multiplicity: u32) -> Self {
        assert!(
            nodes >= 4 && nodes.is_power_of_two(),
            "nodes must be a power of two >= 4"
        );
        assert!(multiplicity >= 1, "multiplicity must be >= 1");
        Omega {
            nodes,
            stages: nodes.trailing_zeros(),
            multiplicity,
        }
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Switches per stage.
    pub fn switches_per_stage(&self) -> u32 {
        self.nodes / 2
    }

    /// Link dilation m.
    pub fn multiplicity(&self) -> u32 {
        self.multiplicity
    }

    /// Perfect shuffle of a wire index: rotate the address left by one.
    fn shuffle(&self, wire: u32) -> u32 {
        let bits = self.stages;
        ((wire << 1) | (wire >> (bits - 1))) & (self.nodes - 1)
    }

    /// The switch a node's injected packet first reaches: the shuffle is
    /// applied *before* every switch column, including the first.
    pub fn ingress_switch(&self, node: NodeId) -> u32 {
        self.shuffle(node.0) / 2
    }

    /// Destination-tag direction at `stage`: bit `stages-1-stage` of the
    /// destination, MSB first.
    pub fn direction(&self, dst: NodeId, stage: u32) -> u32 {
        (dst.0 >> (self.stages - 1 - stage)) & 1
    }

    /// The m dilated link targets from (`stage`, `switch`, `dir`), or
    /// `None` at the final stage (the packet exits to a node).
    pub fn next_targets(&self, stage: u32, switch: u32, dir: u32) -> Option<Vec<LinkTarget>> {
        if stage + 1 >= self.stages {
            return None;
        }
        let wire = 2 * switch + dir;
        let next_wire = self.shuffle(wire);
        let target = next_wire / 2;
        let side = next_wire % 2; // which half of the target's input ports
        Some(
            (0..self.multiplicity)
                .map(|path| LinkTarget {
                    switch: target,
                    port: side * self.multiplicity + path,
                })
                .collect(),
        )
    }

    /// The node reached from a final-stage switch's direction-`dir` output.
    pub fn egress_node(&self, final_switch: u32, dir: u32) -> NodeId {
        NodeId(2 * final_switch + dir)
    }

    /// Follows the unique route from `src` to `dst`, returning the switch
    /// sequence and the node reached.
    pub fn trace_route(&self, src: NodeId, dst: NodeId) -> (Vec<u32>, NodeId) {
        let mut switch = self.ingress_switch(src);
        let mut path = vec![switch];
        for s in 0..self.stages - 1 {
            let dir = self.direction(dst, s);
            let wire = 2 * switch + dir;
            switch = self.shuffle(wire) / 2;
            path.push(switch);
        }
        let dir = self.direction(dst, self.stages - 1);
        (path, self.egress_node(switch, dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let o = Omega::new(64, 4);
        assert_eq!(o.stages(), 6);
        assert_eq!(o.switches_per_stage(), 32);
    }

    #[test]
    fn every_route_reaches_its_destination() {
        let o = Omega::new(64, 2);
        for src in 0..64 {
            for dst in 0..64 {
                let (_, reached) = o.trace_route(NodeId(src), NodeId(dst));
                assert_eq!(reached, NodeId(dst), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn shuffle_is_a_rotation() {
        let o = Omega::new(16, 1);
        assert_eq!(o.shuffle(0b0001), 0b0010);
        assert_eq!(o.shuffle(0b1000), 0b0001);
        assert_eq!(o.shuffle(0b1111), 0b1111);
    }

    #[test]
    fn dilated_targets_share_one_successor() {
        let o = Omega::new(32, 4);
        let t = o.next_targets(0, 3, 1).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|x| x.switch == t[0].switch));
        // Ports within the chosen input half are distinct.
        let mut ports: Vec<u32> = t.iter().map(|x| x.port).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 4);
    }

    #[test]
    fn final_stage_has_no_targets() {
        let o = Omega::new(16, 2);
        assert!(o.next_targets(3, 0, 0).is_none());
        assert!(o.next_targets(2, 0, 0).is_some());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        Omega::new(20, 2);
    }
}

//! The 3-level k-ary fat-tree (Al-Fares et al. \[17\]).
//!
//! `k` pods, each with `k/2` edge and `k/2` aggregation switches; `(k/2)²`
//! core switches; `k³/4` hosts at full bisection bandwidth. The paper's
//! 1K-scale instance is `k = 16` (1,024 hosts, radix-16 switches); its
//! scalability limit with radix ≤ 64 is `64³/4 = 65,536` hosts ("66K").

use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, RouterGraph};

/// Level of a fat-tree switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Connects hosts (level 1).
    Edge,
    /// Pod-internal aggregation (level 2).
    Aggregation,
    /// Core (level 3).
    Core,
}

/// A 3-level k-ary fat-tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTree {
    /// Switch radix (even, ≥ 4).
    pub k: u32,
}

impl FatTree {
    /// A fat-tree of radix `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is even and at least 4.
    pub fn new(k: u32) -> Self {
        assert!(k >= 4 && k.is_multiple_of(2), "k must be even and >= 4");
        FatTree { k }
    }

    /// The smallest fat-tree with at least `nodes` hosts.
    pub fn at_least(nodes: u64) -> Self {
        let mut k = 4;
        loop {
            let ft = FatTree::new(k);
            if ft.node_count() >= nodes {
                return ft;
            }
            k += 2;
        }
    }

    /// Hosts: `k³/4`.
    pub fn node_count(&self) -> u64 {
        u64::from(self.k).pow(3) / 4
    }

    /// Hosts per pod: `k²/4`.
    pub fn hosts_per_pod(&self) -> u32 {
        self.k * self.k / 4
    }

    /// Edge (or aggregation) switches per pod: `k/2`.
    pub fn half_k(&self) -> u32 {
        self.k / 2
    }

    /// Core switches: `(k/2)²`.
    pub fn core_count(&self) -> u32 {
        self.half_k() * self.half_k()
    }

    /// Total switches: `k·k/2 (edge) + k·k/2 (agg) + (k/2)²`.
    pub fn switch_count(&self) -> u64 {
        u64::from(self.k) * u64::from(self.k) + u64::from(self.core_count())
    }

    /// Router index layout: edges `[0, k·k/2)`, aggregations
    /// `[k·k/2, k·k)`, cores `[k·k, k·k + (k/2)²)`.
    pub fn edge_index(&self, pod: u32, e: u32) -> u32 {
        pod * self.half_k() + e
    }

    /// Aggregation switch index (see [`FatTree::edge_index`]).
    pub fn agg_index(&self, pod: u32, a: u32) -> u32 {
        self.k * self.half_k() + pod * self.half_k() + a
    }

    /// Core switch index (see [`FatTree::edge_index`]).
    pub fn core_index(&self, c: u32) -> u32 {
        self.k * self.k + c
    }

    /// The level of a router index.
    pub fn level(&self, router: u32) -> Level {
        if router < self.k * self.half_k() {
            Level::Edge
        } else if router < self.k * self.k {
            Level::Aggregation
        } else {
            Level::Core
        }
    }

    /// The pod of an edge or aggregation switch.
    ///
    /// # Panics
    ///
    /// Panics for core switches, which belong to no pod.
    pub fn pod_of(&self, router: u32) -> u32 {
        match self.level(router) {
            Level::Edge => router / self.half_k(),
            Level::Aggregation => (router - self.k * self.half_k()) / self.half_k(),
            Level::Core => panic!("core switches have no pod"),
        }
    }

    /// The edge switch serving a host, plus its terminal port.
    pub fn host_attachment(&self, node: NodeId) -> (u32, u32) {
        let pod = node.0 / self.hosts_per_pod();
        let within = node.0 % self.hosts_per_pod();
        let e = within / self.half_k();
        (self.edge_index(pod, e), within % self.half_k())
    }

    /// Builds the port-level graph with the paper's Table VI link delays
    /// (level-1 / level-2 / level-3 links).
    ///
    /// Port layout: on edge switches, `[0, k/2)` hosts and `[k/2, k)` up to
    /// aggregation; on aggregation, `[0, k/2)` down to edges and `[k/2, k)`
    /// up to core; on cores, port `pod` goes down to that pod.
    pub fn build_graph(&self, l1_ps: u64, l2_ps: u64, l3_ps: u64) -> RouterGraph {
        let half = self.half_k();
        let mut g = RouterGraph::new(self.switch_count() as u32, self.k);
        // Hosts, in node-id order.
        for pod in 0..self.k {
            for e in 0..half {
                for h in 0..half {
                    g.attach_node(self.edge_index(pod, e), h, l1_ps);
                }
            }
        }
        // Edge <-> aggregation (within pod).
        for pod in 0..self.k {
            for e in 0..half {
                for a in 0..half {
                    g.connect(
                        (self.edge_index(pod, e), half + a),
                        (self.agg_index(pod, a), e),
                        l2_ps,
                    );
                }
            }
        }
        // Aggregation <-> core: agg `a` serves cores `[a*half, (a+1)*half)`.
        for pod in 0..self.k {
            for a in 0..half {
                for c in 0..half {
                    let core = a * half + c;
                    g.connect(
                        (self.agg_index(pod, a), half + c),
                        (self.core_index(core), pod),
                        l3_ps,
                    );
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_k16() {
        let ft = FatTree::new(16);
        assert_eq!(ft.node_count(), 1_024);
        assert_eq!(ft.switch_count(), 16 * 16 + 64);
    }

    #[test]
    fn scalability_limit_matches_paper() {
        let ft = FatTree::new(64);
        assert_eq!(ft.node_count(), 65_536); // the paper's "66K"
    }

    #[test]
    fn graph_validates_and_all_ports_used() {
        let ft = FatTree::new(8);
        let g = ft.build_graph(10_000, 50_000, 100_000);
        assert!(g.validate().is_ok());
        assert_eq!(g.node_count() as u64, ft.node_count());
        for r in 0..g.router_count() {
            for p in 0..g.radix(r) {
                assert!(
                    !matches!(g.peer(r, p), crate::graph::Endpoint::Unused),
                    "router {r} port {p} unused"
                );
            }
        }
    }

    #[test]
    fn host_attachment_round_trips() {
        let ft = FatTree::new(8);
        let g = ft.build_graph(1, 2, 3);
        for n in 0..ft.node_count() as u32 {
            let (r, p) = ft.host_attachment(NodeId(n));
            assert_eq!(g.node_attach[n as usize], (r, p));
        }
    }

    #[test]
    fn levels_and_pods() {
        let ft = FatTree::new(8);
        assert_eq!(ft.level(ft.edge_index(3, 1)), Level::Edge);
        assert_eq!(ft.level(ft.agg_index(3, 1)), Level::Aggregation);
        assert_eq!(ft.level(ft.core_index(5)), Level::Core);
        assert_eq!(ft.pod_of(ft.edge_index(3, 1)), 3);
        assert_eq!(ft.pod_of(ft.agg_index(6, 0)), 6);
    }

    #[test]
    fn at_least_covers_paper_sweep() {
        assert_eq!(FatTree::at_least(1_024).k, 16);
        assert!(FatTree::at_least(1_000_000).node_count() >= 1_000_000);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        FatTree::new(5);
    }
}

//! The dragonfly topology (Kim et al. \[16\]).
//!
//! Balanced configuration: each router has `p` terminal ports, `a - 1`
//! local ports (full mesh within the group), and `h` global ports, with
//! `a = 2p = 2h`. A maximal network has `g = a·h + 1` groups and
//! `N = p·a·g` nodes. The paper's 1K-scale instance is (p=4, a=8, h=4):
//! 33 groups, 1,056 nodes; scaling the radix grows the network to the
//! 263K-node limit the paper cites, past which dragonfly cannot grow.

use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, RouterGraph};

/// A balanced dragonfly topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dragonfly {
    /// Terminals per router.
    pub p: u32,
    /// Routers per group.
    pub a: u32,
    /// Global links per router.
    pub h: u32,
    /// Number of groups.
    pub groups: u32,
}

impl Dragonfly {
    /// A balanced dragonfly with the maximal group count `g = a·h + 1`.
    ///
    /// # Panics
    ///
    /// Panics unless `a = 2p = 2h` (the balanced condition) and all
    /// parameters are positive.
    pub fn balanced(p: u32) -> Self {
        assert!(p > 0, "p must be positive");
        let a = 2 * p;
        let h = p;
        Dragonfly {
            p,
            a,
            h,
            groups: a * h + 1,
        }
    }

    /// A dragonfly with an explicit group count (`2 ≤ groups ≤ a·h + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is out of range.
    pub fn with_groups(p: u32, groups: u32) -> Self {
        let full = Dragonfly::balanced(p);
        assert!(
            (2..=full.groups).contains(&groups),
            "groups must be in 2..={}",
            full.groups
        );
        Dragonfly { groups, ..full }
    }

    /// The balanced dragonfly closest to (at least) `nodes` servers.
    pub fn at_least(nodes: u64) -> Self {
        let mut p = 1;
        loop {
            let d = Dragonfly::balanced(p);
            if d.node_count() >= nodes {
                return d;
            }
            p += 1;
        }
    }

    /// Total server nodes: `p · a · groups`.
    pub fn node_count(&self) -> u64 {
        u64::from(self.p) * u64::from(self.a) * u64::from(self.groups)
    }

    /// Total routers.
    pub fn router_count(&self) -> u64 {
        u64::from(self.a) * u64::from(self.groups)
    }

    /// Router radix: `p + (a-1) + h`.
    pub fn radix(&self) -> u32 {
        self.p + self.a - 1 + self.h
    }

    /// The group of a router.
    pub fn group_of_router(&self, router: u32) -> u32 {
        router / self.a
    }

    /// The router a node attaches to.
    pub fn router_of_node(&self, node: NodeId) -> u32 {
        node.0 / self.p
    }

    /// The group a node belongs to.
    pub fn group_of_node(&self, node: NodeId) -> u32 {
        self.group_of_router(self.router_of_node(node))
    }

    /// The router in `src_group` that owns the global link to `dst_group`,
    /// and the global-port index on it. The canonical arrangement assigns
    /// group `g`'s global slot `s(g')` (where `s = g'` if `g' < g`, else
    /// `g' - 1`) to router `s / h`, port `s % h`.
    ///
    /// # Panics
    ///
    /// Panics if the groups are equal.
    pub fn gateway(&self, src_group: u32, dst_group: u32) -> (u32, u32) {
        assert_ne!(src_group, dst_group, "no global link within a group");
        let slot = if dst_group < src_group {
            dst_group
        } else {
            dst_group - 1
        };
        (src_group * self.a + slot / self.h, slot % self.h)
    }

    /// Port layout on every router: `[0, p)` terminals, `[p, p+a-1)` local,
    /// `[p+a-1, radix)` global.
    pub fn local_port(&self, from_local: u32, to_local: u32) -> u32 {
        debug_assert_ne!(from_local, to_local);
        let idx = if to_local < from_local {
            to_local
        } else {
            to_local - 1
        };
        self.p + idx
    }

    /// The first global port index.
    pub fn global_port_base(&self) -> u32 {
        self.p + self.a - 1
    }

    /// Builds the port-level graph with the paper's Table VI link delays:
    /// `intra_delay_ps` for terminal/local links, `global_delay_ps` for
    /// inter-group links.
    pub fn build_graph(&self, intra_delay_ps: u64, global_delay_ps: u64) -> RouterGraph {
        let mut g = RouterGraph::new(self.router_count() as u32, self.radix());
        // Terminals (node ids ascend with router ids).
        for r in 0..self.router_count() as u32 {
            for t in 0..self.p {
                g.attach_node(r, t, intra_delay_ps);
            }
        }
        // Local full mesh.
        for grp in 0..self.groups {
            for i in 0..self.a {
                for j in (i + 1)..self.a {
                    let ri = grp * self.a + i;
                    let rj = grp * self.a + j;
                    g.connect(
                        (ri, self.local_port(i, j)),
                        (rj, self.local_port(j, i)),
                        intra_delay_ps,
                    );
                }
            }
        }
        // Global links (only between instantiated groups).
        for ga in 0..self.groups {
            for gb in (ga + 1)..self.groups {
                let (ra, pa) = self.gateway(ga, gb);
                let (rb, pb) = self.gateway(gb, ga);
                g.connect(
                    (ra, self.global_port_base() + pa),
                    (rb, self.global_port_base() + pb),
                    global_delay_ps,
                );
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_configuration() {
        let d = Dragonfly::balanced(4);
        assert_eq!((d.p, d.a, d.h, d.groups), (4, 8, 4, 33));
        assert_eq!(d.node_count(), 1_056);
        assert_eq!(d.radix(), 15);
    }

    #[test]
    fn scalability_limit_matches_paper() {
        // The paper says dragonfly tops out around 263K nodes with radix
        // <= 64: balanced p=16 gives radix 63 and 16*32*513 = 262,656.
        let d = Dragonfly::balanced(16);
        assert_eq!(d.radix(), 63);
        assert_eq!(d.node_count(), 262_656);
    }

    #[test]
    fn gateway_is_symmetric_and_total() {
        let d = Dragonfly::balanced(2);
        for ga in 0..d.groups {
            let mut seen = std::collections::HashSet::new();
            for gb in 0..d.groups {
                if ga == gb {
                    continue;
                }
                let (r, p) = d.gateway(ga, gb);
                assert_eq!(d.group_of_router(r), ga);
                assert!(p < d.h);
                assert!(seen.insert((r, p)), "global port reused");
            }
            // All a*h global ports of the group are used exactly once.
            assert_eq!(seen.len() as u32, d.a * d.h);
        }
    }

    #[test]
    fn graph_validates_at_paper_scale() {
        let d = Dragonfly::balanced(4);
        let g = d.build_graph(10_000, 100_000);
        assert!(g.validate().is_ok());
        assert_eq!(g.node_count() as u64, d.node_count());
        // Every port of every router is used in the maximal configuration.
        for r in 0..g.router_count() {
            for p in 0..g.radix(r) {
                assert!(
                    !matches!(g.peer(r, p), crate::graph::Endpoint::Unused),
                    "router {r} port {p} unused"
                );
            }
        }
    }

    #[test]
    fn partial_group_count_builds() {
        let d = Dragonfly::with_groups(4, 9);
        let g = d.build_graph(10_000, 100_000);
        assert!(g.validate().is_ok());
        assert_eq!(g.node_count(), 4 * 8 * 9);
    }

    #[test]
    fn at_least_finds_smallest() {
        let d = Dragonfly::at_least(1_000);
        assert_eq!(d.node_count(), 1_056);
        let d = Dragonfly::at_least(1_057);
        assert!(d.node_count() >= 1_057);
    }

    #[test]
    fn node_and_group_mapping() {
        let d = Dragonfly::balanced(4);
        assert_eq!(d.router_of_node(NodeId(0)), 0);
        assert_eq!(d.router_of_node(NodeId(7)), 1);
        assert_eq!(d.group_of_node(NodeId(32 * 5 + 3)), 5);
    }
}

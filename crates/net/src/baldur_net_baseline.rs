//! The retired map-based Baldur model, kept for differential testing.
//!
//! This is the pre-SoA implementation of `baldur_net` (per-NIC
//! `BTreeMap` pending-ACK and ACK-batch maps, per-node `VecDeque`
//! queues, `Vec<Vec<Time>>` port state), frozen when the hot state moved
//! to struct-of-arrays. It is **not** a hot path: the property suite
//! runs seeded workloads through both models and asserts byte-identical
//! [`LatencyReport`]s — the same retained-baseline pattern the codecs
//! use. Behavioral semantics (paper Sec. IV-E, V):
//!
//! Bufferless, cut-through, drop-and-retransmit:
//!
//! * every switch output port is modelled by a `busy_until` time; a packet
//!   head arriving at a switch checks the `m` ports of its routing
//!   direction *sequentially* (the paper's arbitration) and claims the
//!   first idle one, else the packet is **dropped**;
//! * sources keep unACKed packets in a retransmission buffer; a timeout
//!   with binary exponential backoff re-injects them; receivers ACK every
//!   delivery (ACKs traverse the network and can themselves be dropped —
//!   the source then retransmits and the receiver de-duplicates);
//! * latency charged per hop: `switch_latency` (Table V, 1.5 ns at m=4)
//!   plus a small same-cabinet stage delay; node↔network fibers add the
//!   Table VI 100 ns each way.

use std::collections::{BTreeMap, VecDeque};

use baldur_sim::rng::StreamRng;
use baldur_sim::{Duration, Model, Scheduler, Simulation, Time};
use baldur_topo::graph::NodeId;
use baldur_topo::staged::Staged;

use crate::config::{BaldurParams, LinkParams};
use crate::driver::Driver;
use crate::faults::{jittered_timeout_ps, FaultKind, FaultPlan, FaultState};
use crate::metrics::{Collector, DeliveryOutcome, LatencyReport, RecoverySpec};
use crate::oracle::{Oracle, OracleConfig, Violation};

/// Index into the packet table.
type PktId = u32;

#[derive(Debug, Clone, Copy)]
struct PacketState {
    src: NodeId,
    dst: NodeId,
    generated_at: Time,
    attempts: u32,
    outcome: DeliveryOutcome,
    acked: bool,
    /// The retransmission-buffer slot was given back (first ACK or retry
    /// exhaustion — whichever comes first). Guards the `outstanding`
    /// decrement so a repair racing a backoff retry (ACK arriving after
    /// the source already gave up, or after a delivered packet's timers
    /// exhausted) cannot release the same slot twice.
    released: bool,
    /// For ACK packets, the data packet being acknowledged.
    acks: Option<PktId>,
}

#[derive(Debug)]
struct Nic {
    tx_busy_until: Time,
    /// ACKs are urgent (they gate the partner's buffer), so they queue
    /// ahead of data.
    ack_queue: VecDeque<PktId>,
    data_queue: VecDeque<PktId>,
    try_scheduled: bool,
    outstanding: u32,
    backoff_exp: u32,
    /// Packets injected and awaiting their first buffer-slot release
    /// (ACK, give-up, or expiry). Source-side admission pacing defers
    /// *first* injections while this reaches
    /// `BaldurParams::pacing_window`; maintained only when pacing is on.
    in_window: u32,
    /// ACK coalescing: per source, data packets awaiting a combined ACK
    /// (the bool marks a pending flush event). Ordered so no iteration
    /// order can leak into results.
    pending_acks: BTreeMap<u32, (Vec<PktId>, bool)>,
}

impl Nic {
    fn new() -> Self {
        Nic {
            tx_busy_until: Time::ZERO,
            ack_queue: VecDeque::new(),
            data_queue: VecDeque::new(),
            try_scheduled: false,
            outstanding: 0,
            backoff_exp: 0,
            in_window: 0,
            pending_acks: BTreeMap::new(),
        }
    }

    fn pop(&mut self) -> Option<PktId> {
        self.ack_queue
            .pop_front()
            .or_else(|| self.data_queue.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.ack_queue.is_empty() && self.data_queue.is_empty()
    }
}

/// Events of the Baldur model.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Driver wakeup for a node.
    Wake(u32),
    /// NIC should try to transmit.
    TryInject(u32),
    /// A packet head arrives at a switch of `stage`.
    Hop {
        /// Packet id.
        pkt: PktId,
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
    },
    /// A packet tail arrives at its destination node.
    Arrive {
        /// Packet id.
        pkt: PktId,
    },
    /// Retransmission timer for a data packet.
    Timeout {
        /// Packet id.
        pkt: PktId,
        /// The attempt this timer was armed for (stale timers no-op).
        attempt: u32,
    },
    /// Coalescing window expired: flush the combined ACK `node` owes
    /// `src`.
    AckFlush {
        /// The receiver holding the pending ACKs.
        node: u32,
        /// The data source being acknowledged.
        src: u32,
    },
    /// Apply fault-plan event `idx` (scheduled at its `at_ps`).
    Fault(u32),
}

/// The Baldur network simulation model.
pub struct BaldurNet {
    topo: Staged,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    active_nodes: u32,
    /// `ports[stage][switch * 2m + dir * m + path]` → busy-until.
    ports: Vec<Vec<Time>>,
    nics: Vec<Nic>,
    packets: Vec<PacketState>,
    metrics: Collector,
    in_flight: u64,
    /// Live fault state (switches, links, lasers, bit-error bursts); all
    /// healthy by default, driven by [`Ev::Fault`] events from `plan`.
    fstate: FaultState,
    /// The fault schedule this run executes (empty by default).
    plan: FaultPlan,
    /// Seed for retry-timeout jitter (the run seed).
    seed: u64,
    /// Coin flips for bit-error bursts; only drawn while a burst is
    /// active, so fault-free runs stay bit-identical.
    fault_rng: StreamRng,
    /// For combined ACK packets: every data packet they acknowledge.
    /// Ordered for the same determinism reason as `pending_acks`.
    ack_refs: BTreeMap<PktId, Vec<PktId>>,
    /// The always-on invariant oracle (release builds included); its
    /// summary rides on the run's report.
    oracle: Oracle,
}

impl BaldurNet {
    /// Builds the model over a topology sized for `active_nodes` servers.
    pub fn new(
        active_nodes: u32,
        params: BaldurParams,
        link: LinkParams,
        driver: Driver,
        seed: u64,
        sample_cap: usize,
    ) -> Self {
        let topo_nodes = active_nodes.next_power_of_two().max(4);
        let topo = Staged::build(params.staged_kind(), topo_nodes, params.multiplicity, seed);
        let m = params.multiplicity as usize;
        let ports = (0..topo.stages())
            .map(|_| vec![Time::ZERO; topo.switches_per_stage() as usize * 2 * m])
            .collect();
        let nics = (0..active_nodes).map(|_| Nic::new()).collect();
        let fstate = FaultState::healthy(
            topo.stages(),
            topo.switches_per_stage(),
            params.multiplicity,
            active_nodes,
        );
        BaldurNet {
            topo,
            params,
            link,
            driver,
            active_nodes,
            ports,
            nics,
            packets: Vec::new(),
            metrics: Collector::new(sample_cap),
            in_flight: 0,
            fstate,
            plan: FaultPlan::new(seed),
            seed,
            fault_rng: StreamRng::named(seed, "biterror", 0),
            ack_refs: BTreeMap::new(),
            oracle: Oracle::new(OracleConfig::default()),
        }
    }

    /// Marks switches as dead: every packet reaching one is dropped (the
    /// Leighton–Maggs fault model — the multi-butterfly's randomized
    /// multiplicity routes retransmissions around them).
    pub fn inject_faults(&mut self, switches: &[(u32, u32)]) {
        let width = self.topo.switches_per_stage();
        for &(stage, switch) in switches {
            assert!(
                stage < self.topo.stages() && switch < width,
                "fault out of range"
            );
            self.fstate
                .apply(self.plan.seed, 0, &FaultKind::SwitchDown { stage, switch });
        }
    }

    /// The wired topology in use.
    pub fn topology(&self) -> &Staged {
        &self.topo
    }

    fn duration_of(&self, pkt: PktId) -> Duration {
        if self.packets[pkt as usize].acks.is_some() {
            self.link.ack_time()
        } else {
            self.link.packet_time()
        }
    }

    fn port_index(&self, switch: u32, dir: u32, path: u32) -> usize {
        let m = self.params.multiplicity;
        (switch * 2 * m + dir * m + path) as usize
    }

    fn enqueue(&mut self, now: Time, node: u32, pkt: PktId, sched: &mut Scheduler<Ev>) {
        let nic = &mut self.nics[node as usize];
        if self.packets[pkt as usize].acks.is_some() {
            nic.ack_queue.push_back(pkt);
        } else {
            nic.data_queue.push_back(pkt);
        }
        if !nic.try_scheduled {
            nic.try_scheduled = true;
            sched.schedule_at(now.max(nic.tx_busy_until), Ev::TryInject(node));
        }
    }

    fn apply_driver_output(
        &mut self,
        now: Time,
        node: u32,
        out: crate::driver::DriverOutput,
        sched: &mut Scheduler<Ev>,
    ) {
        let cap = self.params.ingress_cap;
        for cmd in out.sends {
            for _ in 0..cmd.count {
                // Admission control: a bounded ingress queue refuses new
                // packets while the source already holds `ingress_cap`
                // unreleased packets (queued or unACKed — every queued
                // data packet is unreleased, so this bounds the queue
                // too). Refused packets are counted, never stored: they
                // take no table slot, no buffer slot, no timer.
                if cap > 0 && self.nics[node as usize].outstanding >= cap {
                    self.metrics.on_generated(now);
                    self.metrics.note_flow_generated(node);
                    self.metrics.on_ingress_drop(now);
                    self.oracle
                        .note(now.as_ps(), "drop:ingress", u64::from(node), 0);
                    continue;
                }
                let pkt = self.packets.len() as PktId;
                self.packets.push(PacketState {
                    src: NodeId(node),
                    dst: cmd.dst,
                    generated_at: now,
                    attempts: 0,
                    outcome: DeliveryOutcome::Pending,
                    acked: false,
                    released: false,
                    acks: None,
                });
                self.metrics.on_generated(now);
                self.metrics.note_flow_generated(node);
                self.nics[node as usize].outstanding += 1;
                self.note_buffer(node);
                self.enqueue(now, node, pkt, sched);
                let len = self.nics[node as usize].data_queue.len() as u64;
                self.oracle
                    .check_occupancy(now.as_ps(), node, len, u64::from(cap));
            }
        }
        if let Some(t) = out.wake_at_ps {
            sched.schedule_at(Time::from_ps(t), Ev::Wake(node));
        }
    }

    /// Creates (and enqueues) one ACK packet from `node` back to `src`
    /// acknowledging every data packet in `batch`.
    fn send_ack(
        &mut self,
        now: Time,
        node: u32,
        src: u32,
        batch: Vec<PktId>,
        sched: &mut Scheduler<Ev>,
    ) {
        let first = batch[0];
        let ack = self.packets.len() as PktId;
        self.packets.push(PacketState {
            src: NodeId(node),
            dst: NodeId(src),
            generated_at: now,
            attempts: 0,
            outcome: DeliveryOutcome::Pending,
            acked: false,
            released: false,
            acks: Some(first),
        });
        if batch.len() > 1 {
            self.ack_refs.insert(ack, batch);
        }
        self.enqueue(now, node, ack, sched);
    }

    /// Takes a packet out of flight (delivery or drop). An underflow is
    /// recorded as an oracle violation (and the decrement skipped)
    /// instead of wrapping.
    fn dec_in_flight(&mut self, now: Time) {
        #[cfg(feature = "validate")]
        debug_assert!(
            self.in_flight > 0,
            "in_flight underflow: drop/arrive without inject"
        );
        if self.in_flight == 0 {
            self.oracle.record(
                now.as_ps(),
                Violation::CounterUnderflow {
                    counter: "in_flight".into(),
                },
            );
            return;
        }
        self.in_flight -= 1;
    }

    /// Gives `node`'s retransmission-buffer slot for one packet back,
    /// with oracle-checked (never wrapping) arithmetic.
    fn release_outstanding(&mut self, now: Time, node: u32) {
        match self.nics.get_mut(node as usize) {
            Some(nic) if nic.outstanding > 0 => nic.outstanding -= 1,
            _ => self.oracle.record(
                now.as_ps(),
                Violation::CounterUnderflow {
                    counter: "outstanding".into(),
                },
            ),
        }
    }

    /// Closes one admission-pacing window slot for `node` (the packet's
    /// first buffer-slot release: ACK, give-up, or expiry). No-op when
    /// pacing is off, so the counter costs nothing on the paper path.
    fn release_window(&mut self, node: u32) {
        if self.params.pacing_window == 0 {
            return;
        }
        if let Some(nic) = self.nics.get_mut(node as usize) {
            nic.in_window = nic.in_window.saturating_sub(1);
        }
    }

    /// Packet-conservation check, valid only once the event queue has
    /// drained: every generated packet was then delivered, dropped and
    /// retransmitted to completion, or abandoned — so nothing is in
    /// flight, no NIC holds queued or unACKed work, and no coalesced ACK
    /// is still owed.
    #[cfg(feature = "validate")]
    fn debug_validate_drained(&self) {
        debug_assert_eq!(self.in_flight, 0, "packets still in flight after drain");
        for (i, nic) in self.nics.iter().enumerate() {
            debug_assert!(
                nic.is_empty(),
                "NIC {i} still has queued packets after drain"
            );
            debug_assert_eq!(
                nic.outstanding, 0,
                "NIC {i} still counts unACKed packets after drain"
            );
            debug_assert!(
                nic.pending_acks.is_empty(),
                "NIC {i} still owes coalesced ACKs after drain"
            );
        }
        debug_assert!(
            self.ack_refs.is_empty(),
            "combined-ACK references leaked after drain"
        );
        // Packet conservation: at drain every data packet has reached a
        // terminal outcome — delivered or GaveUp, never still Pending —
        // and the metric counters agree exactly (delivered and abandoned
        // are disjoint, so generated = delivered + abandoned even under
        // fault plans that killed switches, links, or lasers mid-run).
        let mut delivered = 0u64;
        let mut gave_up = 0u64;
        let mut expired = 0u64;
        for st in self.packets.iter().filter(|p| p.acks.is_none()) {
            match st.outcome {
                DeliveryOutcome::Delivered => delivered += 1,
                DeliveryOutcome::GaveUp => gave_up += 1,
                DeliveryOutcome::Expired => expired += 1,
                DeliveryOutcome::Pending => {
                    debug_assert!(false, "packet leaked: no terminal outcome at drain")
                }
            }
        }
        debug_assert_eq!(self.metrics.delivered(), delivered, "delivered count drift");
        debug_assert_eq!(self.metrics.abandoned(), gave_up, "abandoned count drift");
        debug_assert_eq!(self.metrics.expired(), expired, "expired count drift");
        debug_assert_eq!(
            self.metrics.generated(),
            delivered + gave_up + expired + self.metrics.ingress_drops(),
            "conservation violated: generated != delivered + abandoned + \
             expired + ingress drops"
        );
    }

    fn note_buffer(&mut self, node: u32) {
        let bytes =
            u64::from(self.nics[node as usize].outstanding) * u64::from(self.link.packet_bytes);
        self.metrics.on_retx_buffer(bytes);
    }

    /// Finishes the run and reports.
    pub fn into_report(self, end: Time) -> LatencyReport {
        let mut r = self.metrics.report(end);
        r.oracle = self.oracle.summary();
        r
    }

    /// Periodic oracle tick driven by the engine's observer hook: feeds
    /// the stuck-flow detector with the number of packets still owed a
    /// terminal outcome. Returns `true` when the run should abort.
    fn oracle_tick(&mut self, now: Time) -> bool {
        let per_nic: Vec<u64> = self.nics.iter().map(|n| u64::from(n.outstanding)).collect();
        let outstanding: u64 = per_nic.iter().sum::<u64>() + self.in_flight;
        // Each tick is one starvation observation window: a flow (source
        // node) with work outstanding and zero deliveries for N windows
        // while the rest of the machine progresses is starved.
        self.oracle
            .check_starvation(now.as_ps(), self.metrics.flow_delivered_counts(), &per_nic);
        self.oracle.check_stall(now.as_ps(), outstanding)
    }

    /// Release-build drain audit mirroring [`Self::debug_validate_drained`]:
    /// discrepancies become structured oracle violations on the report
    /// instead of debug assertions, so chaos sweeps catch them in
    /// `--release` too.
    fn oracle_check_drained(&mut self, end: Time) {
        let at = end.as_ps();
        if self.in_flight > 0 {
            let count = u64::from(self.in_flight);
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "in_flight".into(),
                    count,
                },
            );
        }
        let queued = self.nics.iter().filter(|n| !n.is_empty()).count() as u64;
        if queued > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "nic_queue".into(),
                    count: queued,
                },
            );
        }
        let outstanding: u64 = self.nics.iter().map(|n| u64::from(n.outstanding)).sum();
        if outstanding > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "outstanding".into(),
                    count: outstanding,
                },
            );
        }
        let owed: u64 = self.nics.iter().map(|n| n.pending_acks.len() as u64).sum();
        if owed > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "pending_acks".into(),
                    count: owed,
                },
            );
        }
        if !self.ack_refs.is_empty() {
            let count = self.ack_refs.len() as u64;
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "ack_refs".into(),
                    count,
                },
            );
        }
        let mut delivered = 0u64;
        let mut gave_up = 0u64;
        let mut expired = 0u64;
        let mut pending = 0u64;
        for st in self.packets.iter().filter(|p| p.acks.is_none()) {
            match st.outcome {
                DeliveryOutcome::Delivered => delivered += 1,
                DeliveryOutcome::GaveUp => gave_up += 1,
                DeliveryOutcome::Expired => expired += 1,
                DeliveryOutcome::Pending => pending += 1,
            }
        }
        if pending > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "pending_packets".into(),
                    count: pending,
                },
            );
        }
        // Overload-shed packets (expired + refused at ingress) are part
        // of the ledger: generated must equal delivered + abandoned +
        // expired + ingress drops, exactly.
        let generated = self.metrics.generated();
        let shed = expired + self.metrics.ingress_drops();
        if generated != delivered + gave_up + shed
            || self.metrics.delivered() != delivered
            || self.metrics.abandoned() != gave_up
            || self.metrics.expired() != expired
        {
            let stranded = generated
                .saturating_sub(delivered)
                .saturating_sub(gave_up)
                .saturating_sub(shed);
            self.oracle.record(
                at,
                Violation::Conservation {
                    generated,
                    delivered: self.metrics.delivered(),
                    abandoned: self.metrics.abandoned(),
                    stranded,
                },
            );
        }
    }
}

impl Model for BaldurNet {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Wake(node) => {
                let out = self.driver.wakeup(node, now.as_ps());
                self.apply_driver_output(now, node, out, sched);
            }
            Ev::TryInject(node) => {
                let nic = &mut self.nics[node as usize];
                nic.try_scheduled = false;
                if nic.is_empty() {
                    return;
                }
                if nic.tx_busy_until > now {
                    nic.try_scheduled = true;
                    let at = nic.tx_busy_until;
                    sched.schedule_at(at, Ev::TryInject(node));
                    return;
                }
                // `is_empty` was just checked, so the pop always succeeds;
                // the else arm keeps the handler panic-free regardless.
                let Some(mut pkt) = nic.pop() else { return };
                // Deadline check at the head of the queue: a data packet
                // that aged out while waiting for its (first or retry)
                // injection slot expires here, without burning the slot —
                // queue wait is the dominant staleness under overload and
                // carries no retry timer that could catch it.
                let deadline = self.params.deadline_ps;
                if deadline > 0
                    && self.packets[pkt as usize].acks.is_none()
                    && self.packets[pkt as usize].outcome == DeliveryOutcome::Pending
                    && now.since(self.packets[pkt as usize].generated_at).as_ps() >= deadline
                {
                    let src = self.packets[pkt as usize].src.0;
                    let in_window = self.packets[pkt as usize].attempts > 0;
                    self.packets[pkt as usize].outcome = DeliveryOutcome::Expired;
                    self.metrics.on_expired(now);
                    self.oracle
                        .note(now.as_ps(), "expire", u64::from(pkt), u64::from(src));
                    self.oracle.progress(now.as_ps());
                    if !self.packets[pkt as usize].released {
                        self.packets[pkt as usize].released = true;
                        self.release_outstanding(now, src);
                        if in_window {
                            self.release_window(src);
                        }
                    }
                    let nic = &mut self.nics[node as usize];
                    if !nic.is_empty() {
                        nic.try_scheduled = true;
                        sched.schedule_at(now, Ev::TryInject(node));
                    }
                    return;
                }
                // Source-side admission pacing: a *first* injection waits
                // while `pacing_window` packets are already out awaiting
                // their first release. Retransmissions and ACKs bypass
                // (they are the recovery path), and every in-window
                // packet carries a timer, so the poll always terminates.
                let pw = self.params.pacing_window;
                if pw > 0
                    && self.packets[pkt as usize].acks.is_none()
                    && self.packets[pkt as usize].attempts == 0
                    && self.nics[node as usize].in_window >= pw
                {
                    // A queued retransmission must jump a deferred head:
                    // it is what releases the window, so parking it behind
                    // the deferral would deadlock the NIC.
                    let bypass = self.nics[node as usize].data_queue.iter().position(|&q| {
                        self.packets.get(q as usize).is_some_and(|p| p.attempts > 0)
                    });
                    let nic = &mut self.nics[node as usize];
                    nic.data_queue.push_front(pkt);
                    match bypass.and_then(|pos| nic.data_queue.remove(pos + 1)) {
                        Some(retx) => pkt = retx,
                        None => {
                            nic.try_scheduled = true;
                            sched.schedule_at(now + self.link.packet_time(), Ev::TryInject(node));
                            return;
                        }
                    }
                }
                let dur = self.duration_of(pkt);
                let nic = &mut self.nics[node as usize];
                nic.tx_busy_until = now + dur;
                if !nic.is_empty() {
                    nic.try_scheduled = true;
                    let at = nic.tx_busy_until;
                    sched.schedule_at(at, Ev::TryInject(node));
                }
                let st = &mut self.packets[pkt as usize];
                if st.acks.is_none() {
                    st.attempts += 1;
                    let attempt = st.attempts;
                    if attempt == 1 && self.params.pacing_window > 0 {
                        self.nics[node as usize].in_window += 1;
                    }
                    let backoff = self.nics[node as usize].backoff_exp;
                    let to = Duration::from_ps(jittered_timeout_ps(
                        &self.params,
                        self.seed,
                        pkt,
                        attempt,
                        backoff,
                    ));
                    sched.schedule_at(now + dur + to, Ev::Timeout { pkt, attempt });
                }
                // A dead transmit laser eats the frame at the source: the
                // NIC still burned the serialization slot (and, for data,
                // armed its retry timer — the recovery path), but nothing
                // enters the fabric.
                if !self.fstate.is_all_healthy() && self.fstate.laser_is_down(node) {
                    self.metrics.on_laser_loss();
                    self.oracle
                        .note(now.as_ps(), "drop:laser", u64::from(pkt), u64::from(node));
                    self.ack_refs.remove(&pkt);
                    return;
                }
                // Head reaches the first-stage switch after the ingress
                // fiber.
                let switch = self.topo.ingress_switch(self.packets[pkt as usize].src);
                self.metrics.on_injection();
                self.in_flight += 1;
                sched.schedule_at(
                    now + Duration::from_ps(self.params.link_delay_ps),
                    Ev::Hop {
                        pkt,
                        stage: 0,
                        switch,
                    },
                );
            }
            Ev::Hop { pkt, stage, switch } => {
                let healthy = self.fstate.is_all_healthy();
                if !healthy && self.fstate.switch_is_down(stage, switch) {
                    self.metrics.on_forward_attempt(true);
                    self.oracle
                        .note(now.as_ps(), "drop:switch", u64::from(pkt), u64::from(stage));
                    self.dec_in_flight(now);
                    // ACKs are never retransmitted, so a dropped combined
                    // ACK must release its batch references here.
                    self.ack_refs.remove(&pkt);
                    return; // a dead switch eats the packet
                }
                let dst = self.packets[pkt as usize].dst;
                let dir = self.topo.direction(dst, stage);
                let dur = self.duration_of(pkt);
                // Sequential path arbitration: first idle port wins. With
                // the path-rotation extension the scan start varies per
                // attempt so retries explore all m paths.
                let m = self.params.multiplicity;
                let start = if self.params.path_rotation {
                    // SplitMix-style mixing so every (packet, attempt)
                    // pair explores an independent per-stage path vector.
                    let st = &self.packets[pkt as usize];
                    let mut h = (u64::from(pkt) << 32) ^ u64::from(st.attempts);
                    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((h >> (stage % 8 * 8)) % u64::from(m)) as u32
                } else {
                    0
                };
                let mut claimed = None;
                for k in 0..m {
                    let path = (start + k) % m;
                    // A failed link looks like a permanently busy port:
                    // the scan skips it, shifting traffic onto the
                    // direction's surviving paths.
                    if !healthy && self.fstate.link_is_down(stage, switch, dir, path) {
                        continue;
                    }
                    let idx = self.port_index(switch, dir, path);
                    if self.ports[stage as usize][idx] <= now {
                        self.ports[stage as usize][idx] = now + dur;
                        claimed = Some(path);
                        break;
                    }
                }
                match claimed {
                    None => {
                        self.metrics.on_forward_attempt(true);
                        self.oracle.note(
                            now.as_ps(),
                            "drop:port",
                            u64::from(pkt),
                            u64::from(stage),
                        );
                        self.dec_in_flight(now);
                        self.ack_refs.remove(&pkt);
                        // Dropped: the source's timeout handles recovery.
                    }
                    Some(path) => {
                        // During a bit-error burst the traversal can
                        // corrupt the packet (the port was still burned);
                        // the destination NIC's CRC discards it and the
                        // source timeout recovers, like any drop.
                        if !healthy {
                            let p = self.fstate.corruption_prob(now.as_ps());
                            if p > 0.0 && self.fault_rng.gen_bool(p) {
                                self.metrics.on_corrupted();
                                self.metrics.on_forward_attempt(true);
                                self.oracle.note(
                                    now.as_ps(),
                                    "drop:crc",
                                    u64::from(pkt),
                                    u64::from(stage),
                                );
                                self.dec_in_flight(now);
                                self.ack_refs.remove(&pkt);
                                return;
                            }
                        }
                        self.metrics.on_forward_attempt(false);
                        let hop_delay = Duration::from_ps(
                            self.params.switch_latency_ps + self.params.stage_delay_ps,
                        );
                        if stage + 1 == self.topo.stages() {
                            // Egress: tail arrives after the fiber plus
                            // serialization.
                            let at = now
                                + hop_delay
                                + Duration::from_ps(self.params.link_delay_ps)
                                + dur;
                            sched.schedule_at(at, Ev::Arrive { pkt });
                        } else {
                            // Inner stages always have targets by
                            // construction; a miss would indicate a wiring
                            // bug, so under `validate` it trips, and in
                            // release the packet is treated as dropped
                            // (recovered by the source timeout) instead of
                            // aborting the run.
                            let Some(target) = self.topo.target(stage, switch, dir, path) else {
                                debug_assert!(false, "inner stage {stage} has no target");
                                self.dec_in_flight(now);
                                self.ack_refs.remove(&pkt);
                                return;
                            };
                            sched.schedule_at(
                                now + hop_delay,
                                Ev::Hop {
                                    pkt,
                                    stage: stage + 1,
                                    switch: target.switch,
                                },
                            );
                        }
                    }
                }
            }
            Ev::Arrive { pkt } => {
                self.dec_in_flight(now);
                let (is_ack, dst, src) = {
                    let st = &self.packets[pkt as usize];
                    (st.acks, st.dst, st.src)
                };
                match is_ack {
                    Some(data_pkt) => {
                        // ACK arrived back at the data source; a combined
                        // ACK settles its whole batch.
                        let batch = self.ack_refs.remove(&pkt).unwrap_or_else(|| vec![data_pkt]);
                        for data_pkt in batch {
                            let data = &mut self.packets[data_pkt as usize];
                            if !data.acked {
                                data.acked = true;
                                // A slot already given back by retry
                                // exhaustion (repair racing a backoff
                                // retry: the packet gave up, then a late
                                // copy delivered and this ACK returned)
                                // must not be released twice.
                                let release = !data.released;
                                data.released = true;
                                if release {
                                    self.release_outstanding(now, dst.0);
                                    self.release_window(dst.0);
                                    // Successful round trip relaxes the
                                    // backoff.
                                    let src_nic = &mut self.nics[dst.0 as usize];
                                    src_nic.backoff_exp = src_nic.backoff_exp.saturating_sub(1);
                                }
                            }
                        }
                    }
                    None => {
                        let first = self.packets[pkt as usize].outcome == DeliveryOutcome::Pending;
                        if first {
                            self.packets[pkt as usize].outcome = DeliveryOutcome::Delivered;
                            let latency = now.since(self.packets[pkt as usize].generated_at);
                            self.metrics.on_delivered(latency, now);
                            self.metrics.note_flow_delivered(src.0);
                            self.oracle.note(
                                now.as_ps(),
                                "deliver",
                                u64::from(pkt),
                                u64::from(dst.0),
                            );
                            self.oracle.progress(now.as_ps());
                            let out = self.driver.delivered(dst.0, now.as_ps());
                            self.apply_driver_output(now, dst.0, out, sched);
                        }
                        // ACK every arrival (covers lost-ACK duplicates) —
                        // immediately, or batched per source when traffic
                        // combining is on.
                        let window = self.params.ack_coalesce_ps;
                        if window == 0 {
                            self.send_ack(now, dst.0, src.0, vec![pkt], sched);
                        } else {
                            let entry = self.nics[dst.0 as usize]
                                .pending_acks
                                .entry(src.0)
                                .or_insert_with(|| (Vec::new(), false));
                            entry.0.push(pkt);
                            if !entry.1 {
                                entry.1 = true;
                                sched.schedule_in(
                                    Duration::from_ps(window),
                                    Ev::AckFlush {
                                        node: dst.0,
                                        src: src.0,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            Ev::AckFlush { node, src } => {
                let Some((batch, _)) = self.nics[node as usize].pending_acks.remove(&src) else {
                    return;
                };
                if !batch.is_empty() {
                    self.send_ack(now, node, src, batch, sched);
                }
            }
            Ev::Timeout { pkt, attempt } => {
                let st = self.packets[pkt as usize];
                if st.acked || st.attempts != attempt || st.acks.is_some() {
                    return; // stale timer
                }
                // Deadline-aware retransmission: a retry whose packet has
                // outlived its age budget expires instead of retrying —
                // under overload, stale work is shed rather than
                // amplified. Delivered-but-unACKed packets only drop
                // their buffer slot (they are not a loss).
                let deadline = self.params.deadline_ps;
                if deadline > 0 && now.since(st.generated_at).as_ps() >= deadline {
                    if st.outcome != DeliveryOutcome::Delivered {
                        self.packets[pkt as usize].outcome = DeliveryOutcome::Expired;
                        self.metrics.on_expired(now);
                        self.oracle.note(
                            now.as_ps(),
                            "expire",
                            u64::from(pkt),
                            u64::from(st.src.0),
                        );
                        self.oracle.progress(now.as_ps());
                    }
                    if !st.released {
                        if let Some(p) = self.packets.get_mut(pkt as usize) {
                            p.released = true;
                        }
                        self.release_outstanding(now, st.src.0);
                        self.release_window(st.src.0);
                    }
                    return;
                }
                // Retry budget exhausted: the source gives up instead of
                // retrying forever. A packet that was delivered but whose
                // ACKs all died is only dropped from the buffer — it is
                // not a loss, so it must not count as abandoned.
                if st.attempts > self.params.max_retries {
                    if st.outcome != DeliveryOutcome::Delivered {
                        self.packets[pkt as usize].outcome = DeliveryOutcome::GaveUp;
                        self.metrics.on_abandoned(now);
                        self.oracle.note(
                            now.as_ps(),
                            "giveup",
                            u64::from(pkt),
                            u64::from(st.src.0),
                        );
                        self.oracle.progress(now.as_ps());
                    }
                    // Give the buffer slot back exactly once: a late ACK
                    // for a delivered-but-timer-exhausted packet must not
                    // release it again (see released in Ev::Arrive).
                    if !st.released {
                        if let Some(p) = self.packets.get_mut(pkt as usize) {
                            p.released = true;
                        }
                        self.release_outstanding(now, st.src.0);
                        self.release_window(st.src.0);
                    }
                    return;
                }
                self.metrics.on_retransmit();
                if self.params.backoff {
                    // Binary exponential backoff throttles the transmitter.
                    let nic = &mut self.nics[st.src.0 as usize];
                    nic.backoff_exp = (nic.backoff_exp + 1).min(self.params.max_backoff_exp);
                }
                self.enqueue(now, st.src.0, pkt, sched);
            }
            Ev::Fault(idx) => {
                if let Some(ev) = self.plan.events.get(idx as usize).copied() {
                    self.fstate.apply(self.plan.seed, now.as_ps(), &ev.kind);
                    self.oracle.note(now.as_ps(), "fault", u64::from(idx), 0);
                }
            }
        }
    }
}

/// Convenience: run a Baldur simulation to completion.
///
/// `horizon_ns` bounds simulated time (saturated configurations otherwise
/// retry for a very long time); `None` uses a generous default derived from
/// the workload size.
pub fn simulate(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
) -> LatencyReport {
    simulate_with_faults(active_nodes, params, link, driver, seed, horizon_ns, &[])
}

/// [`simulate`] with a set of dead switches injected before the run.
pub fn simulate_with_faults(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    faults: &[(u32, u32)],
) -> LatencyReport {
    simulate_impl(
        active_nodes,
        params,
        link,
        driver,
        seed,
        horizon_ns,
        faults,
        &FaultPlan::new(seed),
        OracleConfig::default(),
    )
}

/// [`simulate`] executing a full [`FaultPlan`]: scheduled kill/revive of
/// switches, links, and lasers plus bit-error bursts, with per-fault-epoch
/// metrics in the report.
pub fn simulate_plan(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    plan: &FaultPlan,
) -> LatencyReport {
    simulate_impl(
        active_nodes,
        params,
        link,
        driver,
        seed,
        horizon_ns,
        &[],
        plan,
        OracleConfig::default(),
    )
}

/// [`simulate_plan`] with an explicit [`OracleConfig`]: the chaos
/// experiment tightens the stall deadline, and the shrinker fixture
/// deliberately mis-tunes it to demonstrate plan minimization.
#[allow(clippy::too_many_arguments)]
pub fn simulate_chaos(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    plan: &FaultPlan,
    oracle_cfg: OracleConfig,
) -> LatencyReport {
    simulate_impl(
        active_nodes,
        params,
        link,
        driver,
        seed,
        horizon_ns,
        &[],
        plan,
        oracle_cfg,
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_impl(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    faults: &[(u32, u32)],
    plan: &FaultPlan,
    oracle_cfg: OracleConfig,
) -> LatencyReport {
    let total = driver.total_to_send();
    let sample_cap = (total.min(2_000_000)) as usize + 16;
    let mut model = BaldurNet::new(active_nodes, params, link, driver, seed, sample_cap);
    model.oracle = Oracle::new(oracle_cfg);
    if !plan.is_empty() {
        let repairs = plan.repair_times();
        let recovery = match (
            repairs.is_empty(),
            plan.events.iter().map(|e| e.at_ps).min(),
        ) {
            (false, Some(first_fault_ps)) => Some(RecoverySpec {
                // 1 us bins resolve recovery on CI-scale runs while a
                // 1 M-bin cap keeps long sweeps bounded.
                bin_ps: 1_000_000,
                frac: 0.5,
                first_fault_ps,
                repairs_ps: repairs,
            }),
            _ => None,
        };
        model.metrics = Collector::with_recovery(sample_cap, plan.epoch_boundaries(), recovery);
        model.oracle.set_boundaries(plan.epoch_boundaries());
        model.plan = plan.clone();
    }
    if !faults.is_empty() {
        model.inject_faults(faults);
    }
    let initial = model.driver.initial();
    let mut sim = Simulation::new(model);
    for (node, t) in initial {
        sim.scheduler_mut()
            .schedule_at(Time::from_ps(t), Ev::Wake(node));
    }
    for (idx, ev) in plan.events.iter().enumerate() {
        sim.scheduler_mut()
            .schedule_at(Time::from_ps(ev.at_ps), Ev::Fault(idx as u32));
    }
    let horizon = Time::from_ns(horizon_ns.unwrap_or_else(|| {
        // ~50x the time to stream the whole workload at line rate, plus
        // slack for retransmission storms.
        let per_node = total / u64::from(sim.model().active_nodes.max(1)) + 1;
        50 * per_node * link.packet_time().as_ps() / 1_000 + 10_000_000
    }));
    // Every 8192 executed events (a deterministic cadence, independent of
    // wall clock and thread count) the oracle's stuck-flow detector gets a
    // look; a latched stall aborts the run so livelocks surface as a
    // violation instead of burning the horizon.
    let stop = sim.run_until_observed(horizon, u64::MAX, 8192, |m, now| !m.oracle_tick(now));
    #[cfg(feature = "validate")]
    if stop == baldur_sim::StopReason::Drained {
        sim.model().debug_validate_drained();
    }
    let end = sim.scheduler().now();
    let events = sim.scheduler().events_executed();
    let mut model = sim.into_model();
    if stop == baldur_sim::StopReason::Drained {
        model.oracle_check_drained(end);
    }
    let mut report = model.into_report(end);
    report.events = events;
    report
}

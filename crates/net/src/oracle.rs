//! Always-on runtime invariant oracle for the network models.
//!
//! The `validate` feature gates *expensive* invariants (scheduler pop
//! monotonicity, per-event conservation audits). This module is the
//! cheap complement that ships in **release** builds: O(1) incremental
//! checkers on the models' hot paths plus an O(state) drain audit,
//! recording structured [`OracleReport`]s instead of panicking. A
//! violated invariant in a chaos run is data — the chaos harness shrinks
//! the fault plan around it and prints a reproduction — so the oracle
//! must never tear the process down, and must itself be mechanically
//! panic-free (it is inside the `fault-path-panic` lint wall).
//!
//! Checkers (see DESIGN.md "Runtime oracle & chaos convergence" for the
//! cost budget):
//!
//! * **packet conservation ledger** — at drain, `generated ==
//!   delivered + abandoned` and no packet left `Pending`;
//! * **credit-balance accounting** — electrical models: credits never
//!   exceed the VC cap, and at drain every credit counter is back to the
//!   cap (a leak means repair did not restore state exactly);
//! * **bounded-queue growth** — an input queue deeper than the credit
//!   cap means flow control is broken;
//! * **stuck-flow / livelock** — a progress watermark (last delivery or
//!   abandonment) that falls more than [`OracleConfig::stall_ps`] behind
//!   the clock while work is still outstanding.
//!
//! Violations carry the violation kind, the simulation time, the recent
//! event window (a fixed ring of model events), and the fault-epoch
//! index, and are routed through `core::error` (`BaldurError::Oracle`)
//! by the chaos experiment.

use baldur_sim::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Capacity of the recent-event ring carried into a report.
const TRACE_WINDOW: usize = 32;

/// Tuning knobs for the oracle. Not part of `RunConfig` (and therefore
/// not part of any sweep cache key): the oracle observes a run, it does
/// not define one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Maximum silent gap (ps) between progress events while work is
    /// outstanding before the stuck-flow detector fires. The default is
    /// far above any legitimate backoff gap (the capped BEB timeout is
    /// ~256 µs with paper parameters) so it only fires on genuine
    /// livelock.
    pub stall_ps: u64,
    /// Reports kept verbatim; further violations only bump
    /// [`OracleSummary::suppressed`].
    pub max_reports: usize,
    /// Consecutive *fair-share rounds* a flow may make zero progress —
    /// while it has work outstanding and *other* flows deliver — before
    /// the starvation watermark fires. An observation window only counts
    /// as a round when the network delivered at least one packet per
    /// contending flow in it, so the budget is denominated in missed
    /// fair shares, not wall-clock windows, and is invariant to both the
    /// oracle-tick cadence and the contention level. 0 disables the
    /// checker.
    pub starvation_windows: u32,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            // 50 ms of simulated silence with work outstanding.
            stall_ps: 50_000_000_000,
            max_reports: 8,
            starvation_windows: 16,
        }
    }
}

/// One invariant violation, as structured data (integers and strings
/// only, so reports are `Eq` and can ride inside the `core::error`
/// taxonomy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// The drain-time packet ledger does not balance.
    Conservation {
        /// Packets the workload generated.
        generated: u64,
        /// Packets delivered.
        delivered: u64,
        /// Packets abandoned after the retry budget.
        abandoned: u64,
        /// Packets still `Pending` at drain (should be zero).
        stranded: u64,
    },
    /// A monotone counter would have gone negative (the decrement is
    /// skipped and reported instead of wrapping).
    CounterUnderflow {
        /// Which counter.
        counter: String,
    },
    /// State that must be empty at drain was not.
    ResidualState {
        /// What was left over (e.g. `"ack_refs"`, `"nic_queue"`).
        what: String,
        /// How much of it.
        count: u64,
    },
    /// A credit counter exceeded the VC cap (the increment is capped and
    /// reported).
    CreditOverflow {
        /// Router index (`u32::MAX` = a NIC).
        router: u32,
        /// Port/VC slot index.
        port: u32,
        /// The counter value before the offending increment.
        credits: u32,
        /// The VC cap.
        cap: u32,
    },
    /// A credit counter was below the cap at drain — credits leaked,
    /// i.e. a fault/repair cycle failed to restore flow-control state.
    CreditLeak {
        /// `"router"` or `"nic"`.
        element: String,
        /// Element index.
        index: u32,
        /// Port/VC slot index.
        port: u32,
        /// The counter value at drain.
        credits: u32,
        /// The VC cap it should have returned to.
        cap: u32,
    },
    /// An input queue grew past the credit cap: flow control is broken.
    QueueOverflow {
        /// Router index.
        router: u32,
        /// Queue slot index.
        queue: u32,
        /// Queue depth after the offending push.
        len: u64,
        /// The bound (VC cap).
        bound: u64,
    },
    /// No progress (delivery or abandonment) for longer than the stall
    /// budget while work was still outstanding.
    StuckFlow {
        /// Picoseconds since the progress watermark.
        idle_ps: u64,
        /// Work items outstanding when the detector fired.
        outstanding: u64,
    },
    /// One flow made zero delivery progress for
    /// [`OracleConfig::starvation_windows`] consecutive fair-share
    /// rounds — windows in which the network delivered at least one
    /// packet per contending flow — while it had work outstanding:
    /// per-flow starvation, not a global stall and not fair-share
    /// queueing under contention.
    Starvation {
        /// The starved source node / flow index.
        flow: u32,
        /// Consecutive zero-progress fair-share rounds observed.
        windows: u32,
        /// The flow's outstanding work when the watermark fired.
        outstanding: u64,
    },
    /// A bounded ingress queue was observed deeper than its configured
    /// cap: the admission-control drop policy is not being enforced.
    OccupancyBound {
        /// The node whose ingress queue overflowed.
        node: u32,
        /// Observed queue depth.
        len: u64,
        /// The configured cap it must stay within.
        bound: u64,
    },
}

/// One entry of the recent-event window attached to a report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Event time, ps.
    pub at_ps: u64,
    /// Event tag (e.g. `"inject"`, `"drop"`, `"deliver"`, `"fault"`).
    pub what: String,
    /// First event operand (model-specific: packet id, router, …).
    pub a: u64,
    /// Second event operand.
    pub b: u64,
}

/// A structured invariant-violation report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleReport {
    /// What went wrong.
    pub violation: Violation,
    /// When, on the simulation clock (ps).
    pub at_ps: u64,
    /// The fault epoch containing `at_ps` (0 when the run had no fault
    /// plan).
    pub epoch: u32,
    /// The most recent model events before the violation, oldest first.
    pub trace: Vec<TraceEntry>,
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "oracle violation at {} ps (fault epoch {}): {:?} [{} trace events]",
            self.at_ps,
            self.epoch,
            self.violation,
            self.trace.len()
        )
    }
}

/// What a run's oracle observed, attached to every
/// [`crate::metrics::LatencyReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleSummary {
    /// Violations, in detection order (capped at
    /// [`OracleConfig::max_reports`]).
    pub reports: Vec<OracleReport>,
    /// Violations beyond the cap, counted but not kept.
    pub suppressed: u64,
}

impl OracleSummary {
    /// True when the run violated nothing.
    pub fn is_clean(&self) -> bool {
        self.reports.is_empty() && self.suppressed == 0
    }

    /// Total violations observed (kept + suppressed).
    pub fn total(&self) -> u64 {
        self.reports.len() as u64 + self.suppressed
    }
}

/// The live oracle a network model owns. All hot-path operations are
/// O(1) and allocation-free (the trace ring holds `&'static str` tags;
/// strings are materialized only when a violation is recorded).
#[derive(Debug, Clone)]
pub struct Oracle {
    cfg: OracleConfig,
    boundaries: Vec<u64>,
    ring: Vec<(u64, &'static str, u64, u64)>,
    pos: usize,
    reports: Vec<OracleReport>,
    suppressed: u64,
    last_progress_ps: u64,
    stall_latched: bool,
    flows: Vec<FlowWatch>,
    starve_total: u64,
}

/// Per-flow starvation-watermark state.
#[derive(Debug, Clone, Copy, Default)]
struct FlowWatch {
    /// Delivered count at the last observation window.
    last: u64,
    /// Consecutive zero-progress fair-share rounds (with work
    /// outstanding, while the network delivered at least a packet per
    /// contending flow).
    stalled: u32,
    /// Fired already; re-arms on the flow's next delivery.
    latched: bool,
}

impl Oracle {
    /// A fresh oracle with no fault-epoch context.
    pub fn new(cfg: OracleConfig) -> Self {
        Oracle {
            cfg,
            boundaries: Vec::new(),
            ring: Vec::with_capacity(TRACE_WINDOW),
            pos: 0,
            reports: Vec::new(),
            suppressed: 0,
            last_progress_ps: 0,
            stall_latched: false,
            flows: Vec::new(),
            starve_total: 0,
        }
    }

    /// Supplies the fault-epoch boundaries (ascending, ps) reports are
    /// annotated with.
    pub fn set_boundaries(&mut self, boundaries_ps: Vec<u64>) {
        self.boundaries = boundaries_ps;
    }

    /// Records one model event into the recent-event ring.
    #[inline]
    pub fn note(&mut self, at_ps: u64, what: &'static str, a: u64, b: u64) {
        if self.ring.len() < TRACE_WINDOW {
            self.ring.push((at_ps, what, a, b));
            self.pos = self.ring.len() % TRACE_WINDOW;
        } else {
            if let Some(slot) = self.ring.get_mut(self.pos) {
                *slot = (at_ps, what, a, b);
            }
            self.pos = (self.pos + 1) % TRACE_WINDOW;
        }
    }

    /// Advances the progress watermark (a delivery or abandonment
    /// happened at `at_ps`).
    #[inline]
    pub fn progress(&mut self, at_ps: u64) {
        self.last_progress_ps = self.last_progress_ps.max(at_ps);
        self.stall_latched = false;
    }

    /// Records a violation with the current trace window and epoch
    /// context. Never panics, never stops the run.
    pub fn record(&mut self, at_ps: u64, violation: Violation) {
        if self.reports.len() >= self.cfg.max_reports {
            self.suppressed += 1;
            return;
        }
        let epoch = Time::from_ps(at_ps).epoch_index(&self.boundaries) as u32;
        self.reports.push(OracleReport {
            violation,
            at_ps,
            epoch,
            trace: self.trace_window(),
        });
    }

    /// The stuck-flow check: with `outstanding > 0` work items and no
    /// progress for more than the stall budget, fires once (re-arms on
    /// the next progress event). Returns true when it fired — callers
    /// may abort the run early, since a livelocked model would otherwise
    /// spin to the horizon.
    pub fn check_stall(&mut self, now_ps: u64, outstanding: u64) -> bool {
        if self.stall_latched || outstanding == 0 {
            return false;
        }
        let idle = now_ps.saturating_sub(self.last_progress_ps);
        if idle <= self.cfg.stall_ps {
            return false;
        }
        self.stall_latched = true;
        self.record(
            now_ps,
            Violation::StuckFlow {
                idle_ps: idle,
                outstanding,
            },
        );
        true
    }

    /// The per-flow starvation watermark. Call once per observation
    /// window (the models' oracle-tick cadence) with each flow's
    /// cumulative delivered count and its currently outstanding work. A
    /// flow that makes zero progress for
    /// [`OracleConfig::starvation_windows`] consecutive *fair-share
    /// rounds* — while it has work outstanding — records a
    /// [`Violation::Starvation`] once, re-arming on the flow's next
    /// delivery. A window counts as a round only when the network
    /// delivered at least one packet per flow that had work outstanding:
    /// under heavy contention (an incast sink shared by hundreds of
    /// senders) a flow legitimately waits many windows for its fair
    /// share, and that wait must not read as starvation at one topology
    /// scale and not another. A globally stalled network is *not*
    /// starvation either (that is [`Oracle::check_stall`]'s job), so
    /// windows without global progress also leave the counters
    /// untouched.
    pub fn check_starvation(
        &mut self,
        now_ps: u64,
        flow_delivered: &[u64],
        flow_outstanding: &[u64],
    ) {
        let windows = self.cfg.starvation_windows;
        if windows == 0 {
            return;
        }
        let total: u64 = flow_delivered.iter().sum();
        let delta = total.saturating_sub(self.starve_total);
        self.starve_total = total;
        let contenders = flow_outstanding.iter().filter(|&&o| o > 0).count() as u64;
        let fair_round = delta >= contenders.max(1);
        let tracked = flow_delivered.len().max(flow_outstanding.len());
        if self.flows.len() < tracked {
            self.flows.resize(tracked, FlowWatch::default());
        }
        let mut fired: Vec<(u32, u32, u64)> = Vec::new();
        for (i, w) in self.flows.iter_mut().enumerate() {
            let d = flow_delivered.get(i).copied().unwrap_or(0);
            let outstanding = flow_outstanding.get(i).copied().unwrap_or(0);
            if d > w.last {
                w.last = d;
                w.stalled = 0;
                w.latched = false;
            } else if outstanding == 0 {
                w.stalled = 0;
            } else if fair_round {
                w.stalled = w.stalled.saturating_add(1);
                if w.stalled >= windows && !w.latched {
                    w.latched = true;
                    fired.push((i as u32, w.stalled, outstanding));
                }
            }
        }
        for (flow, stalled, outstanding) in fired {
            self.record(
                now_ps,
                Violation::Starvation {
                    flow,
                    windows: stalled,
                    outstanding,
                },
            );
        }
    }

    /// The bounded-queue occupancy checker: records a violation when an
    /// ingress queue is observed deeper than its cap (`bound == 0`
    /// means unbounded / unchecked).
    pub fn check_occupancy(&mut self, at_ps: u64, node: u32, len: u64, bound: u64) {
        if bound == 0 || len <= bound {
            return;
        }
        self.record(at_ps, Violation::OccupancyBound { node, len, bound });
    }

    /// True when nothing has been reported.
    pub fn is_clean(&self) -> bool {
        self.reports.is_empty() && self.suppressed == 0
    }

    /// Snapshot of everything observed so far.
    pub fn summary(&self) -> OracleSummary {
        OracleSummary {
            reports: self.reports.clone(),
            suppressed: self.suppressed,
        }
    }

    fn trace_window(&self) -> Vec<TraceEntry> {
        let entry = |&(at_ps, what, a, b): &(u64, &'static str, u64, u64)| TraceEntry {
            at_ps,
            what: what.to_string(),
            a,
            b,
        };
        if self.ring.len() < TRACE_WINDOW {
            self.ring.iter().map(entry).collect()
        } else {
            // Oldest-first: the slot at `pos` is the next to be
            // overwritten, i.e. the oldest.
            let (newer, older) = self.ring.split_at(self.pos.min(self.ring.len()));
            older.iter().chain(newer.iter()).map(entry).collect()
        }
    }
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::new(OracleConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_oracle_reports_nothing() {
        let mut o = Oracle::default();
        o.note(10, "inject", 1, 0);
        o.progress(20);
        assert!(o.is_clean());
        assert!(o.summary().is_clean());
        assert_eq!(o.summary().total(), 0);
    }

    #[test]
    fn records_carry_trace_epoch_and_cap() {
        let mut o = Oracle::new(OracleConfig {
            stall_ps: 1,
            max_reports: 2,
            ..OracleConfig::default()
        });
        o.set_boundaries(vec![1_000, 2_000]);
        for i in 0..40u64 {
            o.note(i, "ev", i, 0);
        }
        o.record(
            1_500,
            Violation::CounterUnderflow {
                counter: "in_flight".into(),
            },
        );
        let s = o.summary();
        assert_eq!(s.reports.len(), 1);
        let r = &s.reports[0];
        assert_eq!(r.epoch, 1, "1_500 is between the boundaries");
        assert_eq!(r.trace.len(), TRACE_WINDOW);
        // Oldest-first window over the last 32 of 40 notes.
        assert_eq!(r.trace[0].at_ps, 8);
        assert_eq!(r.trace[31].at_ps, 39);
        // The cap suppresses, never drops silently.
        o.record(
            1_600,
            Violation::CounterUnderflow {
                counter: "x".into(),
            },
        );
        o.record(
            1_700,
            Violation::CounterUnderflow {
                counter: "y".into(),
            },
        );
        let s = o.summary();
        assert_eq!(s.reports.len(), 2);
        assert_eq!(s.suppressed, 1);
        assert_eq!(s.total(), 3);
        assert!(!s.is_clean());
        assert!(s.reports[0].to_string().contains("fault epoch 1"));
    }

    #[test]
    fn starvation_fires_only_when_others_progress() {
        let mut o = Oracle::new(OracleConfig {
            starvation_windows: 3,
            ..OracleConfig::default()
        });
        // Flow 1 is stuck with outstanding work while flow 0 delivers.
        let outstanding = [0u64, 5];
        let mut delivered = [0u64, 0];
        for tick in 1..=2u64 {
            delivered[0] = tick;
            o.check_starvation(tick * 1_000, &delivered, &outstanding);
        }
        assert!(o.is_clean(), "two stalled windows are under the budget");
        delivered[0] = 3;
        o.check_starvation(3_000, &delivered, &outstanding);
        let s = o.summary();
        assert_eq!(s.reports.len(), 1, "third window fires");
        match &s.reports[0].violation {
            Violation::Starvation {
                flow,
                windows,
                outstanding,
            } => {
                assert_eq!(*flow, 1);
                assert_eq!(*windows, 3);
                assert_eq!(*outstanding, 5);
            }
            other => panic!("wrong violation: {other:?}"),
        }
        // Latched: more stalled windows don't re-fire...
        delivered[0] = 4;
        o.check_starvation(4_000, &delivered, &outstanding);
        assert_eq!(o.summary().total(), 1);
        // ...until the starved flow finally delivers, which re-arms it.
        delivered[1] = 1;
        o.check_starvation(5_000, &delivered, &outstanding);
        for tick in 6..=8u64 {
            delivered[0] += 1;
            o.check_starvation(tick * 1_000, &delivered, &outstanding);
        }
        assert_eq!(o.summary().total(), 2, "re-armed after progress");
    }

    #[test]
    fn fair_share_waiting_is_not_starvation() {
        let mut o = Oracle::new(OracleConfig {
            starvation_windows: 2,
            ..OracleConfig::default()
        });
        // Three contenders share a slow sink: one delivery per window is
        // less than one fair-share round, so no window counts against
        // flow 2 no matter how many pass.
        let outstanding = [5u64, 5, 5];
        let mut delivered = [0u64, 0, 0];
        for tick in 1..=20u64 {
            delivered[(tick % 2) as usize] += 1;
            o.check_starvation(tick * 1_000, &delivered, &outstanding);
        }
        assert!(o.is_clean(), "fair-share waiting under contention");
        // When the sink serves a full round per window and flow 2 still
        // gets nothing, that IS starvation.
        for tick in 21..=22u64 {
            delivered[0] += 2;
            delivered[1] += 1;
            o.check_starvation(tick * 1_000, &delivered, &outstanding);
        }
        let s = o.summary();
        assert_eq!(s.reports.len(), 1);
        match &s.reports[0].violation {
            Violation::Starvation {
                flow, outstanding, ..
            } => {
                assert_eq!(*flow, 2);
                assert_eq!(*outstanding, 5);
            }
            other => panic!("wrong violation: {other:?}"),
        }
    }

    #[test]
    fn global_stall_is_not_starvation() {
        let mut o = Oracle::new(OracleConfig {
            starvation_windows: 2,
            ..OracleConfig::default()
        });
        // Nobody delivers: every flow is stuck, so no flow is starved.
        let outstanding = [4u64, 4];
        let delivered = [1u64, 1];
        o.check_starvation(1_000, &delivered, &outstanding);
        for tick in 2..=10u64 {
            o.check_starvation(tick * 1_000, &delivered, &outstanding);
        }
        assert!(o.is_clean());
        // A flow with no outstanding work is idle, not starved.
        let outstanding = [0u64, 4];
        let mut d = delivered;
        for tick in 11..=20u64 {
            d[1] += 1;
            o.check_starvation(tick * 1_000, &d, &outstanding);
        }
        assert!(o.is_clean());
    }

    #[test]
    fn occupancy_bound_checks_only_bounded_queues() {
        let mut o = Oracle::default();
        o.check_occupancy(100, 3, 1_000, 0);
        assert!(o.is_clean(), "bound 0 = unbounded, never flagged");
        o.check_occupancy(100, 3, 8, 8);
        assert!(o.is_clean(), "at the cap is within bounds");
        o.check_occupancy(200, 3, 9, 8);
        let s = o.summary();
        assert_eq!(s.reports.len(), 1);
        assert_eq!(
            s.reports[0].violation,
            Violation::OccupancyBound {
                node: 3,
                len: 9,
                bound: 8
            }
        );
    }

    #[test]
    fn stall_fires_once_and_rearms_on_progress() {
        let mut o = Oracle::new(OracleConfig {
            stall_ps: 100,
            max_reports: 8,
            ..OracleConfig::default()
        });
        o.progress(50);
        assert!(!o.check_stall(100, 3), "within budget");
        assert!(!o.check_stall(100, 0), "no outstanding work, no stall");
        assert!(o.check_stall(200, 3), "101 ps silent > 100 ps budget");
        assert!(!o.check_stall(300, 3), "latched until progress");
        o.progress(300);
        assert!(o.check_stall(500, 1), "re-armed");
        assert_eq!(o.summary().reports.len(), 2);
        match &o.summary().reports[0].violation {
            Violation::StuckFlow {
                idle_ps,
                outstanding,
            } => {
                assert_eq!(*idle_ps, 150);
                assert_eq!(*outstanding, 3);
            }
            other => panic!("wrong violation: {other:?}"),
        }
    }
}

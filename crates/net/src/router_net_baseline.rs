//! The retired map-based electrical model, kept for differential testing.
//!
//! This is the pre-SoA implementation of `router_net` (per-router
//! `Vec<VecDeque>` input queues, per-NIC `VecDeque`s), frozen when the
//! hot state moved to struct-of-arrays. It is **not** a hot path: the
//! property suite runs seeded workloads through both models and asserts
//! byte-identical [`LatencyReport`]s. Behavioral semantics (paper Table
//! VI baselines):
//!
//! Virtual-cut-through, input-queued routers with credit-based flow
//! control: 24 KB of buffering per port split over 3 VCs, 90 ns
//! port-to-port switch latency (Mellanox SB7700), and per-output
//! round-robin arbitration. The same engine runs the electrical
//! multi-butterfly, dragonfly, and fat-tree — only the [`RoutingAlg`]
//! differs. Electrical networks are lossless: congestion backs packets up
//! through credits instead of dropping them.

use std::collections::VecDeque;

use baldur_sim::rng::StreamRng;
use baldur_sim::{Duration, Model, Scheduler, Simulation, Time};
use baldur_topo::graph::{Endpoint, NodeId, RouterGraph};

use crate::config::{LinkParams, RouterParams};
use crate::driver::Driver;
use crate::faults::{nested_kill_set, FaultKind, FaultPlan};
use crate::metrics::{Collector, LatencyReport, RecoverySpec};
use crate::oracle::{Oracle, OracleConfig, Violation};
use crate::routing::{RouteState, RoutingAlg};

type PktId = u32;

#[derive(Debug, Clone, Copy)]
struct RPacket {
    src: NodeId,
    dst: NodeId,
    generated_at: Time,
    route: RouteState,
    /// Output decision at the current router: (port, next vc).
    decision: (u32, u32),
}

struct Router {
    /// `queues[in_port * vcs + vc]` — packets buffered at this input.
    queues: Vec<VecDeque<PktId>>,
    /// `credits[out_port * vcs + vc]` — free slots downstream.
    credits: Vec<u32>,
    out_busy: Vec<Time>,
    /// Buffered packets routed to each output (adaptive-routing signal).
    out_pending: Vec<u32>,
    arb_scheduled: bool,
    rr: u32,
}

struct Nic {
    queue: VecDeque<PktId>,
    tx_busy_until: Time,
    credits: Vec<u32>,
    try_scheduled: bool,
}

/// Events of the electrical model.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Driver wakeup.
    Wake(u32),
    /// NIC attempts to inject.
    NicTry(u32),
    /// Packet head arrives at a router input.
    Arrive {
        /// Packet id.
        pkt: PktId,
        /// Router index.
        router: u32,
        /// Input port.
        port: u32,
        /// Virtual channel.
        vc: u32,
    },
    /// Run the router's allocation loop.
    Arb(u32),
    /// A buffer slot freed upstream (tail passed): return one credit.
    Credit {
        /// Upstream router (or `u32::MAX` for a NIC).
        router: u32,
        /// Port on the upstream router (or node id for a NIC).
        port: u32,
        /// VC whose slot freed.
        vc: u32,
    },
    /// Packet tail reaches the destination node.
    Deliver {
        /// Packet id.
        pkt: PktId,
        /// Destination node.
        node: u32,
    },
    /// Apply fault-plan event `idx` (scheduled at its `at_ps`).
    Fault(u32),
}

/// The electrical network simulation model.
pub struct RouterNet {
    graph: RouterGraph,
    alg: RoutingAlg,
    link: LinkParams,
    rp: RouterParams,
    driver: Driver,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    packets: Vec<RPacket>,
    metrics: Collector,
    rng: StreamRng,
    vc_cap: u32,
    /// Dead routers (fault injection). The electrical baselines have no
    /// retransmission layer, so a packet reaching a dead router is a
    /// terminal loss (counted as abandoned) — the credit it held is
    /// returned upstream so the lossless machinery stays live.
    router_down: Vec<bool>,
    any_router_down: bool,
    /// The fault schedule this run executes (empty by default). Only
    /// router-granularity kinds apply here ([`FaultKind::FailFraction`],
    /// [`FaultKind::RouterDown`]/[`FaultKind::RouterUp`],
    /// [`FaultKind::ReviveAll`]); element-level kinds are Baldur-specific
    /// and ignored.
    plan: FaultPlan,
    /// Always-on runtime invariant oracle (credit balance, bounded
    /// queues, stuck-flow, drain conservation).
    oracle: Oracle,
    /// Per-source packets still owed a terminal outcome (admitted, not
    /// yet delivered or lost) — the starvation watermark's outstanding
    /// signal.
    flow_pending: Vec<u64>,
}

impl RouterNet {
    /// Builds the model.
    pub fn new(
        graph: RouterGraph,
        alg: RoutingAlg,
        link: LinkParams,
        rp: RouterParams,
        driver: Driver,
        seed: u64,
        sample_cap: usize,
    ) -> Self {
        let vc_cap = rp.vc_capacity(link.packet_bytes);
        let vcs = rp.vcs;
        let routers = (0..graph.router_count())
            .map(|r| {
                let radix = graph.radix(r) as usize;
                Router {
                    queues: vec![VecDeque::new(); radix * vcs as usize],
                    credits: vec![vc_cap; radix * vcs as usize],
                    out_busy: vec![Time::ZERO; radix],
                    out_pending: vec![0; radix],
                    arb_scheduled: false,
                    rr: 0,
                }
            })
            .collect();
        let nics = (0..driver.nodes())
            .map(|_| Nic {
                queue: VecDeque::new(),
                tx_busy_until: Time::ZERO,
                credits: vec![vc_cap; vcs as usize],
                try_scheduled: false,
            })
            .collect();
        let router_count = graph.router_count();
        let nodes = driver.nodes() as usize;
        RouterNet {
            graph,
            alg,
            link,
            rp,
            driver,
            routers,
            nics,
            packets: Vec::new(),
            metrics: Collector::new(sample_cap),
            rng: StreamRng::named(seed, "routernt", 0),
            vc_cap,
            router_down: vec![false; router_count as usize],
            any_router_down: false,
            plan: FaultPlan::new(seed),
            oracle: Oracle::new(OracleConfig::default()),
            flow_pending: vec![0; nodes],
        }
    }

    /// One admitted packet of `src` reached a terminal outcome
    /// (delivered or lost): retire it from the starvation signal.
    fn flow_done(&mut self, src: u32) {
        if let Some(p) = self.flow_pending.get_mut(src as usize) {
            *p = p.saturating_sub(1);
        }
    }

    #[inline]
    fn is_down(&self, router: u32) -> bool {
        self.any_router_down && self.router_down[router as usize]
    }

    /// Returns (to the upstream feeder of `(router, port, vc)`) the
    /// buffer credit a dropped packet held, so drops at dead routers do
    /// not bleed the credit pool dry.
    fn refund_credit(&self, now: Time, router: u32, port: u32, vc: u32, sched: &mut Scheduler<Ev>) {
        match self.graph.peer(router, port) {
            Endpoint::Router {
                router: ur,
                port: up,
            } => sched.schedule_at(
                now,
                Ev::Credit {
                    router: ur,
                    port: up,
                    vc,
                },
            ),
            Endpoint::Node(n) => sched.schedule_at(
                now,
                Ev::Credit {
                    router: u32::MAX,
                    port: n.0,
                    vc,
                },
            ),
            Endpoint::Unused => {}
        }
    }

    /// Kills `router`: every packet buffered in it becomes a terminal
    /// loss (credits refunded upstream) and everything arriving later is
    /// dropped on arrival.
    fn kill_router(&mut self, now: Time, router: u32, sched: &mut Scheduler<Ev>) {
        // A fault plan is external input; a router index outside this
        // topology is ignored rather than trusted to index.
        let Some(down) = self.router_down.get_mut(router as usize) else {
            return;
        };
        if *down {
            return;
        }
        *down = true;
        self.any_router_down = true;
        let vcs = self.rp.vcs.max(1);
        let nq = self
            .routers
            .get(router as usize)
            .map_or(0, |r| r.queues.len());
        for qi in 0..nq {
            loop {
                let Some(pkt) = self
                    .routers
                    .get_mut(router as usize)
                    .and_then(|r| r.queues.get_mut(qi))
                    .and_then(|q| q.pop_front())
                else {
                    break;
                };
                let out = self.packets.get(pkt as usize).map(|p| p.decision.0);
                match out.and_then(|o| {
                    self.routers
                        .get_mut(router as usize)
                        .and_then(|r| r.out_pending.get_mut(o as usize))
                }) {
                    Some(p) if *p > 0 => *p -= 1,
                    _ => self.oracle.record(
                        now.as_ps(),
                        Violation::CounterUnderflow {
                            counter: "out_pending".into(),
                        },
                    ),
                }
                self.metrics.on_forward_attempt(true);
                self.metrics.on_abandoned(now);
                if let Some(src) = self.packets.get(pkt as usize).map(|p| p.src.0) {
                    self.flow_done(src);
                }
                self.oracle
                    .note(now.as_ps(), "drop:kill", u64::from(pkt), u64::from(router));
                self.oracle.progress(now.as_ps());
                let in_port = qi as u32 / vcs;
                let in_vc = qi as u32 % vcs;
                self.refund_credit(now, router, in_port, in_vc, sched);
            }
        }
    }

    /// Revives `router`. Its queues were flushed at kill time and credit
    /// returns kept flowing to it while it was down ([`Ev::Credit`]
    /// increments regardless of health), so repair is exactly "clear the
    /// down flag": no credit reconstruction and no arbitration kick —
    /// the next arrival schedules arbitration as usual.
    fn revive_router(&mut self, router: u32) {
        if let Some(down) = self.router_down.get_mut(router as usize) {
            *down = false;
        }
        self.any_router_down = self.router_down.iter().any(|&d| d);
    }

    /// Applies one fault-plan event. Only router-granularity kinds act on
    /// the electrical model.
    fn apply_fault(&mut self, now: Time, kind: FaultKind, sched: &mut Scheduler<Ev>) {
        match kind {
            FaultKind::FailFraction { fraction } => {
                let dead = nested_kill_set(self.plan.seed, self.graph.router_count(), fraction);
                for (r, &d) in dead.iter().enumerate() {
                    if d {
                        self.kill_router(now, r as u32, sched);
                    }
                }
            }
            FaultKind::RouterDown { router } => self.kill_router(now, router, sched),
            FaultKind::RouterUp { router } => self.revive_router(router),
            FaultKind::ReviveAll => {
                self.router_down.iter_mut().for_each(|d| *d = false);
                self.any_router_down = false;
            }
            _ => {}
        }
    }

    fn qidx(&self, port: u32, vc: u32) -> usize {
        (port * self.rp.vcs + vc) as usize
    }

    fn schedule_arb(&mut self, router: u32, at: Time, sched: &mut Scheduler<Ev>) {
        let r = &mut self.routers[router as usize];
        if !r.arb_scheduled {
            r.arb_scheduled = true;
            sched.schedule_at(at, Ev::Arb(router));
        }
    }

    fn schedule_nic(&mut self, node: u32, at: Time, sched: &mut Scheduler<Ev>) {
        let nic = &mut self.nics[node as usize];
        if !nic.try_scheduled {
            nic.try_scheduled = true;
            sched.schedule_at(at, Ev::NicTry(node));
        }
    }

    fn apply_driver_output(
        &mut self,
        now: Time,
        node: u32,
        out: crate::driver::DriverOutput,
        sched: &mut Scheduler<Ev>,
    ) {
        let cap = self.rp.nic_queue_cap;
        for cmd in out.sends {
            for _ in 0..cmd.count {
                self.metrics.on_generated(now);
                self.metrics.note_flow_generated(node);
                if cap > 0 && self.nics[node as usize].queue.len() >= cap as usize {
                    // Admission control: the NIC queue is full, so the packet
                    // is refused at the edge and counted as an ingress drop.
                    self.metrics.on_ingress_drop(now);
                    self.oracle
                        .note(now.as_ps(), "drop:ingress", u64::from(node), 0);
                    self.oracle.progress(now.as_ps());
                    continue;
                }
                let pkt = self.packets.len() as PktId;
                self.packets.push(RPacket {
                    src: NodeId(node),
                    dst: cmd.dst,
                    generated_at: now,
                    route: RouteState::default(),
                    decision: (0, 0),
                });
                if let Some(p) = self.flow_pending.get_mut(node as usize) {
                    *p += 1;
                }
                self.nics[node as usize].queue.push_back(pkt);
                if self.rp.deadline_ps > 0 {
                    // Eager expiry: revisit the queue when this packet's
                    // age budget runs out, so the deadline is enforced
                    // even if no injection credit ever arrives to
                    // trigger an attempt. The handler is idempotent —
                    // a live head just retries injection.
                    sched.schedule_at(
                        now + Duration::from_ps(self.rp.deadline_ps),
                        Ev::NicTry(node),
                    );
                }
                self.oracle.check_occupancy(
                    now.as_ps(),
                    node,
                    self.nics[node as usize].queue.len() as u64,
                    u64::from(cap),
                );
            }
        }
        if !self.nics[node as usize].queue.is_empty() {
            self.schedule_nic(node, now, sched);
        }
        if let Some(t) = out.wake_at_ps {
            sched.schedule_at(Time::from_ps(t), Ev::Wake(node));
        }
    }

    /// Runs the allocation loop of one router; grants as many
    /// (input, output) matches as possible at `now`.
    fn arbitrate(&mut self, now: Time, router: u32, sched: &mut Scheduler<Ev>) {
        let radix = self.graph.radix(router);
        let vcs = self.rp.vcs;
        let nq = (radix * vcs) as usize;
        let ser = self.link.packet_time();
        let mut next_wakeup: Option<Time> = None;

        for out_port in 0..radix {
            let busy = self.routers[router as usize].out_busy[out_port as usize];
            if busy > now {
                next_wakeup = Some(next_wakeup.map_or(busy, |t: Time| t.min(busy)));
                continue;
            }
            // Round-robin over input queues for fairness.
            let start = self.routers[router as usize].rr as usize;
            let mut granted = false;
            for off in 0..nq {
                let qi = (start + off) % nq;
                let Some(&pkt) = self.routers[router as usize].queues[qi].front() else {
                    continue;
                };
                let (dport, dvc) = self.packets[pkt as usize].decision;
                if dport != out_port {
                    continue;
                }
                // Downstream space?
                let peer = self.graph.peer(router, out_port);
                let has_credit = match peer {
                    Endpoint::Router { .. } => {
                        self.routers[router as usize].credits[self.qidx(out_port, dvc)] > 0
                    }
                    Endpoint::Node(_) => true, // nodes always sink
                    Endpoint::Unused => {
                        // Can't happen with a correct routing table; record
                        // instead of panicking and let the stall detector
                        // surface the wedged flow.
                        self.oracle.record(
                            now.as_ps(),
                            Violation::ResidualState {
                                what: "route_to_unused_port".into(),
                                count: u64::from(router),
                            },
                        );
                        false
                    }
                };
                if !has_credit {
                    continue;
                }
                // Grant.
                let in_vc = (qi as u32) % vcs;
                let in_port = (qi as u32) / vcs;
                self.routers[router as usize].queues[qi].pop_front();
                self.routers[router as usize].out_pending[out_port as usize] -= 1;
                self.routers[router as usize].out_busy[out_port as usize] = now + ser;
                self.routers[router as usize].rr = (qi as u32 + 1) % nq as u32;

                // Return the freed input slot upstream once the tail passes.
                match self.graph.peer(router, in_port) {
                    Endpoint::Router {
                        router: ur,
                        port: up,
                    } => sched.schedule_at(
                        now + ser,
                        Ev::Credit {
                            router: ur,
                            port: up,
                            vc: in_vc,
                        },
                    ),
                    Endpoint::Node(n) => sched.schedule_at(
                        now + ser,
                        Ev::Credit {
                            router: u32::MAX,
                            port: n.0,
                            vc: in_vc,
                        },
                    ),
                    Endpoint::Unused => {}
                }

                // Launch downstream.
                let hop = Duration::from_ps(self.rp.switch_latency_ps)
                    + Duration::from_ps(self.graph.delay(router, out_port));
                match peer {
                    Endpoint::Router {
                        router: dr,
                        port: dp,
                    } => {
                        let idx = self.qidx(out_port, dvc);
                        self.routers[router as usize].credits[idx] -= 1;
                        sched.schedule_at(
                            now + hop,
                            Ev::Arrive {
                                pkt,
                                router: dr,
                                port: dp,
                                vc: dvc,
                            },
                        );
                    }
                    Endpoint::Node(n) => {
                        sched.schedule_at(now + hop + ser, Ev::Deliver { pkt, node: n.0 });
                    }
                    Endpoint::Unused => {} // filtered by has_credit above
                }
                granted = true;
                break;
            }
            if granted {
                // This output is now busy until now+ser; revisit then if
                // more traffic waits.
                let t = now + ser;
                next_wakeup = Some(next_wakeup.map_or(t, |x: Time| x.min(t)));
            }
        }
        if let Some(t) = next_wakeup {
            self.schedule_arb(router, t, sched);
        }
    }

    /// Finalizes the run.
    pub fn into_report(self, end: Time) -> LatencyReport {
        let mut r = self.metrics.report(end);
        r.oracle = self.oracle.summary();
        r
    }

    /// Periodic oracle tick from the engine's observer hook: the number
    /// of packets still owed a terminal outcome feeds the stuck-flow
    /// detector. Returns `true` when the run should abort.
    fn oracle_tick(&mut self, now: Time) -> bool {
        let outstanding = self
            .metrics
            .generated()
            .saturating_sub(self.metrics.delivered())
            .saturating_sub(self.metrics.abandoned())
            .saturating_sub(self.metrics.expired())
            .saturating_sub(self.metrics.ingress_drops());
        self.oracle.check_starvation(
            now.as_ps(),
            self.metrics.flow_delivered_counts(),
            &self.flow_pending,
        );
        self.oracle.check_stall(now.as_ps(), outstanding)
    }

    /// Release-build drain audit: with the event queue empty every packet
    /// must have a terminal outcome, every queue must be empty, and every
    /// credit counter must be back at capacity — including after
    /// kill/revive cycles, because kills flush queues with upstream
    /// refunds and credits keep returning to dead routers.
    fn oracle_check_drained(&mut self, end: Time) {
        let at = end.as_ps();
        let generated = self.metrics.generated();
        let delivered = self.metrics.delivered();
        let abandoned = self.metrics.abandoned();
        let shed = self.metrics.expired() + self.metrics.ingress_drops();
        if generated != delivered + abandoned + shed {
            self.oracle.record(
                at,
                Violation::Conservation {
                    generated,
                    delivered,
                    abandoned,
                    stranded: generated
                        .saturating_sub(delivered)
                        .saturating_sub(abandoned)
                        .saturating_sub(shed),
                },
            );
        }
        let cap = self.vc_cap;
        for (r, router) in self.routers.iter().enumerate() {
            let queued: u64 = router.queues.iter().map(|q| q.len() as u64).sum();
            if queued > 0 {
                self.oracle.record(
                    at,
                    Violation::ResidualState {
                        what: format!("router[{r}].queues"),
                        count: queued,
                    },
                );
            }
            for (idx, &c) in router.credits.iter().enumerate() {
                if c != cap {
                    self.oracle.record(
                        at,
                        Violation::CreditLeak {
                            element: "router".into(),
                            index: r as u32,
                            port: idx as u32,
                            credits: c,
                            cap,
                        },
                    );
                }
            }
        }
        for (n, nic) in self.nics.iter().enumerate() {
            if !nic.queue.is_empty() {
                self.oracle.record(
                    at,
                    Violation::ResidualState {
                        what: format!("nic[{n}].queue"),
                        count: nic.queue.len() as u64,
                    },
                );
            }
            for (vc, &c) in nic.credits.iter().enumerate() {
                if c != cap {
                    self.oracle.record(
                        at,
                        Violation::CreditLeak {
                            element: "nic".into(),
                            index: n as u32,
                            port: vc as u32,
                            credits: c,
                            cap,
                        },
                    );
                }
            }
        }
    }
}

impl Model for RouterNet {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Wake(node) => {
                let out = self.driver.wakeup(node, now.as_ps());
                self.apply_driver_output(now, node, out, sched);
            }
            Ev::NicTry(node) => {
                self.nics[node as usize].try_scheduled = false;
                // Deadline check at the head of the queue: the NIC FIFO
                // is ordered by admission time, so stale heads are shed
                // here — expiring a packet burns no transmit slot, and
                // under sustained overload it keeps the bounded queue
                // from hoarding work nobody is waiting for anymore.
                let deadline = self.rp.deadline_ps;
                if deadline > 0 {
                    while let Some(&head) = self.nics[node as usize].queue.front() {
                        let age = now.since(self.packets[head as usize].generated_at);
                        if age.as_ps() < deadline {
                            break;
                        }
                        self.nics[node as usize].queue.pop_front();
                        let src = self.packets[head as usize].src.0;
                        self.metrics.on_expired(now);
                        self.flow_done(src);
                        self.oracle.note(
                            now.as_ps(),
                            "expire:nic",
                            u64::from(head),
                            u64::from(src),
                        );
                        self.oracle.progress(now.as_ps());
                    }
                }
                let Some(&pkt) = self.nics[node as usize].queue.front() else {
                    return;
                };
                let busy = self.nics[node as usize].tx_busy_until;
                if busy > now {
                    self.schedule_nic(node, busy, sched);
                    return;
                }
                let vc = self.alg.injection_vc(u64::from(pkt));
                if self.nics[node as usize].credits[vc as usize] == 0 {
                    // Wait for a credit event to re-trigger.
                    return;
                }
                self.nics[node as usize].queue.pop_front();
                self.nics[node as usize].credits[vc as usize] -= 1;
                let ser = self.link.packet_time();
                self.nics[node as usize].tx_busy_until = now + ser;
                if !self.nics[node as usize].queue.is_empty() {
                    self.schedule_nic(node, now + ser, sched);
                }
                let (router, port) = self.graph.node_attach[node as usize];
                // UGAL decision happens at the source router's state.
                let mut route = RouteState::default();
                {
                    let pending: &[u32] = &self.routers[router as usize].out_pending;
                    self.alg.on_inject(
                        router,
                        NodeId(node),
                        self.packets[pkt as usize].dst,
                        &mut route,
                        &pending,
                        &mut self.rng,
                    );
                }
                self.packets[pkt as usize].route = route;
                self.metrics.on_injection();
                let delay = Duration::from_ps(self.graph.delay(router, port));
                sched.schedule_at(
                    now + delay,
                    Ev::Arrive {
                        pkt,
                        router,
                        port,
                        vc,
                    },
                );
            }
            Ev::Arrive {
                pkt,
                router,
                port,
                vc,
            } => {
                // A dead router eats the packet; with no retransmission
                // layer in the electrical model this is a terminal loss.
                if self.is_down(router) {
                    self.metrics.on_forward_attempt(true);
                    self.metrics.on_abandoned(now);
                    if let Some(src) = self.packets.get(pkt as usize).map(|p| p.src.0) {
                        self.flow_done(src);
                    }
                    self.oracle
                        .note(now.as_ps(), "drop:dead", u64::from(pkt), u64::from(router));
                    self.oracle.progress(now.as_ps());
                    self.refund_credit(now, router, port, vc, sched);
                    return;
                }
                // Deadline check on arrival: a packet whose age passed
                // the budget expires at the next router it reaches (the
                // same credit-refund path a dead-router drop takes), so
                // in-network staleness is bounded by one hop time. The
                // drained buffer slot goes back upstream; without this,
                // a storm's backlog spends post-storm bandwidth
                // delivering packets nobody is waiting for anymore.
                let deadline = self.rp.deadline_ps;
                if deadline > 0
                    && now.since(self.packets[pkt as usize].generated_at).as_ps() >= deadline
                {
                    self.metrics.on_forward_attempt(true);
                    self.metrics.on_expired(now);
                    if let Some(src) = self.packets.get(pkt as usize).map(|p| p.src.0) {
                        self.flow_done(src);
                    }
                    self.oracle
                        .note(now.as_ps(), "expire:hop", u64::from(pkt), u64::from(router));
                    self.oracle.progress(now.as_ps());
                    self.refund_credit(now, router, port, vc, sched);
                    return;
                }
                // Compute the forwarding decision once, on arrival.
                let dst = self.packets[pkt as usize].dst;
                let mut route = self.packets[pkt as usize].route;
                let decision = {
                    let pending: &[u32] = &self.routers[router as usize].out_pending;
                    self.alg.route(
                        &self.graph,
                        router,
                        u64::from(pkt),
                        dst,
                        &mut route,
                        &pending,
                    )
                };
                self.packets[pkt as usize].route = route;
                self.packets[pkt as usize].decision = decision;
                let qi = self.qidx(port, vc);
                self.routers[router as usize].queues[qi].push_back(pkt);
                // Credit flow control bounds every input queue by the VC
                // capacity; growth past it means a credit was minted.
                let len = self.routers[router as usize].queues[qi].len() as u64;
                if len > u64::from(self.vc_cap) {
                    self.oracle.record(
                        now.as_ps(),
                        Violation::QueueOverflow {
                            router,
                            queue: qi as u32,
                            len,
                            bound: u64::from(self.vc_cap),
                        },
                    );
                }
                self.routers[router as usize].out_pending[decision.0 as usize] += 1;
                self.metrics.on_forward_attempt(false);
                self.schedule_arb(router, now, sched);
            }
            Ev::Arb(router) => {
                self.routers[router as usize].arb_scheduled = false;
                if self.is_down(router) {
                    return; // its queues were flushed at kill time
                }
                self.arbitrate(now, router, sched);
            }
            Ev::Credit { router, port, vc } => {
                let cap = self.vc_cap;
                if router == u32::MAX {
                    let node = port;
                    match self
                        .nics
                        .get_mut(node as usize)
                        .and_then(|n| n.credits.get_mut(vc as usize))
                    {
                        Some(c) if *c < cap => *c += 1,
                        Some(c) => {
                            // A credit beyond capacity was minted somewhere:
                            // cap it (keeps the run live) and report.
                            let credits = c.saturating_add(1);
                            self.oracle.record(
                                now.as_ps(),
                                Violation::CreditOverflow {
                                    router: u32::MAX,
                                    port: node,
                                    credits,
                                    cap,
                                },
                            );
                        }
                        None => self.oracle.record(
                            now.as_ps(),
                            Violation::CounterUnderflow {
                                counter: "nic_credit_target".into(),
                            },
                        ),
                    }
                    if self
                        .nics
                        .get(node as usize)
                        .is_some_and(|n| !n.queue.is_empty())
                    {
                        self.schedule_nic(node, now, sched);
                    }
                } else {
                    let idx = self.qidx(port, vc);
                    match self
                        .routers
                        .get_mut(router as usize)
                        .and_then(|r| r.credits.get_mut(idx))
                    {
                        Some(c) if *c < cap => *c += 1,
                        Some(c) => {
                            let credits = c.saturating_add(1);
                            self.oracle.record(
                                now.as_ps(),
                                Violation::CreditOverflow {
                                    router,
                                    port,
                                    credits,
                                    cap,
                                },
                            );
                        }
                        None => self.oracle.record(
                            now.as_ps(),
                            Violation::CounterUnderflow {
                                counter: "router_credit_target".into(),
                            },
                        ),
                    }
                    self.schedule_arb(router, now, sched);
                }
            }
            Ev::Deliver { pkt, node } => {
                let latency = now.since(self.packets[pkt as usize].generated_at);
                self.metrics.on_delivered(latency, now);
                let src = self.packets[pkt as usize].src.0;
                self.metrics.note_flow_delivered(src);
                self.flow_done(src);
                self.oracle.progress(now.as_ps());
                let out = self.driver.delivered(node, now.as_ps());
                self.apply_driver_output(now, node, out, sched);
            }
            Ev::Fault(idx) => {
                if let Some(ev) = self.plan.events.get(idx as usize).copied() {
                    self.apply_fault(now, ev.kind, sched);
                    self.oracle.note(now.as_ps(), "fault", u64::from(idx), 0);
                }
            }
        }
    }
}

/// Runs an electrical network simulation to completion (or horizon).
pub fn simulate(
    graph: RouterGraph,
    alg: RoutingAlg,
    link: LinkParams,
    rp: RouterParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
) -> LatencyReport {
    simulate_plan(
        graph,
        alg,
        link,
        rp,
        driver,
        seed,
        horizon_ns,
        &FaultPlan::new(seed),
    )
}

/// [`simulate`] executing a [`FaultPlan`]. The electrical model honors
/// router-granularity kinds ([`FaultKind::FailFraction`],
/// [`FaultKind::ReviveAll`]); packets reaching a dead router are terminal
/// losses (`abandoned` in the report) since these baselines have no
/// retransmission layer.
#[allow(clippy::too_many_arguments)]
pub fn simulate_plan(
    graph: RouterGraph,
    alg: RoutingAlg,
    link: LinkParams,
    rp: RouterParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    plan: &FaultPlan,
) -> LatencyReport {
    simulate_chaos(
        graph,
        alg,
        link,
        rp,
        driver,
        seed,
        horizon_ns,
        plan,
        OracleConfig::default(),
    )
}

/// [`simulate_plan`] with an explicit [`OracleConfig`] (the chaos
/// experiment tightens the stall deadline).
#[allow(clippy::too_many_arguments)]
pub fn simulate_chaos(
    graph: RouterGraph,
    alg: RoutingAlg,
    link: LinkParams,
    rp: RouterParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    plan: &FaultPlan,
    oracle_cfg: OracleConfig,
) -> LatencyReport {
    let total = driver.total_to_send();
    let nodes = driver.nodes().max(1);
    let sample_cap = (total.min(2_000_000)) as usize + 16;
    let mut model = RouterNet::new(graph, alg, link, rp, driver, seed, sample_cap);
    model.oracle = Oracle::new(oracle_cfg);
    if !plan.is_empty() {
        let repairs = plan.repair_times();
        let recovery = match (
            repairs.is_empty(),
            plan.events.iter().map(|e| e.at_ps).min(),
        ) {
            (false, Some(first_fault_ps)) => Some(RecoverySpec {
                // 1 us bins resolve recovery on CI-scale runs while a
                // 1 M-bin cap keeps long sweeps bounded.
                bin_ps: 1_000_000,
                frac: 0.5,
                first_fault_ps,
                repairs_ps: repairs,
            }),
            _ => None,
        };
        model.metrics = Collector::with_recovery(sample_cap, plan.epoch_boundaries(), recovery);
        model.oracle.set_boundaries(plan.epoch_boundaries());
        model.plan = plan.clone();
    }
    let initial_driver: Vec<(u32, u64)> = model.driver.initial();
    let mut sim = Simulation::new(model);
    for (node, t) in initial_driver {
        sim.scheduler_mut()
            .schedule_at(Time::from_ps(t), Ev::Wake(node));
    }
    for (idx, ev) in plan.events.iter().enumerate() {
        sim.scheduler_mut()
            .schedule_at(Time::from_ps(ev.at_ps), Ev::Fault(idx as u32));
    }
    let horizon = Time::from_ns(horizon_ns.unwrap_or_else(|| {
        let per_node = total / u64::from(nodes) + 1;
        100 * per_node * link.packet_time().as_ps() / 1_000 + 50_000_000
    }));
    // Deterministic event-count cadence for the stuck-flow detector; a
    // latched stall aborts instead of burning the horizon.
    let stop = sim.run_until_observed(horizon, u64::MAX, 8192, |m, now| !m.oracle_tick(now));
    let end = sim.scheduler().now();
    let events = sim.scheduler().events_executed();
    let mut model = sim.into_model();
    if stop == baldur_sim::StopReason::Drained {
        model.oracle_check_drained(end);
    }
    let mut report = model.into_report(end);
    report.events = events;
    report
}

//! Latency and drop accounting shared by all network models.

use baldur_sim::stats::{Reservoir, Streaming};
use baldur_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Collects per-packet observations during a run.
#[derive(Debug, Clone)]
pub struct Collector {
    latency: Streaming,
    tail: Reservoir,
    generated: u64,
    delivered: u64,
    abandoned: u64,
    drop_attempts: u64,
    forward_attempts: u64,
    injections: u64,
    retransmissions: u64,
    max_retx_buffer_bytes: u64,
    end: Time,
}

impl Collector {
    /// An empty collector retaining up to `sample_cap` exact latency
    /// samples for percentiles.
    pub fn new(sample_cap: usize) -> Self {
        Collector {
            latency: Streaming::new(),
            tail: Reservoir::with_capacity(sample_cap.max(1)),
            generated: 0,
            delivered: 0,
            abandoned: 0,
            drop_attempts: 0,
            forward_attempts: 0,
            injections: 0,
            retransmissions: 0,
            max_retx_buffer_bytes: 0,
            end: Time::ZERO,
        }
    }

    /// A packet was created by the workload.
    pub fn on_generated(&mut self) {
        self.generated += 1;
    }

    /// A packet reached its destination for the first time.
    pub fn on_delivered(&mut self, latency: Duration, now: Time) {
        self.delivered += 1;
        let ns = latency.as_ns_f64();
        self.latency.push(ns);
        self.tail.push(ns);
        self.end = self.end.max(now);
    }

    /// A packet gave up after the retry limit.
    pub fn on_abandoned(&mut self) {
        self.abandoned += 1;
    }

    /// A packet entered the network (one traversal attempt).
    pub fn on_injection(&mut self) {
        self.injections += 1;
    }

    /// A switch forwarded (or tried to forward) a packet.
    pub fn on_forward_attempt(&mut self, dropped: bool) {
        self.forward_attempts += 1;
        if dropped {
            self.drop_attempts += 1;
        }
    }

    /// A source retransmitted a packet.
    pub fn on_retransmit(&mut self) {
        self.retransmissions += 1;
    }

    /// Tracks the high-water retransmission-buffer occupancy.
    pub fn on_retx_buffer(&mut self, bytes: u64) {
        self.max_retx_buffer_bytes = self.max_retx_buffer_bytes.max(bytes);
    }

    /// Finalizes into a [`LatencyReport`].
    pub fn report(&self, sim_end: Time) -> LatencyReport {
        LatencyReport {
            generated: self.generated,
            delivered: self.delivered,
            abandoned: self.abandoned,
            avg_ns: self.latency.mean(),
            p99_ns: self.tail.quantile(0.99),
            max_ns: self.latency.max(),
            min_ns: self.latency.min(),
            drop_attempts: self.drop_attempts,
            forward_attempts: self.forward_attempts,
            injections: self.injections,
            drop_rate: if self.injections == 0 {
                0.0
            } else {
                self.drop_attempts as f64 / self.injections as f64
            },
            hop_drop_rate: if self.forward_attempts == 0 {
                0.0
            } else {
                self.drop_attempts as f64 / self.forward_attempts as f64
            },
            retransmissions: self.retransmissions,
            max_retx_buffer_bytes: self.max_retx_buffer_bytes,
            sim_end_ns: sim_end.as_ns_f64(),
        }
    }
}

/// The summary of one simulation run — the row a figure harness prints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Packets created by the workload.
    pub generated: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets abandoned after the retry limit (Baldur only).
    pub abandoned: u64,
    /// Mean packet latency, ns (generation to first delivery, including
    /// queueing and retransmissions).
    pub avg_ns: f64,
    /// 99th-percentile ("tail") latency, ns.
    pub p99_ns: f64,
    /// Worst observed latency, ns.
    pub max_ns: f64,
    /// Best observed latency, ns.
    pub min_ns: f64,
    /// Forwarding attempts that ended in a drop (Baldur only).
    pub drop_attempts: u64,
    /// Total switch forwarding attempts.
    pub forward_attempts: u64,
    /// Network traversal attempts (injections, counting retransmissions).
    pub injections: u64,
    /// Per-traversal drop probability: `drop_attempts / injections` —
    /// the paper's Table V "drop rate".
    pub drop_rate: f64,
    /// Per-switch-hop drop probability: `drop_attempts / forward_attempts`.
    pub hop_drop_rate: f64,
    /// Source retransmissions (Baldur only).
    pub retransmissions: u64,
    /// High-water mark of any node's retransmission buffer, bytes.
    pub max_retx_buffer_bytes: u64,
    /// Simulated time at the last delivery, ns.
    pub sim_end_ns: f64,
}

impl LatencyReport {
    /// Fraction of generated packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.generated as f64
    }

    /// Accepted load: delivered bandwidth per node as a fraction of the
    /// link rate (the y-axis of an offered-vs-accepted saturation plot).
    pub fn accepted_load(&self, nodes: u32, packet_time_ps: u64) -> f64 {
        if self.sim_end_ns <= 0.0 || nodes == 0 {
            return 0.0;
        }
        let delivered_time_ps = self.delivered as f64 * packet_time_ps as f64;
        delivered_time_ps / (self.sim_end_ns * 1e3 * f64::from(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_round_trip() {
        let mut c = Collector::new(1000);
        for i in 1..=100u64 {
            c.on_generated();
            c.on_delivered(Duration::from_ns(i * 10), Time::from_ns(i * 1000));
        }
        c.on_injection();
        c.on_injection();
        c.on_forward_attempt(false);
        c.on_forward_attempt(true);
        c.on_retransmit();
        c.on_retx_buffer(4096);
        c.on_retx_buffer(1024);
        let r = c.report(Time::from_ns(123_456));
        assert_eq!(r.generated, 100);
        assert_eq!(r.delivered, 100);
        assert!((r.avg_ns - 505.0).abs() < 1e-9);
        assert!((r.p99_ns - 990.1).abs() < 0.2);
        assert_eq!(r.drop_attempts, 1);
        assert!((r.drop_rate - 0.5).abs() < 1e-12);
        assert_eq!(r.max_retx_buffer_bytes, 4096);
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
    }
}

//! Latency and drop accounting shared by all network models.

use crate::oracle::OracleSummary;
use baldur_sim::stats::{Reservoir, Streaming};
use baldur_sim::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Hard cap on recovery-histogram bins (bins are `bin_ps` wide, so this
/// covers `MAX_BINS * bin_ps` of simulated time; deliveries beyond it
/// still count toward totals, just not toward recovery curves).
const MAX_BINS: usize = 1 << 20;

/// What the recovery tracker needs to know up front: when the fault
/// story starts (the baseline window), when repairs land, and what
/// "recovered" means.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySpec {
    /// Delivery-histogram bin width, ps.
    pub bin_ps: u64,
    /// Goodput fraction of the pre-fault baseline that counts as
    /// recovered.
    pub frac: f64,
    /// When the first fault fires (the baseline window is `[0, this)`).
    pub first_fault_ps: u64,
    /// Repair instants (ascending, ps) to measure recovery from.
    pub repairs_ps: Vec<u64>,
}

/// Per-repair recovery measurement (tentpole metric 3): how long after
/// the repair goodput climbed back to `frac` of the pre-fault baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The repair instant, ns.
    pub repair_at_ns: f64,
    /// Time from the repair until the first full histogram bin at or
    /// above the recovery threshold, ns; `None` when goodput never got
    /// back within the observed window, or when no pre-fault baseline
    /// exists to recover to (see [`Self::baseline_defined`]). A typed
    /// absence instead of a `-1.0`/NaN sentinel keeps CSV renderings
    /// honest.
    pub time_to_recover_ns: Option<f64>,
    /// Deliveries observed after the repair (0 means the run had drained
    /// already — an unrecovered verdict would be meaningless).
    pub deliveries_after: u64,
    /// The pre-fault baseline delivery rate, packets per µs.
    pub baseline_per_us: f64,
    /// False when the pre-fault window delivered nothing (zero-goodput
    /// baseline): the recovery threshold is then degenerate and no
    /// recovery verdict — positive or negative — is meaningful.
    pub baseline_defined: bool,
}

impl RecoveryReport {
    /// True when goodput provably returned to the threshold.
    pub fn recovered(&self) -> bool {
        self.time_to_recover_ns.is_some()
    }
}

/// Internal per-run recovery accumulator.
#[derive(Debug, Clone)]
struct RecoveryTrack {
    spec: RecoverySpec,
    baseline: u64,
    bins: Vec<u32>,
}

impl RecoveryTrack {
    fn new(spec: RecoverySpec) -> Self {
        RecoveryTrack {
            spec,
            baseline: 0,
            bins: Vec::new(),
        }
    }

    fn on_delivered(&mut self, now: Time) {
        let at = now.as_ps();
        if at < self.spec.first_fault_ps {
            self.baseline += 1;
        }
        let idx = (at / self.spec.bin_ps.max(1)) as usize;
        if idx >= MAX_BINS {
            return;
        }
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        if let Some(bin) = self.bins.get_mut(idx) {
            *bin += 1;
        }
    }

    fn reports(&self) -> Vec<RecoveryReport> {
        let bin_ps = self.spec.bin_ps.max(1);
        let baseline_rate = if self.spec.first_fault_ps > 0 {
            self.baseline as f64 / self.spec.first_fault_ps as f64
        } else {
            0.0
        };
        let threshold = self.spec.frac * baseline_rate * bin_ps as f64;
        self.spec
            .repairs_ps
            .iter()
            .map(|&repair_ps| {
                // First full bin strictly after the repair instant.
                let start = (repair_ps / bin_ps) as usize + 1;
                let after: u64 = self
                    .bins
                    .get(start..)
                    .unwrap_or(&[])
                    .iter()
                    .map(|&b| u64::from(b))
                    .sum();
                let recovered_bin = self
                    .bins
                    .get(start..)
                    .unwrap_or(&[])
                    .iter()
                    .position(|&b| f64::from(b) >= threshold)
                    .map(|off| start + off);
                let time_to_recover_ns = match recovered_bin {
                    // No pre-fault traffic: the threshold is degenerate
                    // (any bin — even an empty one — would "recover"), so
                    // no verdict is reported rather than a fake instant
                    // recovery.
                    _ if baseline_rate <= 0.0 => None,
                    Some(idx) => {
                        let end_ps = (idx as u64 + 1).saturating_mul(bin_ps);
                        Some(Time::from_ps(end_ps.saturating_sub(repair_ps)).as_ns_f64())
                    }
                    None => None,
                };
                RecoveryReport {
                    repair_at_ns: Time::from_ps(repair_ps).as_ns_f64(),
                    time_to_recover_ns,
                    deliveries_after: after,
                    baseline_per_us: baseline_rate * 1e6,
                    baseline_defined: baseline_rate > 0.0,
                }
            })
            .collect()
    }
}

/// The terminal state of one data packet's delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeliveryOutcome {
    /// Still in the source's retransmission buffer (or in flight).
    #[default]
    Pending,
    /// At least one copy reached the destination.
    Delivered,
    /// The source exhausted its retry budget and gave up — the terminal
    /// state fault scenarios produce instead of retrying forever.
    GaveUp,
    /// The packet outlived its delivery deadline (`deadline_ps` age
    /// budget) while awaiting retransmission — the overload-control
    /// terminal state: under storm loads a stale retry only amplifies
    /// congestion, so the source expires it instead.
    Expired,
}

/// Per-fault-epoch accumulator (internal to [`Collector`]).
#[derive(Debug, Clone, Default)]
struct EpochAcc {
    generated: u64,
    delivered: u64,
    abandoned: u64,
    latency_sum_ns: f64,
}

/// Collects per-packet observations during a run.
#[derive(Debug, Clone)]
pub struct Collector {
    latency: Streaming,
    tail: Reservoir,
    generated: u64,
    delivered: u64,
    abandoned: u64,
    expired: u64,
    ingress_drops: u64,
    /// Per-source-flow generation/delivery tallies (lazily grown; empty
    /// unless a model opts into flow accounting via the `note_flow_*`
    /// hooks). Feeds the fairness index and the starvation oracle.
    flow_generated: Vec<u64>,
    flow_delivered: Vec<u64>,
    drop_attempts: u64,
    forward_attempts: u64,
    injections: u64,
    retransmissions: u64,
    corrupted: u64,
    laser_losses: u64,
    max_retx_buffer_bytes: u64,
    end: Time,
    /// Fault-epoch boundaries (ps, ascending); empty = one implicit epoch
    /// and zero per-epoch bookkeeping.
    boundaries: Vec<u64>,
    epochs: Vec<EpochAcc>,
    recovery: Option<RecoveryTrack>,
}

impl Collector {
    /// An empty collector retaining up to `sample_cap` exact latency
    /// samples for percentiles.
    pub fn new(sample_cap: usize) -> Self {
        Collector::with_epochs(sample_cap, Vec::new())
    }

    /// [`Collector::new`], additionally bucketing observations into the
    /// fault epochs delimited by `boundaries_ps` (sorted ascending, e.g.
    /// from `FaultPlan::epoch_boundaries`). Each observation lands in the
    /// epoch containing its event time, giving per-epoch degradation
    /// curves across a staircase fault plan.
    pub fn with_epochs(sample_cap: usize, boundaries_ps: Vec<u64>) -> Self {
        Collector::with_recovery(sample_cap, boundaries_ps, None)
    }

    /// [`Collector::with_epochs`], additionally measuring per-repair
    /// recovery time against `recovery` (when given): deliveries are
    /// histogrammed in `bin_ps` windows and each repair instant is
    /// scanned for the first bin back at the threshold goodput.
    pub fn with_recovery(
        sample_cap: usize,
        boundaries_ps: Vec<u64>,
        recovery: Option<RecoverySpec>,
    ) -> Self {
        let epochs = if boundaries_ps.is_empty() {
            Vec::new()
        } else {
            vec![EpochAcc::default(); boundaries_ps.len() + 1]
        };
        Collector {
            latency: Streaming::new(),
            tail: Reservoir::with_capacity(sample_cap.max(1)),
            generated: 0,
            delivered: 0,
            abandoned: 0,
            expired: 0,
            ingress_drops: 0,
            flow_generated: Vec::new(),
            flow_delivered: Vec::new(),
            drop_attempts: 0,
            forward_attempts: 0,
            injections: 0,
            retransmissions: 0,
            corrupted: 0,
            laser_losses: 0,
            max_retx_buffer_bytes: 0,
            end: Time::ZERO,
            boundaries: boundaries_ps,
            epochs,
            recovery: recovery.map(RecoveryTrack::new),
        }
    }

    #[inline]
    fn epoch_mut(&mut self, now: Time) -> Option<&mut EpochAcc> {
        if self.boundaries.is_empty() {
            return None;
        }
        self.epochs.get_mut(now.epoch_index(&self.boundaries))
    }

    /// A packet was created by the workload at `now`.
    pub fn on_generated(&mut self, now: Time) {
        self.generated += 1;
        if let Some(e) = self.epoch_mut(now) {
            e.generated += 1;
        }
    }

    /// A packet reached its destination for the first time.
    pub fn on_delivered(&mut self, latency: Duration, now: Time) {
        self.delivered += 1;
        let ns = latency.as_ns_f64();
        self.latency.push(ns);
        self.tail.push(ns);
        self.end = self.end.max(now);
        if let Some(e) = self.epoch_mut(now) {
            e.delivered += 1;
            e.latency_sum_ns += ns;
        }
        if let Some(t) = &mut self.recovery {
            t.on_delivered(now);
        }
    }

    /// A packet gave up after the retry limit at `now`.
    pub fn on_abandoned(&mut self, now: Time) {
        self.abandoned += 1;
        if let Some(e) = self.epoch_mut(now) {
            e.abandoned += 1;
        }
    }

    /// A packet outlived its delivery deadline at `now` and was expired
    /// by its source (terminal, like abandonment; bucketed with the
    /// epoch's abandonments since both are load-shedding losses).
    pub fn on_expired(&mut self, now: Time) {
        self.expired += 1;
        if let Some(e) = self.epoch_mut(now) {
            e.abandoned += 1;
        }
    }

    /// A packet was refused at its source's bounded ingress queue
    /// (admission control; terminal, counted — never silent).
    pub fn on_ingress_drop(&mut self, now: Time) {
        self.ingress_drops += 1;
        if let Some(e) = self.epoch_mut(now) {
            e.abandoned += 1;
        }
    }

    /// Attributes one generated packet to source flow `src` (opt-in
    /// per-flow accounting for the fairness index and starvation oracle).
    pub fn note_flow_generated(&mut self, src: u32) {
        let idx = src as usize;
        if idx >= self.flow_generated.len() {
            self.flow_generated.resize(idx + 1, 0);
        }
        if let Some(f) = self.flow_generated.get_mut(idx) {
            *f += 1;
        }
    }

    /// Attributes one delivery to source flow `src`.
    pub fn note_flow_delivered(&mut self, src: u32) {
        let idx = src as usize;
        if idx >= self.flow_delivered.len() {
            self.flow_delivered.resize(idx + 1, 0);
        }
        if let Some(f) = self.flow_delivered.get_mut(idx) {
            *f += 1;
        }
    }

    /// Per-flow delivery tallies observed so far (indexed by source;
    /// empty unless flow accounting is in use). The starvation oracle
    /// samples this between observation windows.
    pub fn flow_delivered_counts(&self) -> &[u64] {
        &self.flow_delivered
    }

    /// Per-flow generation tallies observed so far.
    pub fn flow_generated_counts(&self) -> &[u64] {
        &self.flow_generated
    }

    /// A packet was corrupted in flight by a bit-error burst (and
    /// dropped; also counted as a drop via [`Collector::on_forward_attempt`]).
    pub fn on_corrupted(&mut self) {
        self.corrupted += 1;
    }

    /// A transmission was lost at the source because its laser is dead
    /// (charged as an injection attempt, never enters the fabric).
    pub fn on_laser_loss(&mut self) {
        self.laser_losses += 1;
    }

    /// A packet entered the network (one traversal attempt).
    pub fn on_injection(&mut self) {
        self.injections += 1;
    }

    /// A switch forwarded (or tried to forward) a packet.
    pub fn on_forward_attempt(&mut self, dropped: bool) {
        self.forward_attempts += 1;
        if dropped {
            self.drop_attempts += 1;
        }
    }

    /// A source retransmitted a packet.
    pub fn on_retransmit(&mut self) {
        self.retransmissions += 1;
    }

    /// Tracks the high-water retransmission-buffer occupancy.
    pub fn on_retx_buffer(&mut self, bytes: u64) {
        self.max_retx_buffer_bytes = self.max_retx_buffer_bytes.max(bytes);
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets abandoned (GaveUp) so far.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Packets expired past their deadline so far.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Packets refused at a bounded ingress queue so far.
    pub fn ingress_drops(&self) -> u64 {
        self.ingress_drops
    }

    /// Fairness over the flows that generated traffic: Jain's index of
    /// their delivered counts, plus the distribution extremes. Neutral
    /// ([`FlowStats::default`]) when flow accounting was not in use.
    fn flow_stats(&self) -> FlowStats {
        let mut xs: Vec<f64> = Vec::new();
        for (src, &gen) in self.flow_generated.iter().enumerate() {
            if gen == 0 {
                continue;
            }
            let d = self.flow_delivered.get(src).copied().unwrap_or(0);
            xs.push(d as f64);
        }
        if xs.is_empty() {
            return FlowStats::default();
        }
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        let sumsq: f64 = xs.iter().map(|x| x * x).sum();
        // All-zero deliveries: maximally uniform (every flow equally
        // starved), so Jain is 1 by convention rather than 0/0.
        let jain = if sumsq <= 0.0 {
            1.0
        } else {
            sum * sum / (n * sumsq)
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(0.0f64, f64::max);
        FlowStats {
            flows: xs.len() as u64,
            min_delivered: min as u64,
            max_delivered: max as u64,
            jain,
        }
    }

    /// Finalizes into a [`LatencyReport`].
    pub fn report(&self, sim_end: Time) -> LatencyReport {
        LatencyReport {
            generated: self.generated,
            delivered: self.delivered,
            abandoned: self.abandoned,
            expired: self.expired,
            ingress_drops: self.ingress_drops,
            avg_ns: self.latency.mean(),
            p99_ns: self.tail.quantile(0.99),
            p999_ns: self.tail.quantile(0.999),
            max_ns: self.latency.max(),
            min_ns: self.latency.min(),
            drop_attempts: self.drop_attempts,
            forward_attempts: self.forward_attempts,
            injections: self.injections,
            drop_rate: if self.injections == 0 {
                0.0
            } else {
                self.drop_attempts as f64 / self.injections as f64
            },
            hop_drop_rate: if self.forward_attempts == 0 {
                0.0
            } else {
                self.drop_attempts as f64 / self.forward_attempts as f64
            },
            retransmissions: self.retransmissions,
            corrupted: self.corrupted,
            laser_losses: self.laser_losses,
            max_retx_buffer_bytes: self.max_retx_buffer_bytes,
            sim_end_ns: sim_end.as_ns_f64(),
            last_delivery_ns: self.end.as_ns_f64(),
            // The collector never sees the scheduler; each simulator
            // overwrites this with `events_executed()` before returning.
            events: 0,
            stranded: self
                .generated
                .saturating_sub(self.delivered)
                .saturating_sub(self.abandoned)
                .saturating_sub(self.expired)
                .saturating_sub(self.ingress_drops),
            fairness: self.flow_stats(),
            recoveries: self
                .recovery
                .as_ref()
                .map(RecoveryTrack::reports)
                .unwrap_or_default(),
            oracle: OracleSummary::default(),
            epochs: self
                .epochs
                .iter()
                .enumerate()
                .map(|(i, e)| EpochReport {
                    start_ns: if i == 0 {
                        0.0
                    } else {
                        Time::from_ps(self.boundaries[i - 1]).as_ns_f64()
                    },
                    generated: e.generated,
                    delivered: e.delivered,
                    abandoned: e.abandoned,
                    avg_ns: if e.delivered == 0 {
                        0.0
                    } else {
                        e.latency_sum_ns / e.delivered as f64
                    },
                })
                .collect(),
        }
    }
}

/// Per-fault-epoch slice of a run: observations bucketed by the epoch
/// containing their event time (generation, delivery, or abandonment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch start on the simulation clock, ns.
    pub start_ns: f64,
    /// Packets generated during the epoch.
    pub generated: u64,
    /// Packets delivered during the epoch.
    pub delivered: u64,
    /// Packets abandoned (GaveUp) during the epoch.
    pub abandoned: u64,
    /// Mean latency of the epoch's deliveries, ns (0 when none).
    pub avg_ns: f64,
}

impl EpochReport {
    /// Goodput of the epoch: packets delivered per packet generated
    /// (cross-epoch deliveries can push this above 1 right after a
    /// recovery; 1.0 when the epoch generated nothing).
    pub fn goodput(&self) -> f64 {
        if self.generated == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.generated as f64
    }
}

/// Per-flow goodput distribution summary: how evenly the delivered
/// packets were spread over the flows that offered traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Flows that generated at least one packet (0 = flow accounting was
    /// not in use; the other fields are then the neutral defaults).
    pub flows: u64,
    /// Fewest deliveries of any offering flow.
    pub min_delivered: u64,
    /// Most deliveries of any offering flow.
    pub max_delivered: u64,
    /// Jain's fairness index over per-flow delivered counts:
    /// `(Σx)² / (n·Σx²)`, in `(0, 1]` with 1 = perfectly even.
    pub jain: f64,
}

impl Default for FlowStats {
    fn default() -> Self {
        FlowStats {
            flows: 0,
            min_delivered: 0,
            max_delivered: 0,
            jain: 1.0,
        }
    }
}

/// The summary of one simulation run — the row a figure harness prints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Packets created by the workload.
    pub generated: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets abandoned after the retry limit (Baldur only).
    pub abandoned: u64,
    /// Packets expired past their delivery deadline instead of being
    /// retried (overload control; zero unless a deadline budget is set).
    pub expired: u64,
    /// Packets refused at a bounded source ingress queue (admission
    /// control; zero unless an ingress cap is set).
    pub ingress_drops: u64,
    /// Mean packet latency, ns (generation to first delivery, including
    /// queueing and retransmissions).
    pub avg_ns: f64,
    /// 99th-percentile ("tail") latency, ns.
    pub p99_ns: f64,
    /// 99.9th-percentile latency, ns (the storm-visible tail).
    pub p999_ns: f64,
    /// Worst observed latency, ns.
    pub max_ns: f64,
    /// Best observed latency, ns.
    pub min_ns: f64,
    /// Forwarding attempts that ended in a drop (Baldur only).
    pub drop_attempts: u64,
    /// Total switch forwarding attempts.
    pub forward_attempts: u64,
    /// Network traversal attempts (injections, counting retransmissions).
    pub injections: u64,
    /// Per-traversal drop probability: `drop_attempts / injections` —
    /// the paper's Table V "drop rate".
    pub drop_rate: f64,
    /// Per-switch-hop drop probability: `drop_attempts / forward_attempts`.
    pub hop_drop_rate: f64,
    /// Source retransmissions (Baldur only).
    pub retransmissions: u64,
    /// In-flight packets corrupted (and dropped) by bit-error bursts.
    pub corrupted: u64,
    /// Transmissions lost at a dead source laser before entering the
    /// fabric.
    pub laser_losses: u64,
    /// High-water mark of any node's retransmission buffer, bytes.
    pub max_retx_buffer_bytes: u64,
    /// Simulated time when the run ended (drained or hit the horizon) —
    /// includes trailing timer events after the last delivery, ns.
    pub sim_end_ns: f64,
    /// Simulated time of the last delivery, ns (0 when nothing was
    /// delivered). The accepted-goodput denominator: unlike
    /// [`LatencyReport::sim_end_ns`] it excludes the dead air of stale
    /// retry timers draining after traffic already finished.
    pub last_delivery_ns: f64,
    /// Discrete events executed by the simulation kernel over the whole
    /// run — a deterministic, machine-independent work count (identical
    /// for identical configs at any thread count). The perf harness
    /// gates on this instead of trusting the wall clock.
    pub events: u64,
    /// Packets with no terminal outcome at the end of the run:
    /// `generated - delivered - abandoned - expired - ingress_drops`.
    /// Zero whenever the run drained; nonzero means the horizon (or a
    /// stuck-flow abort) cut packets off mid-flight.
    pub stranded: u64,
    /// Per-flow goodput distribution and Jain's fairness index (neutral
    /// default unless the model attributed packets to flows).
    pub fairness: FlowStats,
    /// Per-repair recovery measurements (empty unless the run had a
    /// fault plan with repair events).
    pub recoveries: Vec<RecoveryReport>,
    /// What the always-on invariant oracle observed (clean by default).
    pub oracle: OracleSummary,
    /// Per-fault-epoch breakdown (empty unless the run had a fault plan
    /// with nonzero event times).
    pub epochs: Vec<EpochReport>,
}

impl LatencyReport {
    /// Fraction of generated packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.generated as f64
    }

    /// Flap-amplification factor: transmission attempts per generated
    /// packet, `(generated + retransmissions) / generated`. A flapping
    /// element amplifies offered load through the retry machinery; 1.0
    /// is the no-retransmission floor (and the electrical models, which
    /// never retransmit).
    pub fn flap_amplification(&self) -> f64 {
        if self.generated == 0 {
            return 1.0;
        }
        (self.generated + self.retransmissions) as f64 / self.generated as f64
    }

    /// The longest observed time-to-recover across this run's repairs,
    /// ns; `None` when no repair recovered (or none was measured).
    pub fn max_recovery_ns(&self) -> Option<f64> {
        self.recoveries
            .iter()
            .filter_map(|r| r.time_to_recover_ns)
            .max_by(f64::total_cmp)
    }

    /// Accepted load: delivered bandwidth per node as a fraction of the
    /// link rate (the y-axis of an offered-vs-accepted saturation plot).
    pub fn accepted_load(&self, nodes: u32, packet_time_ps: u64) -> f64 {
        if self.sim_end_ns <= 0.0 || nodes == 0 {
            return 0.0;
        }
        let delivered_time_ps = self.delivered as f64 * packet_time_ps as f64;
        delivered_time_ps / (self.sim_end_ns * 1e3 * f64::from(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_round_trip() {
        let mut c = Collector::new(1000);
        for i in 1..=100u64 {
            c.on_generated(Time::from_ns(i * 1000));
            c.on_delivered(Duration::from_ns(i * 10), Time::from_ns(i * 1000));
        }
        c.on_injection();
        c.on_injection();
        c.on_forward_attempt(false);
        c.on_forward_attempt(true);
        c.on_retransmit();
        c.on_retx_buffer(4096);
        c.on_retx_buffer(1024);
        let r = c.report(Time::from_ns(123_456));
        assert_eq!(r.generated, 100);
        assert_eq!(r.delivered, 100);
        assert!((r.avg_ns - 505.0).abs() < 1e-9);
        assert!((r.p99_ns - 990.1).abs() < 0.2);
        assert_eq!(r.drop_attempts, 1);
        assert!((r.drop_rate - 0.5).abs() < 1e-12);
        assert_eq!(r.max_retx_buffer_bytes, 4096);
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!(r.epochs.is_empty(), "no boundaries, no epoch rows");
        assert_eq!(r.corrupted, 0);
        assert_eq!(r.laser_losses, 0);
    }

    #[test]
    fn epochs_bucket_by_event_time() {
        // Boundaries at 10 us and 20 us → three epochs.
        let mut c = Collector::with_epochs(64, vec![10_000_000, 20_000_000]);
        c.on_generated(Time::from_us(1));
        c.on_delivered(Duration::from_ns(400), Time::from_us(2));
        c.on_generated(Time::from_us(12));
        c.on_abandoned(Time::from_us(15));
        c.on_generated(Time::from_us(25));
        c.on_delivered(Duration::from_ns(800), Time::from_us(26));
        let r = c.report(Time::from_us(30));
        assert_eq!(r.epochs.len(), 3);
        assert_eq!(r.epochs[0].start_ns, 0.0);
        assert_eq!(r.epochs[1].start_ns, 10_000.0);
        assert_eq!(r.epochs[2].start_ns, 20_000.0);
        assert_eq!(
            (
                r.epochs[0].generated,
                r.epochs[0].delivered,
                r.epochs[0].abandoned
            ),
            (1, 1, 0)
        );
        assert_eq!(
            (
                r.epochs[1].generated,
                r.epochs[1].delivered,
                r.epochs[1].abandoned
            ),
            (1, 0, 1)
        );
        assert_eq!(
            (
                r.epochs[2].generated,
                r.epochs[2].delivered,
                r.epochs[2].abandoned
            ),
            (1, 1, 0)
        );
        assert!((r.epochs[0].goodput() - 1.0).abs() < 1e-12);
        assert!(r.epochs[1].goodput().abs() < 1e-12);
        assert!((r.epochs[0].avg_ns - 400.0).abs() < 1e-12);
        assert!((r.epochs[2].avg_ns - 800.0).abs() < 1e-12);
        // Totals still cover everything.
        assert_eq!(r.generated, 3);
        assert_eq!(r.delivered, 2);
        assert_eq!(r.abandoned, 1);
    }

    #[test]
    fn recovery_tracker_measures_time_to_recover() {
        let spec = RecoverySpec {
            bin_ps: 1_000_000,
            frac: 0.5,
            first_fault_ps: 10_000_000,
            repairs_ps: vec![20_000_000],
        };
        let mut c = Collector::with_recovery(64, vec![10_000_000, 20_000_000], Some(spec));
        // Baseline: 1 delivery/µs for the 10 µs before the fault.
        for i in 0..10u64 {
            c.on_delivered(
                Duration::from_ns(100),
                Time::from_ps(i * 1_000_000 + 500_000),
            );
        }
        // Outage 10–20 µs: silence. Repair at 20 µs; goodput returns at
        // 25 µs.
        for i in 25..30u64 {
            c.on_delivered(
                Duration::from_ns(100),
                Time::from_ps(i * 1_000_000 + 500_000),
            );
        }
        let r = c.report(Time::from_us(30));
        assert_eq!(r.recoveries.len(), 1);
        let rec = &r.recoveries[0];
        assert!(rec.recovered());
        assert!(rec.baseline_defined);
        // First ≥-threshold bin after the repair is [25, 26) µs → ends
        // 6 µs after the 20 µs repair.
        let ttr = rec.time_to_recover_ns.expect("recovered");
        assert!((ttr - 6_000.0).abs() < 1e-9);
        assert_eq!(rec.deliveries_after, 5);
        assert!((rec.baseline_per_us - 1.0).abs() < 1e-9);
        assert_eq!(r.max_recovery_ns(), Some(ttr));
        assert_eq!(r.stranded, 0, "delivered-only run strands nothing");
    }

    #[test]
    fn unrecovered_repairs_report_no_recovery_time() {
        let spec = RecoverySpec {
            bin_ps: 1_000_000,
            frac: 0.5,
            first_fault_ps: 5_000_000,
            repairs_ps: vec![10_000_000],
        };
        let mut c = Collector::with_recovery(64, Vec::new(), Some(spec));
        for i in 0..5u64 {
            c.on_delivered(
                Duration::from_ns(100),
                Time::from_ps(i * 1_000_000 + 500_000),
            );
        }
        let r = c.report(Time::from_us(20));
        assert_eq!(r.recoveries.len(), 1);
        assert!(!r.recoveries[0].recovered());
        assert!(r.recoveries[0].baseline_defined);
        assert_eq!(r.recoveries[0].time_to_recover_ns, None);
        assert_eq!(r.recoveries[0].deliveries_after, 0);
        assert_eq!(r.max_recovery_ns(), None);
    }

    #[test]
    fn zero_goodput_baseline_yields_typed_absence_not_nan() {
        // Regression (overload PR): a pre-fault window with zero
        // deliveries used to claim an instant (0 ns) recovery. It must
        // instead report an undefined baseline and no recovery verdict,
        // and no NaN/inf may reach the numeric fields.
        let spec = RecoverySpec {
            bin_ps: 1_000_000,
            frac: 0.5,
            first_fault_ps: 5_000_000,
            repairs_ps: vec![10_000_000],
        };
        let mut c = Collector::with_recovery(64, Vec::new(), Some(spec));
        // Deliveries only *after* the repair; the baseline window is dark.
        for i in 12..18u64 {
            c.on_delivered(
                Duration::from_ns(100),
                Time::from_ps(i * 1_000_000 + 500_000),
            );
        }
        let r = c.report(Time::from_us(20));
        assert_eq!(r.recoveries.len(), 1);
        let rec = &r.recoveries[0];
        assert!(!rec.baseline_defined, "dark baseline must be flagged");
        assert!(!rec.recovered());
        assert_eq!(rec.time_to_recover_ns, None);
        assert_eq!(rec.deliveries_after, 6);
        assert!(rec.baseline_per_us.is_finite());
        assert_eq!(rec.baseline_per_us, 0.0);
        assert_eq!(r.max_recovery_ns(), None);
        assert!(r.flap_amplification().is_finite());
    }

    #[test]
    fn flap_amplification_and_stranded_accounting() {
        let mut c = Collector::new(16);
        for _ in 0..4 {
            c.on_generated(Time::from_ns(1));
        }
        c.on_delivered(Duration::from_ns(10), Time::from_ns(2));
        c.on_abandoned(Time::from_ns(3));
        c.on_retransmit();
        c.on_retransmit();
        let r = c.report(Time::from_ns(10));
        assert!((r.flap_amplification() - 1.5).abs() < 1e-12);
        assert_eq!(r.stranded, 2, "two packets never reached an outcome");
        assert!(r.oracle.is_clean(), "reports default to a clean oracle");
    }

    #[test]
    fn delivery_outcome_default_is_pending() {
        assert_eq!(DeliveryOutcome::default(), DeliveryOutcome::Pending);
        assert_ne!(DeliveryOutcome::Delivered, DeliveryOutcome::GaveUp);
        assert_ne!(DeliveryOutcome::GaveUp, DeliveryOutcome::Expired);
    }

    #[test]
    fn expired_and_ingress_drops_are_terminal_outcomes() {
        let mut c = Collector::new(16);
        for _ in 0..6 {
            c.on_generated(Time::from_ns(1));
        }
        c.on_delivered(Duration::from_ns(10), Time::from_ns(2));
        c.on_abandoned(Time::from_ns(3));
        c.on_expired(Time::from_ns(4));
        c.on_expired(Time::from_ns(5));
        c.on_ingress_drop(Time::from_ns(6));
        let r = c.report(Time::from_ns(10));
        assert_eq!(r.expired, 2);
        assert_eq!(r.ingress_drops, 1);
        assert_eq!(
            r.stranded, 1,
            "one packet remains without a terminal outcome"
        );
        assert_eq!(
            r.generated,
            r.delivered + r.abandoned + r.expired + r.ingress_drops + r.stranded
        );
    }

    #[test]
    fn flow_stats_compute_jain_over_offering_flows() {
        let mut c = Collector::new(16);
        // Three offering flows (0, 1, 3) and one silent node (2).
        for (src, gen, del) in [(0u32, 4u64, 4u64), (1, 4, 2), (3, 4, 0)] {
            for _ in 0..gen {
                c.on_generated(Time::from_ns(1));
                c.note_flow_generated(src);
            }
            for _ in 0..del {
                c.on_delivered(Duration::from_ns(10), Time::from_ns(2));
                c.note_flow_delivered(src);
            }
        }
        let r = c.report(Time::from_ns(10));
        let f = r.fairness;
        assert_eq!(f.flows, 3, "silent node 2 must not count");
        assert_eq!(f.min_delivered, 0);
        assert_eq!(f.max_delivered, 4);
        // Jain((4, 2, 0)) = 36 / (3 * 20) = 0.6.
        assert!((f.jain - 0.6).abs() < 1e-12, "jain {}", f.jain);
        // A collector without flow accounting reports the neutral default.
        let plain = Collector::new(4).report(Time::from_ns(1));
        assert_eq!(plain.fairness, FlowStats::default());
        assert_eq!(plain.fairness.jain, 1.0);
    }

    #[test]
    fn all_flows_starved_is_uniformly_fair() {
        let mut c = Collector::new(4);
        for src in 0..3u32 {
            c.on_generated(Time::from_ns(1));
            c.note_flow_generated(src);
        }
        let f = c.report(Time::from_ns(5)).fairness;
        assert_eq!(f.flows, 3);
        assert_eq!((f.min_delivered, f.max_delivered), (0, 0));
        assert_eq!(f.jain, 1.0, "0/0 must resolve to uniform, not NaN");
    }
}

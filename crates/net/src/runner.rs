//! One entry point for every (network × workload) simulation the paper's
//! figures need.

use baldur_topo::dragonfly::Dragonfly;
use baldur_topo::fattree::FatTree;
use baldur_topo::multibutterfly::MultiButterfly;
use serde::{Deserialize, Serialize};

use crate::config::{BaldurParams, LinkParams, RouterParams};
use crate::driver::Driver;
use crate::faults::FaultPlan;
use crate::metrics::LatencyReport;
use crate::routing::{build_mb_graph, RoutingAlg};
use crate::traffic::Pattern;
use crate::workloads::{self, HpcApp, TraceParams};
use crate::{baldur_net, baldur_net_baseline, ideal_net, router_net, router_net_baseline};

/// Which network to simulate (the five of Sec. V-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetworkKind {
    /// The all-optical Baldur network.
    Baldur(BaldurParams),
    /// The buffered electrical multi-butterfly baseline.
    ElectricalMultiButterfly {
        /// Path multiplicity (paper: 4).
        multiplicity: u32,
        /// Router parameters.
        router: RouterParams,
    },
    /// The dragonfly baseline with UGAL-style adaptive routing.
    Dragonfly {
        /// Router parameters.
        router: RouterParams,
    },
    /// Dragonfly with minimal-only routing (ablation; the paper uses the
    /// adaptive configuration).
    DragonflyMinimal {
        /// Router parameters.
        router: RouterParams,
    },
    /// The 3-level fat-tree baseline with adaptive up-routing.
    FatTree {
        /// Router parameters.
        router: RouterParams,
    },
    /// Infinite bandwidth, flat 200 ns.
    Ideal,
}

impl NetworkKind {
    /// All five networks at the paper's defaults for `nodes` servers.
    pub fn paper_lineup(nodes: u32) -> Vec<(String, NetworkKind)> {
        vec![
            (
                "baldur".into(),
                NetworkKind::Baldur(BaldurParams::paper_for(u64::from(nodes))),
            ),
            (
                "electrical_mb".into(),
                NetworkKind::ElectricalMultiButterfly {
                    multiplicity: 4,
                    router: RouterParams::paper(),
                },
            ),
            (
                "dragonfly".into(),
                NetworkKind::Dragonfly {
                    router: RouterParams::paper(),
                },
            ),
            (
                "fattree".into(),
                NetworkKind::FatTree {
                    router: RouterParams::paper(),
                },
            ),
            ("ideal".into(), NetworkKind::Ideal),
        ]
    }

    /// Resolves one lineup entry from its stable display name (the
    /// strings [`NetworkKind::name`] returns), at the paper's defaults
    /// for `nodes` servers. This is the spec-facing entry point behind
    /// the experiment registry's `networks` axis; `dragonfly_minimal`
    /// (the routing ablation) is resolvable here even though the paper
    /// lineup omits it.
    pub fn by_name(name: &str, nodes: u32) -> Option<NetworkKind> {
        match name {
            "baldur" => Some(NetworkKind::Baldur(BaldurParams::paper_for(u64::from(
                nodes,
            )))),
            "electrical_mb" => Some(NetworkKind::ElectricalMultiButterfly {
                multiplicity: 4,
                router: RouterParams::paper(),
            }),
            "dragonfly" => Some(NetworkKind::Dragonfly {
                router: RouterParams::paper(),
            }),
            "dragonfly_minimal" => Some(NetworkKind::DragonflyMinimal {
                router: RouterParams::paper(),
            }),
            "fattree" => Some(NetworkKind::FatTree {
                router: RouterParams::paper(),
            }),
            "ideal" => Some(NetworkKind::Ideal),
            _ => None,
        }
    }

    /// Builds a named lineup (the shape [`NetworkKind::paper_lineup`]
    /// returns) from a list of display names, preserving order. An
    /// unknown name errs with the valid choices, so the registry runner
    /// can surface it as a usage error instead of a panic.
    pub fn lineup_named(
        nodes: u32,
        names: &[String],
    ) -> Result<Vec<(String, NetworkKind)>, String> {
        names
            .iter()
            .map(|name| match NetworkKind::by_name(name, nodes) {
                Some(net) => Ok((name.clone(), net)),
                None => Err(format!(
                    "unknown network `{name}` (choose from: baldur, electrical_mb, \
                     dragonfly, dragonfly_minimal, fattree, ideal)"
                )),
            })
            .collect()
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkKind::Baldur(_) => "baldur",
            NetworkKind::ElectricalMultiButterfly { .. } => "electrical_mb",
            NetworkKind::Dragonfly { .. } => "dragonfly",
            NetworkKind::DragonflyMinimal { .. } => "dragonfly_minimal",
            NetworkKind::FatTree { .. } => "fattree",
            NetworkKind::Ideal => "ideal",
        }
    }
}

/// What traffic to offer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Open-loop synthetic pattern at an input load.
    Synthetic {
        /// Traffic pattern.
        pattern: Pattern,
        /// Input load in (0, 1].
        load: f64,
        /// Packets injected per node.
        packets_per_node: u32,
    },
    /// Closed-loop ping-pong over a random pairing (paper ping_pong1).
    PingPong1 {
        /// Rounds per pair.
        rounds: u32,
    },
    /// Closed-loop ping-pong over dragonfly-adversarial group pairs
    /// (paper ping_pong2).
    PingPong2 {
        /// Rounds per pair.
        rounds: u32,
    },
    /// Synthetic HPC application trace.
    Hpc {
        /// Which application.
        app: HpcApp,
        /// Trace scale knobs.
        params: TraceParams,
    },
    /// Overload storm: open-loop arrivals at an offered load that may
    /// exceed saturation (`load > 1` is allowed), destinations from a
    /// storm [`Pattern`]. Incast wakes only the pattern's sender set;
    /// hotcast sources are bursty on/off.
    Storm {
        /// Storm traffic pattern (usually `Incast`/`Hotcast`; any
        /// pattern works).
        pattern: Pattern,
        /// Offered load relative to line rate, `> 0` (4.0 = 4x
        /// saturation).
        load: f64,
        /// Packets injected per active sender.
        packets_per_node: u32,
    },
}

/// A complete run configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Active server nodes (topologies may be built slightly larger, as in
    /// the paper; the extra nodes idle).
    pub nodes: u32,
    /// The network under test.
    pub network: NetworkKind,
    /// The offered workload.
    pub workload: Workload,
    /// Link/packet parameters.
    pub link: LinkParams,
    /// Master seed.
    pub seed: u64,
    /// Simulated-time bound in ns (None = generous default).
    pub horizon_ns: Option<u64>,
    /// Fault schedule (None = fault-free). Baldur executes every kind;
    /// the electrical baselines honor router-granularity kinds; the ideal
    /// network ignores faults (it has no components to fail).
    pub faults: Option<FaultPlan>,
}

impl RunConfig {
    /// A config with paper defaults for everything but the essentials.
    pub fn new(nodes: u32, network: NetworkKind, workload: Workload) -> Self {
        RunConfig {
            nodes,
            network,
            workload,
            link: LinkParams::paper(),
            seed: 0xBA1D,
            horizon_ns: None,
            faults: None,
        }
    }

    /// The same config with a fault schedule attached.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

fn build_driver(cfg: &RunConfig) -> Driver {
    match cfg.workload {
        Workload::Synthetic {
            pattern,
            load,
            packets_per_node,
        } => Driver::open_loop(
            cfg.nodes,
            pattern,
            load,
            packets_per_node,
            &cfg.link,
            cfg.seed,
        ),
        Workload::PingPong1 { rounds } => Driver::ping_pong(
            workloads::ping_pong1_pairs(cfg.nodes, cfg.seed),
            rounds,
            cfg.seed,
        ),
        Workload::PingPong2 { rounds } => {
            Driver::ping_pong(workloads::ping_pong2_pairs(cfg.nodes), rounds, cfg.seed)
        }
        Workload::Hpc { app, params } => Driver::trace(
            workloads::generate(app, cfg.nodes, params, cfg.seed),
            cfg.seed,
        ),
        Workload::Storm {
            pattern,
            load,
            packets_per_node,
        } => Driver::storm(
            cfg.nodes,
            pattern,
            load,
            packets_per_node,
            &cfg.link,
            cfg.seed,
        ),
    }
}

/// Runs one configuration and returns the report.
///
/// # Panics
///
/// Panics on malformed configurations (e.g. transpose on a non-square node
/// count) — the harnesses construct only valid ones.
pub fn run(cfg: &RunConfig) -> LatencyReport {
    let driver = build_driver(cfg);
    // An absent schedule is the empty plan: both simulators take the
    // fault-free fast path on it, bit-identical to a plain run.
    let plan = cfg
        .faults
        .clone()
        .unwrap_or_else(|| FaultPlan::new(cfg.seed));
    match &cfg.network {
        NetworkKind::Baldur(params) => baldur_net::simulate_plan(
            cfg.nodes,
            *params,
            cfg.link,
            driver,
            cfg.seed,
            cfg.horizon_ns,
            &plan,
        ),
        NetworkKind::ElectricalMultiButterfly {
            multiplicity,
            router,
        } => {
            let topo_nodes = cfg.nodes.next_power_of_two().max(4);
            let mb = MultiButterfly::new(topo_nodes, *multiplicity, cfg.seed);
            // Node fibers 100 ns (Table VI); same-room stage links short.
            let graph = build_mb_graph(&mb, 100_000, 10_000);
            router_net::simulate_plan(
                graph,
                RoutingAlg::MultiButterfly(mb),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::Dragonfly { router } => {
            let df = Dragonfly::at_least(u64::from(cfg.nodes));
            // Table VI: intra-group 10 ns, inter-group 100 ns.
            let graph = df.build_graph(10_000, 100_000);
            router_net::simulate_plan(
                graph,
                RoutingAlg::Dragonfly(df),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::DragonflyMinimal { router } => {
            let df = Dragonfly::at_least(u64::from(cfg.nodes));
            let graph = df.build_graph(10_000, 100_000);
            router_net::simulate_plan(
                graph,
                RoutingAlg::DragonflyMinimal(df),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::FatTree { router } => {
            let ft = FatTree::at_least(u64::from(cfg.nodes));
            // Table VI: level 1/2/3 links at 10/50/100 ns.
            let graph = ft.build_graph(10_000, 50_000, 100_000);
            router_net::simulate_plan(
                graph,
                RoutingAlg::FatTree(ft),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::Ideal => ideal_net::simulate(driver, None),
    }
}

/// [`run`] through the retired map-based packet models
/// (`baldur_net_baseline`, `router_net_baseline`) instead of the
/// struct-of-arrays ones. Exists only for differential testing: for any
/// configuration both entry points must return byte-identical
/// [`LatencyReport`]s — the property suite holds them to it. The ideal
/// network has no retired variant (it never had per-packet hot state),
/// so it dispatches to the live model.
///
/// # Panics
///
/// Panics on malformed configurations, exactly like [`run`].
pub fn run_baseline(cfg: &RunConfig) -> LatencyReport {
    let driver = build_driver(cfg);
    let plan = cfg
        .faults
        .clone()
        .unwrap_or_else(|| FaultPlan::new(cfg.seed));
    match &cfg.network {
        NetworkKind::Baldur(params) => baldur_net_baseline::simulate_plan(
            cfg.nodes,
            *params,
            cfg.link,
            driver,
            cfg.seed,
            cfg.horizon_ns,
            &plan,
        ),
        NetworkKind::ElectricalMultiButterfly {
            multiplicity,
            router,
        } => {
            let topo_nodes = cfg.nodes.next_power_of_two().max(4);
            let mb = MultiButterfly::new(topo_nodes, *multiplicity, cfg.seed);
            let graph = build_mb_graph(&mb, 100_000, 10_000);
            router_net_baseline::simulate_plan(
                graph,
                RoutingAlg::MultiButterfly(mb),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::Dragonfly { router } => {
            let df = Dragonfly::at_least(u64::from(cfg.nodes));
            let graph = df.build_graph(10_000, 100_000);
            router_net_baseline::simulate_plan(
                graph,
                RoutingAlg::Dragonfly(df),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::DragonflyMinimal { router } => {
            let df = Dragonfly::at_least(u64::from(cfg.nodes));
            let graph = df.build_graph(10_000, 100_000);
            router_net_baseline::simulate_plan(
                graph,
                RoutingAlg::DragonflyMinimal(df),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::FatTree { router } => {
            let ft = FatTree::at_least(u64::from(cfg.nodes));
            let graph = ft.build_graph(10_000, 50_000, 100_000);
            router_net_baseline::simulate_plan(
                graph,
                RoutingAlg::FatTree(ft),
                cfg.link,
                *router,
                driver,
                cfg.seed,
                cfg.horizon_ns,
                &plan,
            )
        }
        NetworkKind::Ideal => ideal_net::simulate(driver, None),
    }
}

/// Runs a batch of independent configurations across up to `threads`
/// workers, returning reports in input order.
///
/// Every run is a pure function of its `RunConfig`, so the fan-out cannot
/// change any report — results are byte-identical at any thread count.
/// `threads == 0` resolves through `BALDUR_THREADS`, then the machine's
/// available parallelism (see [`baldur_sim::par::thread_count`]).
///
/// # Panics
///
/// Propagates a panic from any individual [`run`].
pub fn run_many(threads: usize, cfgs: Vec<RunConfig>) -> Vec<LatencyReport> {
    baldur_sim::par::par_map(baldur_sim::par::thread_count(threads), cfgs, run)
}

/// [`run_many`] with panic isolation: a configuration whose [`run`]
/// panics (e.g. a malformed topology/pattern pairing) yields
/// `Err(panic message)` in its input-order slot while every other
/// configuration still completes. Never panics and never skips: the
/// isolated pool runs with an unlimited failure budget, so the result is
/// thread-count deterministic like [`run_many`] itself.
pub fn try_run_many(threads: usize, cfgs: Vec<RunConfig>) -> Vec<Result<LatencyReport, String>> {
    use baldur_sim::par::JobSlot;
    let (slots, _aborted) =
        baldur_sim::par::par_map_isolated(baldur_sim::par::thread_count(threads), cfgs, None, run);
    slots
        .into_iter()
        .map(|slot| match slot {
            JobSlot::Done(report) => Ok(report),
            JobSlot::Panicked(msg) => Err(msg),
            JobSlot::Skipped => Err("skipped".to_string()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_reconstructs_the_paper_lineup() {
        for (name, net) in NetworkKind::paper_lineup(128) {
            assert_eq!(NetworkKind::by_name(&name, 128), Some(net), "{name}");
        }
        assert!(NetworkKind::by_name("dragonfly_minimal", 128).is_some());
        assert!(NetworkKind::by_name("token_ring", 128).is_none());
        let names: Vec<String> = ["baldur", "ideal"].iter().map(|s| s.to_string()).collect();
        let lineup = NetworkKind::lineup_named(64, &names).expect("known names resolve");
        assert_eq!(lineup.len(), 2);
        assert_eq!(lineup[1].1, NetworkKind::Ideal);
        let bad = vec!["baldur".to_string(), "token_ring".to_string()];
        assert!(NetworkKind::lineup_named(64, &bad)
            .expect_err("unknown name errs")
            .contains("token_ring"));
    }

    fn synth(load: f64, ppn: u32) -> Workload {
        Workload::Synthetic {
            pattern: Pattern::RandomPermutation,
            load,
            packets_per_node: ppn,
        }
    }

    #[test]
    fn all_five_networks_run_the_same_workload() {
        for (name, net) in NetworkKind::paper_lineup(64) {
            let cfg = RunConfig::new(64, net, synth(0.2, 20));
            let r = run(&cfg);
            assert!(
                r.delivery_ratio() > 0.99,
                "{name}: delivered {} of {}",
                r.delivered,
                r.generated
            );
            assert!(r.avg_ns > 0.0, "{name}");
        }
    }

    #[test]
    fn baldur_beats_electrical_networks_at_moderate_load() {
        let mut avg = std::collections::BTreeMap::new();
        for (name, net) in NetworkKind::paper_lineup(64) {
            let cfg = RunConfig::new(64, net, synth(0.3, 30));
            avg.insert(name, run(&cfg).avg_ns);
        }
        let baldur = avg["baldur"];
        assert!(baldur < avg["electrical_mb"], "{avg:?}");
        assert!(baldur < avg["fattree"], "{avg:?}");
        assert!(baldur < avg["dragonfly"], "{avg:?}");
        // And the ideal network lower-bounds everyone.
        assert!(avg["ideal"] <= baldur, "{avg:?}");
    }

    #[test]
    fn run_many_matches_serial_runs_in_order() {
        let cfgs: Vec<RunConfig> = NetworkKind::paper_lineup(64)
            .into_iter()
            .map(|(_, net)| RunConfig::new(64, net, synth(0.2, 10)))
            .collect();
        let serial: Vec<LatencyReport> = cfgs.iter().map(run).collect();
        let batched = run_many(4, cfgs);
        assert_eq!(serial, batched);
    }

    #[test]
    fn try_run_many_isolates_a_bad_config() {
        // Transpose requires a power-of-two node count; 6 nodes panics —
        // and must not take its siblings with it.
        let bad = RunConfig::new(
            6,
            NetworkKind::Ideal,
            Workload::Synthetic {
                pattern: Pattern::Transpose,
                load: 0.2,
                packets_per_node: 5,
            },
        );
        let good = RunConfig::new(64, NetworkKind::Ideal, synth(0.2, 5));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = try_run_many(2, vec![good.clone(), bad, good.clone()]);
        std::panic::set_hook(prev);
        assert!(out[0].is_ok() && out[2].is_ok());
        assert_eq!(out[0], out[2]);
        assert!(out[1].is_err(), "bad config must surface its panic");
        assert_eq!(
            out[0].as_ref().ok().map(|r| r.delivered),
            Some(run(&good).delivered)
        );
    }

    #[test]
    fn baseline_models_match_soa_models_byte_identically() {
        // The retired map-based models and the struct-of-arrays models
        // must agree on the whole report, including float bits, for every
        // network in the lineup.
        for (name, net) in NetworkKind::paper_lineup(64) {
            let cfg = RunConfig::new(64, net, synth(0.3, 15));
            assert_eq!(run(&cfg), run_baseline(&cfg), "{name}");
        }
    }

    #[test]
    fn ping_pong2_runs_everywhere() {
        for (name, net) in NetworkKind::paper_lineup(64) {
            let cfg = RunConfig::new(64, net, Workload::PingPong2 { rounds: 3 });
            let r = run(&cfg);
            assert_eq!(r.delivered, r.generated, "{name}");
        }
    }

    #[test]
    fn hpc_trace_runs_on_baldur_and_fattree() {
        let wl = Workload::Hpc {
            app: HpcApp::CrystalRouter,
            params: TraceParams {
                iterations: 1,
                halo_packets: 2,
                compute_ps: 100_000,
            },
        };
        for (name, net) in NetworkKind::paper_lineup(64).into_iter().take(2) {
            let cfg = RunConfig::new(64, net, wl);
            let r = run(&cfg);
            assert!(r.delivery_ratio() > 0.99, "{name}");
        }
    }
}

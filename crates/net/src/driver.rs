//! Workload drivers: who sends what, when.
//!
//! All network models (Baldur, electrical, ideal) share one driver so a
//! workload is defined once and replayed identically everywhere. Three
//! source kinds cover the paper's evaluation:
//!
//! * **Open loop** — exponential inter-arrival times at a configured input
//!   load (Sec. V-A Eq. 1), destinations from a [`Pattern`] assignment.
//! * **Ping-pong** — closed loop: paired nodes bounce a packet back and
//!   forth, so network latency directly serializes progress.
//! * **Trace** — a per-node script of sends, receives, and compute delays,
//!   used by the synthetic HPC workloads (DUMPI-replay style: a receive
//!   gates everything after it).

use baldur_sim::rng::StreamRng;
use baldur_topo::graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::config::LinkParams;
use crate::traffic::{Assignment, Pattern};

/// One step of a trace script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Transmit `packets` packets to `dst`.
    Send {
        /// Destination node.
        dst: u32,
        /// Number of packets in the message.
        packets: u32,
    },
    /// Block until `packets` more packets have been received.
    Recv {
        /// Number of packets to wait for.
        packets: u32,
    },
    /// Local compute for `ps` picoseconds.
    Delay {
        /// Compute time in picoseconds.
        ps: u64,
    },
}

/// A transmit command handed to the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendCmd {
    /// Destination node.
    pub dst: NodeId,
    /// Number of packets.
    pub count: u32,
}

/// What the driver wants next from the model.
#[derive(Debug, Clone, Default)]
pub struct DriverOutput {
    /// Packets to enqueue at the node right now.
    pub sends: Vec<SendCmd>,
    /// If set, call [`Driver::wakeup`] for this node at the given time.
    pub wake_at_ps: Option<u64>,
}

enum NodeSource {
    OpenLoop {
        remaining: u32,
        mean_ps: f64,
    },
    Burst {
        remaining: u32,
        in_burst: u32,
        burst_len: u32,
        spacing_ps: f64,
        gap_mean_ps: f64,
    },
    PingPong {
        partner: u32,
        remaining_sends: u32,
        initiator: bool,
    },
    Trace {
        ops: Vec<Op>,
        pc: usize,
        needed: u32,
        banked: u32,
    },
}

/// The per-run workload driver.
pub struct Driver {
    nodes: u32,
    sources: Vec<NodeSource>,
    assignment: Option<Assignment>,
    rng: StreamRng,
    total_to_send: u64,
}

impl Driver {
    /// An open-loop driver: every node injects `packets_per_node` packets
    /// at `load`, destinations from `pattern`.
    pub fn open_loop(
        nodes: u32,
        pattern: Pattern,
        load: f64,
        packets_per_node: u32,
        link: &LinkParams,
        seed: u64,
    ) -> Driver {
        let assignment = Assignment::build(pattern, nodes, seed);
        let mean_ps = link.mean_interarrival_ps(load);
        let sources = (0..nodes)
            .map(|_| NodeSource::OpenLoop {
                remaining: packets_per_node,
                mean_ps,
            })
            .collect();
        Driver {
            nodes,
            sources,
            assignment: Some(assignment),
            rng: StreamRng::named(seed, "driver", 0),
            total_to_send: u64::from(nodes) * u64::from(packets_per_node),
        }
    }

    /// An overload-storm driver: destinations from a storm [`Pattern`]
    /// at an offered `load` that may exceed saturation (`load > 1` is
    /// allowed — arrivals then outpace the line rate on purpose). Only
    /// the pattern's active senders transmit
    /// ([`crate::traffic::storm_senders`]); [`Pattern::Hotcast`] sources
    /// are bursty on/off (bursts of [`Driver::BURST_LEN`] back-to-back
    /// packets separated by exponential off gaps sized so the long-run
    /// offered load still equals `load`).
    ///
    /// # Panics
    ///
    /// Panics on configurations [`Assignment::try_build`] rejects and
    /// if `load <= 0`.
    pub fn storm(
        nodes: u32,
        pattern: Pattern,
        load: f64,
        packets_per_node: u32,
        link: &LinkParams,
        seed: u64,
    ) -> Driver {
        let assignment = Assignment::build(pattern, nodes, seed);
        let mean_ps = link.overload_interarrival_ps(load);
        let packet_ps = link.packet_time().as_ps() as f64;
        // On/off shape: within a burst packets are back-to-back at the
        // offered rate (or line rate if load < 1); the off gap carries
        // the rest of the idle time so the average still matches.
        let burst_len = Self::BURST_LEN;
        let (spacing_ps, gap_mean_ps) = if load >= 1.0 {
            (packet_ps / load, 0.0)
        } else {
            (
                packet_ps,
                f64::from(burst_len) * packet_ps * (1.0 - load) / load,
            )
        };
        let bursty = pattern == Pattern::Hotcast;
        let senders = crate::traffic::storm_senders(pattern, nodes, seed);
        let active = |n: u32| senders.as_ref().map_or(true, |s| s.contains(&n));
        let mut total = 0u64;
        let sources = (0..nodes)
            .map(|n| {
                let remaining = if active(n) { packets_per_node } else { 0 };
                total += u64::from(remaining);
                if bursty {
                    NodeSource::Burst {
                        remaining,
                        in_burst: 0,
                        burst_len,
                        spacing_ps,
                        gap_mean_ps,
                    }
                } else {
                    NodeSource::OpenLoop { remaining, mean_ps }
                }
            })
            .collect();
        Driver {
            nodes,
            sources,
            assignment: Some(assignment),
            rng: StreamRng::named(seed, "driver", 3),
            total_to_send: total,
        }
    }

    /// Packets per on-phase burst for [`Driver::storm`] hotcast sources.
    pub const BURST_LEN: u32 = 8;

    /// A ping-pong driver over explicit mutual `pairs` (each entry is the
    /// partner of its index). Each initiator plays `rounds` rounds; one
    /// round is one packet each way.
    ///
    /// # Panics
    ///
    /// Panics if the pairing is not a symmetric involution.
    pub fn ping_pong(pairs: Vec<u32>, rounds: u32, seed: u64) -> Driver {
        let nodes = pairs.len() as u32;
        for (i, &p) in pairs.iter().enumerate() {
            assert_ne!(i as u32, p, "node paired with itself");
            assert_eq!(pairs[p as usize], i as u32, "pairing must be mutual");
        }
        let sources = pairs
            .iter()
            .enumerate()
            .map(|(i, &partner)| NodeSource::PingPong {
                partner,
                remaining_sends: rounds,
                initiator: (i as u32) < partner,
            })
            .collect();
        Driver {
            nodes,
            sources,
            assignment: None,
            rng: StreamRng::named(seed, "driver", 1),
            total_to_send: u64::from(nodes) * u64::from(rounds),
        }
    }

    /// A trace driver from per-node scripts.
    ///
    /// # Panics
    ///
    /// Panics if a script sends to an out-of-range node.
    pub fn trace(scripts: Vec<Vec<Op>>, seed: u64) -> Driver {
        let nodes = scripts.len() as u32;
        let mut total = 0u64;
        for ops in &scripts {
            for op in ops {
                if let Op::Send { dst, packets } = op {
                    assert!(*dst < nodes, "send to out-of-range node {dst}");
                    total += u64::from(*packets);
                }
            }
        }
        let sources = scripts
            .into_iter()
            .map(|ops| NodeSource::Trace {
                ops,
                pc: 0,
                needed: 0,
                banked: 0,
            })
            .collect();
        Driver {
            nodes,
            sources,
            assignment: None,
            rng: StreamRng::named(seed, "driver", 2),
            total_to_send: total,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Total packets the workload will transmit (for termination checks).
    pub fn total_to_send(&self) -> u64 {
        self.total_to_send
    }

    /// First activity per node: `(node, wake_time_ps)` — schedule a
    /// [`Driver::wakeup`] for each.
    pub fn initial(&mut self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        for n in 0..self.nodes {
            match &self.sources[n as usize] {
                NodeSource::OpenLoop { remaining, mean_ps } if *remaining > 0 => {
                    let t = self.rng.gen_exp(*mean_ps) as u64;
                    out.push((n, t));
                }
                NodeSource::Burst {
                    remaining,
                    burst_len,
                    spacing_ps,
                    gap_mean_ps,
                    ..
                } if *remaining > 0 => {
                    // Stagger starts by the long-run mean inter-arrival so
                    // bursts don't all fire in phase at t=0.
                    let mean = *spacing_ps + *gap_mean_ps / f64::from(*burst_len);
                    let t = self.rng.gen_exp(mean) as u64;
                    out.push((n, t));
                }
                NodeSource::PingPong {
                    initiator: true,
                    remaining_sends,
                    ..
                } if *remaining_sends > 0 => out.push((n, 0)),
                NodeSource::Trace { ops, .. } if !ops.is_empty() => out.push((n, 0)),
                _ => {}
            }
        }
        out
    }

    /// A scheduled wakeup for `node` fired at `now_ps`.
    pub fn wakeup(&mut self, node: u32, now_ps: u64) -> DriverOutput {
        // The generating sources (open-loop and burst) update their state
        // in the match, then fall through to a shared destination draw —
        // every generating constructor installs an assignment, and one
        // shared lookup keeps that invariant in one place. RNG order is
        // part of the determinism contract: the destination draw comes
        // first, the timing draw second, exactly as each arm did inline.
        enum Timing {
            // `gen_exp(mean)` after the destination draw.
            Open { mean: f64 },
            // Fixed spacing plus `gen_exp(gap_mean)` when a burst ended.
            Burst { spacing: f64, gap_mean: f64 },
        }
        let (timing, more) = match &mut self.sources[node as usize] {
            NodeSource::OpenLoop { remaining, mean_ps } => {
                if *remaining == 0 {
                    return DriverOutput::default();
                }
                *remaining -= 1;
                (Timing::Open { mean: *mean_ps }, *remaining > 0)
            }
            NodeSource::Burst {
                remaining,
                in_burst,
                burst_len,
                spacing_ps,
                gap_mean_ps,
            } => {
                if *remaining == 0 {
                    return DriverOutput::default();
                }
                *remaining -= 1;
                *in_burst += 1;
                // End of a burst: add the exponential off gap and start
                // the next burst fresh.
                let gap_mean = if *in_burst >= *burst_len {
                    *in_burst = 0;
                    *gap_mean_ps
                } else {
                    0.0
                };
                (
                    Timing::Burst {
                        spacing: *spacing_ps,
                        gap_mean,
                    },
                    *remaining > 0,
                )
            }
            NodeSource::PingPong {
                partner,
                remaining_sends,
                initiator,
            } => {
                // Only the initiator's t=0 wakeup sends; everything else is
                // delivery-driven.
                return if *initiator && *remaining_sends > 0 && now_ps == 0 {
                    *remaining_sends -= 1;
                    DriverOutput {
                        sends: vec![SendCmd {
                            dst: NodeId(*partner),
                            count: 1,
                        }],
                        wake_at_ps: None,
                    }
                } else {
                    DriverOutput::default()
                };
            }
            NodeSource::Trace { .. } => return self.advance_trace(node, now_ps),
        };
        let dst = self
            .assignment
            .as_ref()
            .expect("generating source has an assignment")
            .destination(NodeId(node), &mut self.rng, self.nodes);
        let wake_at_ps = more.then(|| match timing {
            Timing::Open { mean } => now_ps + self.rng.gen_exp(mean) as u64,
            Timing::Burst { spacing, gap_mean } => {
                let gap = if gap_mean > 0.0 {
                    self.rng.gen_exp(gap_mean) as u64
                } else {
                    0
                };
                now_ps + spacing as u64 + gap
            }
        });
        DriverOutput {
            sends: vec![SendCmd { dst, count: 1 }],
            wake_at_ps,
        }
    }

    /// A packet addressed to `node` was delivered at `now_ps`.
    pub fn delivered(&mut self, node: u32, now_ps: u64) -> DriverOutput {
        match &mut self.sources[node as usize] {
            NodeSource::PingPong {
                partner,
                remaining_sends,
                ..
            } => {
                if *remaining_sends > 0 {
                    *remaining_sends -= 1;
                    DriverOutput {
                        sends: vec![SendCmd {
                            dst: NodeId(*partner),
                            count: 1,
                        }],
                        wake_at_ps: None,
                    }
                } else {
                    DriverOutput::default()
                }
            }
            NodeSource::Trace { needed, banked, .. } => {
                if *needed > 0 {
                    *needed -= 1;
                    if *needed == 0 {
                        return self.advance_trace(node, now_ps);
                    }
                } else {
                    *banked += 1;
                }
                DriverOutput::default()
            }
            _ => DriverOutput::default(),
        }
    }

    /// Runs a trace script forward until it blocks on a receive, a delay,
    /// or the end.
    fn advance_trace(&mut self, node: u32, now_ps: u64) -> DriverOutput {
        let NodeSource::Trace {
            ops,
            pc,
            needed,
            banked,
        } = &mut self.sources[node as usize]
        else {
            return DriverOutput::default();
        };
        let mut out = DriverOutput::default();
        while *pc < ops.len() {
            match ops[*pc] {
                Op::Send { dst, packets } => {
                    out.sends.push(SendCmd {
                        dst: NodeId(dst),
                        count: packets,
                    });
                    *pc += 1;
                }
                Op::Recv { packets } => {
                    let from_bank = packets.min(*banked);
                    *banked -= from_bank;
                    let still = packets - from_bank;
                    if still == 0 {
                        *pc += 1;
                        continue;
                    }
                    *needed = still;
                    *pc += 1;
                    return out;
                }
                Op::Delay { ps } => {
                    *pc += 1;
                    out.wake_at_ps = Some(now_ps + ps);
                    return out;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_sends_exactly_n_packets() {
        let link = LinkParams::paper();
        let mut d = Driver::open_loop(4, Pattern::RandomPermutation, 0.5, 3, &link, 9);
        assert_eq!(d.total_to_send(), 12);
        let init = d.initial();
        assert_eq!(init.len(), 4);
        let mut sent = 0;
        let mut queue: Vec<(u32, u64)> = init;
        while let Some((node, t)) = queue.pop() {
            let out = d.wakeup(node, t);
            sent += out.sends.iter().map(|s| s.count).sum::<u32>();
            if let Some(next) = out.wake_at_ps {
                assert!(next > t);
                queue.push((node, next));
            }
        }
        assert_eq!(sent, 12);
    }

    #[test]
    fn ping_pong_alternates() {
        let mut d = Driver::ping_pong(vec![1, 0], 2, 4);
        assert_eq!(d.total_to_send(), 4);
        let init = d.initial();
        assert_eq!(init, vec![(0, 0)]); // only the initiator starts
        let first = d.wakeup(0, 0);
        assert_eq!(
            first.sends,
            vec![SendCmd {
                dst: NodeId(1),
                count: 1
            }]
        );
        // Node 1 receives, replies.
        let reply = d.delivered(1, 500);
        assert_eq!(
            reply.sends,
            vec![SendCmd {
                dst: NodeId(0),
                count: 1
            }]
        );
        // Node 0 receives, sends round 2.
        let r2 = d.delivered(0, 1_000);
        assert_eq!(r2.sends.len(), 1);
        let r2b = d.delivered(1, 1_500);
        assert_eq!(r2b.sends.len(), 1);
        // Rounds exhausted: silence.
        assert!(d.delivered(0, 2_000).sends.is_empty());
    }

    #[test]
    fn trace_recv_gates_send() {
        let scripts = vec![
            vec![Op::Send { dst: 1, packets: 2 }],
            vec![Op::Recv { packets: 2 }, Op::Send { dst: 0, packets: 1 }],
        ];
        let mut d = Driver::trace(scripts, 0);
        assert_eq!(d.total_to_send(), 3);
        let init = d.initial();
        assert_eq!(init.len(), 2);
        let o0 = d.wakeup(0, 0);
        assert_eq!(
            o0.sends,
            vec![SendCmd {
                dst: NodeId(1),
                count: 2
            }]
        );
        let o1 = d.wakeup(1, 0);
        assert!(o1.sends.is_empty(), "recv must block the send");
        assert!(d.delivered(1, 100).sends.is_empty());
        let done = d.delivered(1, 200);
        assert_eq!(
            done.sends,
            vec![SendCmd {
                dst: NodeId(0),
                count: 1
            }]
        );
    }

    #[test]
    fn trace_banked_early_arrivals_count() {
        let scripts = vec![
            vec![Op::Send { dst: 1, packets: 1 }],
            vec![
                Op::Delay { ps: 1_000 },
                Op::Recv { packets: 1 },
                Op::Send { dst: 0, packets: 1 },
            ],
        ];
        let mut d = Driver::trace(scripts, 0);
        d.wakeup(0, 0);
        let o1 = d.wakeup(1, 0);
        assert_eq!(o1.wake_at_ps, Some(1_000));
        // Packet arrives during the delay: banked.
        assert!(d.delivered(1, 500).sends.is_empty());
        // Wakeup after the delay: recv satisfied from the bank, send fires.
        let after = d.wakeup(1, 1_000);
        assert_eq!(after.sends.len(), 1);
    }

    #[test]
    #[should_panic(expected = "mutual")]
    fn asymmetric_pairs_rejected() {
        Driver::ping_pong(vec![1, 2, 0], 1, 0);
    }

    fn drain_storm(d: &mut Driver) -> u32 {
        let mut sent = 0;
        let mut queue: Vec<(u32, u64)> = d.initial();
        while let Some((node, t)) = queue.pop() {
            let out = d.wakeup(node, t);
            sent += out.sends.iter().map(|s| s.count).sum::<u32>();
            if let Some(next) = out.wake_at_ps {
                assert!(next > t, "storm wakeups must advance time");
                queue.push((node, next));
            }
        }
        sent
    }

    #[test]
    fn incast_storm_only_senders_transmit() {
        let link = LinkParams::paper();
        let mut d = Driver::storm(16, Pattern::Incast { fanin: 5 }, 2.0, 7, &link, 9);
        assert_eq!(d.total_to_send(), 35, "5 senders x 7 packets");
        assert_eq!(d.initial().len(), 5, "idle nodes never wake");
        assert_eq!(drain_storm(&mut d), 35);
    }

    #[test]
    fn hotcast_storm_sends_exactly_n_packets_even_past_saturation() {
        let link = LinkParams::paper();
        let mut d = Driver::storm(8, Pattern::Hotcast, 4.0, 20, &link, 9);
        assert_eq!(d.total_to_send(), 160);
        assert_eq!(d.initial().len(), 8, "hotcast keeps every node active");
        assert_eq!(drain_storm(&mut d), 160);
    }
}

//! The paper's "in-house tool" (Sec. IV-E): worst-case drop analysis.
//!
//! Scenario: every server node injects one packet and all packets hit the
//! first stage *simultaneously* — the worst instantaneous contention the
//! bufferless network can see. The tool walks the packets stage by stage;
//! at each (switch, direction) at most `m` packets survive (one per path
//! port). The resulting drop rate determines the multiplicity needed for
//! <1% drops at a given scale — the paper concludes m=4 for 1K nodes and
//! m=5 for >1M nodes.
//!
//! Runs comfortably at millions of nodes: work is O(stages × nodes).

use baldur_sim::rng::StreamRng;
use baldur_topo::graph::NodeId;
use baldur_topo::multibutterfly::{MultiButterfly, Wiring};
use serde::{Deserialize, Serialize};

use crate::traffic::{Assignment, Pattern};

/// Result of one worst-case injection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropResult {
    /// Packets injected (one per node).
    pub injected: u64,
    /// Packets that reached their destination.
    pub survived: u64,
    /// `1 - survived / injected`.
    pub drop_rate: f64,
}

/// Runs the worst-case simultaneous-injection experiment.
///
/// # Panics
///
/// Panics if `nodes` is not a power of two ≥ 4.
pub fn worst_case(nodes: u32, multiplicity: u32, pattern: Pattern, seed: u64) -> DropResult {
    worst_case_with_wiring(nodes, multiplicity, pattern, seed, Wiring::Randomized)
}

/// [`worst_case`] with an explicit wiring mode — the randomization
/// ablation of the expansion property.
pub fn worst_case_with_wiring(
    nodes: u32,
    multiplicity: u32,
    pattern: Pattern,
    seed: u64,
    wiring: Wiring,
) -> DropResult {
    worst_case_impl(nodes, multiplicity, pattern, seed, wiring, 1.0)
}

/// [`worst_case`] at a partial offered load: each node injects with
/// probability `load` (seeded). An idle epoch (`load = 0`, nothing
/// injected) is legal and reports a zero drop rate.
pub fn worst_case_at_load(
    nodes: u32,
    multiplicity: u32,
    pattern: Pattern,
    seed: u64,
    load: f64,
) -> DropResult {
    worst_case_impl(nodes, multiplicity, pattern, seed, Wiring::Randomized, load)
}

fn worst_case_impl(
    nodes: u32,
    multiplicity: u32,
    pattern: Pattern,
    seed: u64,
    wiring: Wiring,
    load: f64,
) -> DropResult {
    let topo = MultiButterfly::with_wiring(nodes, multiplicity, seed, wiring);
    let assignment = Assignment::build(pattern, nodes, seed);
    let mut rng = StreamRng::named(seed, "droptool", 0);

    // Current location of each live packet: (switch index, destination).
    // At partial load each node flips a (seeded) injection coin; the
    // full-load path draws nothing extra, so it stays bit-identical to
    // the pre-load-knob tool.
    let mut live: Vec<(u32, NodeId)> = Vec::with_capacity(nodes as usize);
    for n in 0..nodes {
        if load < 1.0 {
            let inject = load > 0.0 && rng.gen_bool(load.clamp(0.0, 1.0));
            if !inject {
                continue;
            }
        }
        let dst = assignment.destination(NodeId(n), &mut rng, nodes);
        live.push((topo.ingress_switch(NodeId(n)), dst));
    }
    let injected = live.len() as u64;

    let m = multiplicity as usize;
    let width = topo.switches_per_stage() as usize;
    // Claim counters per (switch, dir) for the current stage.
    let mut claims = vec![0u8; width * 2];

    for stage in 0..topo.stages() {
        claims.iter_mut().for_each(|c| *c = 0);
        // Shuffle so survival under contention is unbiased.
        rng.shuffle(&mut live);
        let mut next: Vec<(u32, NodeId)> = Vec::with_capacity(live.len());
        for &(switch, dst) in &live {
            let dir = topo.direction(dst, stage);
            let slot = &mut claims[switch as usize * 2 + dir as usize];
            if (*slot as usize) >= m {
                continue; // dropped
            }
            let path = u32::from(*slot);
            *slot += 1;
            if stage + 1 == topo.stages() {
                next.push((u32::MAX, dst)); // delivered marker
            } else {
                // Inner stages always have targets by construction; a miss
                // would be a wiring bug, so count the packet as dropped
                // rather than aborting the whole analysis.
                let Some(targets) = topo.next_targets(stage, switch, dir) else {
                    debug_assert!(false, "inner stage {stage} has no targets");
                    continue;
                };
                next.push((targets[path as usize].switch, dst));
            }
        }
        live = next;
    }

    let survived = live.len() as u64;
    DropResult {
        injected,
        survived,
        // An idle epoch (nothing injected) drops nothing — guard the
        // 0/0 that would otherwise poison downstream aggregation with
        // NaN.
        drop_rate: if injected == 0 {
            0.0
        } else {
            1.0 - survived as f64 / injected as f64
        },
    }
}

/// Finds the smallest multiplicity achieving `target_drop` (e.g. 0.01)
/// under the worst of the given patterns, averaged over `trials` seeds.
pub fn required_multiplicity(
    nodes: u32,
    patterns: &[Pattern],
    target_drop: f64,
    trials: u32,
    seed: u64,
) -> u32 {
    for m in 1..=8 {
        let mut worst: f64 = 0.0;
        for &p in patterns {
            let mut acc = 0.0;
            for t in 0..trials {
                acc += worst_case(nodes, m, p, seed + u64::from(t)).drop_rate;
            }
            worst = worst.max(acc / f64::from(trials));
        }
        if worst < target_drop {
            return m;
        }
    }
    9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_multiplicity_drops_less() {
        let mut last = 1.1;
        for m in 1..=5 {
            let r = worst_case(1_024, m, Pattern::RandomPermutation, 7);
            // Strictly decreasing until drops bottom out at zero.
            assert!(
                r.drop_rate < last || (last == 0.0 && r.drop_rate == 0.0),
                "m={m}: {} !< {last}",
                r.drop_rate
            );
            last = r.drop_rate;
        }
    }

    #[test]
    fn m4_is_low_drop_at_1k() {
        // The paper's worst-case tool concludes multiplicity 4 suffices at
        // 1,024 nodes (a few percent even in the simultaneous-burst worst
        // case; <1% in steady state).
        let r = worst_case(1_024, 4, Pattern::Transpose, 3);
        assert!(r.drop_rate < 0.08, "{}", r.drop_rate);
        let r1 = worst_case(1_024, 1, Pattern::Transpose, 3);
        assert!(
            r1.drop_rate > 0.4,
            "m=1 must be catastrophic: {}",
            r1.drop_rate
        );
    }

    #[test]
    fn permutation_conservation() {
        // With a permutation pattern nothing can exceed port capacity at
        // the last stage, so survivors equal injected minus drops and all
        // delivered markers are unique destinations.
        let r = worst_case(256, 5, Pattern::RandomPermutation, 1);
        assert!(r.survived <= r.injected);
        assert!(r.drop_rate >= 0.0 && r.drop_rate <= 1.0);
    }

    #[test]
    fn required_multiplicity_is_monotone_in_scale() {
        let small = required_multiplicity(256, &[Pattern::RandomPermutation], 0.05, 2, 11);
        let large = required_multiplicity(8_192, &[Pattern::RandomPermutation], 0.05, 2, 11);
        assert!(small <= large, "{small} > {large}");
        assert!((2..=6).contains(&small));
    }

    #[test]
    fn zero_offered_load_reports_zero_drop_rate() {
        // Regression: an idle epoch used to compute 1.0 - 0/0 = NaN.
        let r = worst_case_at_load(256, 4, Pattern::RandomPermutation, 9, 0.0);
        assert_eq!(r.injected, 0);
        assert_eq!(r.survived, 0);
        assert!(r.drop_rate == 0.0, "idle epoch must not be NaN");
        assert!(r.drop_rate.is_finite());
    }

    #[test]
    fn partial_load_drops_less_than_full_burst() {
        let full = worst_case(1_024, 2, Pattern::Transpose, 7);
        let half = worst_case_at_load(1_024, 2, Pattern::Transpose, 7, 0.5);
        assert!(half.injected < full.injected);
        assert!(half.injected > 0);
        assert!(
            half.drop_rate < full.drop_rate,
            "half {} vs full {}",
            half.drop_rate,
            full.drop_rate
        );
        // Full load through the load knob is bit-identical to the
        // original tool (no extra RNG draws).
        let full2 = worst_case_at_load(1_024, 2, Pattern::Transpose, 7, 1.0);
        assert_eq!(full, full2);
    }

    #[test]
    fn hotspot_drops_heavily_no_matter_what() {
        // All-to-one cannot fit through one egress: drop rate ~ 1 - m*2/N.
        let r = worst_case(256, 4, Pattern::Hotspot, 5);
        assert!(r.drop_rate > 0.9, "{}", r.drop_rate);
    }
}

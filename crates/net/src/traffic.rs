//! Synthetic traffic patterns (paper Sec. V-A).
//!
//! Patterns assign a destination to each transmitted packet. For the
//! pair-based patterns the pairing is fixed per run (drawn from the seeded
//! RNG) so that the same transmitter/receiver pairs are applied to all
//! networks, exactly as the paper does for group_permutation and
//! ping_pong2.

use baldur_sim::rng::StreamRng;
use baldur_topo::dragonfly::Dragonfly;
use baldur_topo::graph::NodeId;
use serde::{Deserialize, Serialize};

/// A synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Nodes paired by a uniformly random permutation.
    RandomPermutation,
    /// Bit-transpose of the binary address (upper/lower halves swapped).
    Transpose,
    /// Random pairing of one half of the machine with the other half.
    Bisection,
    /// Dragonfly groups paired randomly; each node sends to a random node
    /// of the partner group (pairs then reused on every network).
    GroupPermutation,
    /// Every node sends to one destination node.
    Hotspot,
    /// Uniform random destination per packet (not in the paper's list;
    /// kept for calibration).
    UniformRandom,
    /// Overload storm: `fanin` senders converge on one victim node
    /// (k-to-1 incast); every other node idles. The victim and sender
    /// set are drawn from the seeded stream (see
    /// [`storm_senders`]).
    Incast {
        /// Concurrent senders converging on the victim (must be in
        /// `1..nodes`).
        fanin: u32,
    },
    /// Overload storm: skewed hotspot — every node sends, with half of
    /// all packets aimed at one hot node and the rest uniform — under
    /// bursty on/off arrivals (the burst schedule lives in the driver).
    Hotcast,
}

impl Pattern {
    /// All of the paper's open-loop patterns, in Figure 6/7 order.
    pub const PAPER_OPEN_LOOP: [Pattern; 5] = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
        Pattern::GroupPermutation,
        Pattern::Hotspot,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::RandomPermutation => "random_permutation",
            Pattern::Transpose => "transpose",
            Pattern::Bisection => "bisection",
            Pattern::GroupPermutation => "group_permutation",
            Pattern::Hotspot => "hotspot",
            Pattern::UniformRandom => "uniform_random",
            Pattern::Incast { .. } => "incast",
            Pattern::Hotcast => "hotcast",
        }
    }

    /// The RNG stream tag for this pattern. The first six values must
    /// stay equal to the historical `pattern as u64` discriminants so
    /// that seeded assignments (and every golden derived from them)
    /// remain byte-identical.
    fn stream_tag(&self) -> u64 {
        match self {
            Pattern::RandomPermutation => 0,
            Pattern::Transpose => 1,
            Pattern::Bisection => 2,
            Pattern::GroupPermutation => 3,
            Pattern::Hotspot => 4,
            Pattern::UniformRandom => 5,
            Pattern::Incast { .. } => 6,
            Pattern::Hotcast => 7,
        }
    }
}

/// A concrete destination assignment for `nodes` endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Assignment {
    /// Fixed partner per source.
    Pairs(Vec<u32>),
    /// Fresh uniform destination per packet.
    Uniform,
    /// Skewed per-packet destinations: `hot_pct` percent of packets go
    /// to the `hot` node, the rest pick a uniform non-self destination.
    Skewed {
        /// The hot destination node.
        hot: u32,
        /// Percent of packets (0..=100) aimed at `hot`.
        hot_pct: u32,
    },
}

impl Assignment {
    /// Builds the assignment for `pattern` over `nodes` endpoints.
    ///
    /// `group_nodes` is the dragonfly group size used by
    /// [`Pattern::GroupPermutation`] (the paper constructs the pairs on
    /// dragonfly and reuses them elsewhere); pass the paper's 1K-scale
    /// dragonfly by default.
    ///
    /// # Panics
    ///
    /// Panics on the configurations [`Assignment::try_build`] rejects.
    pub fn build(pattern: Pattern, nodes: u32, seed: u64) -> Assignment {
        match Self::try_build(pattern, nodes, seed) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Assignment::build`] for configuration
    /// validated at the bin/experiment layer: degenerate setups come
    /// back as usage-error strings instead of panics.
    pub fn try_build(pattern: Pattern, nodes: u32, seed: u64) -> Result<Assignment, String> {
        if nodes < 2 {
            return Err("need at least two nodes".into());
        }
        let mut rng = StreamRng::named(seed, "traffic", pattern.stream_tag());
        Ok(match pattern {
            Pattern::RandomPermutation => Assignment::Pairs(derangement(&mut rng, nodes)),
            Pattern::Transpose => {
                // The paper swaps the upper and lower address halves; for
                // an odd number of address bits this generalizes to the
                // standard rotate-by-floor(bits/2), which coincides with
                // the paper's definition whenever bits is even.
                if !nodes.is_power_of_two() {
                    return Err("transpose needs a power-of-two node count".into());
                }
                let bits = nodes.trailing_zeros();
                let lo = bits / 2;
                let mask = (1u32 << lo) - 1;
                Assignment::Pairs(
                    (0..nodes)
                        .map(|a| ((a & mask) << (bits - lo)) | (a >> lo))
                        .collect(),
                )
            }
            Pattern::Bisection => {
                let half = nodes / 2;
                let perm = rng.permutation(half as usize);
                let mut pairs = vec![0u32; nodes as usize];
                for (lo, &hi_off) in perm.iter().enumerate() {
                    let lo = lo as u32;
                    let hi = half + hi_off as u32;
                    pairs[lo as usize] = hi;
                    pairs[hi as usize] = lo;
                }
                Assignment::Pairs(pairs)
            }
            Pattern::GroupPermutation => {
                let df = Dragonfly::at_least(u64::from(nodes));
                let group_nodes = df.p * df.a;
                let groups = nodes / group_nodes;
                // Pair the groups with a derangement, then each node picks
                // a random node in the partner group.
                let gperm = derangement(&mut rng, groups.max(2));
                let pairs = (0..nodes)
                    .map(|n| {
                        let g = (n / group_nodes).min(groups - 1);
                        let pg = gperm[g as usize] % groups;
                        let target = pg * group_nodes + rng.gen_range(0..group_nodes);
                        if target == n {
                            (target + 1) % nodes
                        } else {
                            target
                        }
                    })
                    .collect();
                Assignment::Pairs(pairs)
            }
            Pattern::Hotspot => {
                let target = rng.gen_range(0..nodes);
                Assignment::Pairs(
                    (0..nodes)
                        .map(|n| {
                            if n == target {
                                (target + 1) % nodes
                            } else {
                                target
                            }
                        })
                        .collect(),
                )
            }
            Pattern::UniformRandom => Assignment::Uniform,
            Pattern::Incast { fanin } => {
                if fanin == 0 {
                    return Err("incast fanin must be at least 1".into());
                }
                if fanin > nodes - 1 {
                    return Err(format!(
                        "incast fanin {fanin} exceeds the {} possible senders of a \
                         {nodes}-node network",
                        nodes - 1
                    ));
                }
                let (victim, senders) = incast_parts(nodes, fanin, &mut rng);
                // Every sender aims at the victim; idle nodes get the
                // victim too (harmless — the driver never wakes them),
                // and the victim itself points at its neighbor so the
                // table stays self-send free.
                let mut pairs = vec![victim; nodes as usize];
                pairs[victim as usize] = (victim + 1) % nodes;
                debug_assert!(senders.iter().all(|&s| s != victim));
                Assignment::Pairs(pairs)
            }
            Pattern::Hotcast => Assignment::Skewed {
                hot: rng.gen_range(0..nodes),
                hot_pct: 50,
            },
        })
    }

    /// The destination for the next packet from `src`.
    ///
    /// Degenerate inputs are absorbed rather than looping or panicking:
    /// an out-of-range `src` under [`Assignment::Pairs`] falls back to a
    /// uniform draw, and with fewer than two nodes the only possible
    /// destination is `src` itself.
    pub fn destination(&self, src: NodeId, rng: &mut StreamRng, nodes: u32) -> NodeId {
        match self {
            Assignment::Pairs(p) => match p.get(src.0 as usize) {
                Some(&d) => NodeId(d),
                None => uniform_dest(src, rng, nodes),
            },
            Assignment::Uniform => uniform_dest(src, rng, nodes),
            Assignment::Skewed { hot, hot_pct } => {
                if src.0 != *hot && rng.gen_range(0..100) < *hot_pct {
                    NodeId(*hot)
                } else {
                    uniform_dest(src, rng, nodes)
                }
            }
        }
    }
}

/// Uniform non-self destination; with fewer than two nodes the only
/// destination that exists is `src` itself, which the caller observes
/// as a (documented) self-send rather than an infinite loop.
fn uniform_dest(src: NodeId, rng: &mut StreamRng, nodes: u32) -> NodeId {
    if nodes < 2 {
        return src;
    }
    loop {
        let d = rng.gen_range(0..nodes);
        if d != src.0 {
            return NodeId(d);
        }
    }
}

/// The active sender set for storm patterns: `Some(senders)` when only
/// a subset of nodes transmits ([`Pattern::Incast`]), `None` when every
/// node is active. Uses the same seeded stream as
/// [`Assignment::try_build`], so the sender set always matches the
/// built assignment.
pub fn storm_senders(pattern: Pattern, nodes: u32, seed: u64) -> Option<Vec<u32>> {
    match pattern {
        Pattern::Incast { fanin } if fanin >= 1 && nodes >= 2 && fanin <= nodes - 1 => {
            let mut rng = StreamRng::named(seed, "traffic", pattern.stream_tag());
            Some(incast_parts(nodes, fanin, &mut rng).1)
        }
        _ => None,
    }
}

/// Seeded victim plus `fanin` distinct senders (the ring successors of
/// the victim — a deterministic k-subset that can never include the
/// victim itself).
fn incast_parts(nodes: u32, fanin: u32, rng: &mut StreamRng) -> (u32, Vec<u32>) {
    let victim = rng.gen_range(0..nodes);
    let senders = (1..=fanin).map(|k| (victim + k) % nodes).collect();
    (victim, senders)
}

/// A random permutation with no fixed points (nobody sends to themselves).
fn derangement(rng: &mut StreamRng, n: u32) -> Vec<u32> {
    loop {
        let p = rng.permutation(n as usize);
        if p.iter().enumerate().all(|(i, &x)| i != x) {
            return p.into_iter().map(|x| x as u32).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(pattern: Pattern, nodes: u32) -> Vec<u32> {
        match Assignment::build(pattern, nodes, 11) {
            Assignment::Pairs(p) => p,
            Assignment::Uniform | Assignment::Skewed { .. } => panic!("expected pairs"),
        }
    }

    #[test]
    fn random_permutation_is_a_derangement() {
        let p = pairs(Pattern::RandomPermutation, 256);
        let mut seen = vec![false; 256];
        for (i, &d) in p.iter().enumerate() {
            assert_ne!(i as u32, d, "self-send");
            assert!(!seen[d as usize], "duplicate destination");
            seen[d as usize] = true;
        }
    }

    #[test]
    fn transpose_swaps_address_halves() {
        let p = pairs(Pattern::Transpose, 1_024);
        // Node 0b10000_00001 -> 0b00001_10000.
        assert_eq!(p[0b10000_00001], 0b00001_10000);
        // Transpose is an involution.
        for (i, &d) in p.iter().enumerate() {
            assert_eq!(p[d as usize], i as u32);
        }
    }

    #[test]
    fn bisection_pairs_across_halves() {
        let p = pairs(Pattern::Bisection, 128);
        for (i, &d) in p.iter().enumerate() {
            let i = i as u32;
            assert_ne!(i < 64, d < 64, "pair must straddle the bisection");
            assert_eq!(p[d as usize], i, "pairing must be symmetric");
        }
    }

    #[test]
    fn hotspot_targets_one_node() {
        let p = pairs(Pattern::Hotspot, 64);
        let mut dests: Vec<u32> = p.clone();
        dests.sort_unstable();
        dests.dedup();
        assert!(
            dests.len() <= 2,
            "hotspot has one destination (plus the target's own)"
        );
    }

    #[test]
    fn group_permutation_leaves_the_group() {
        let nodes = 1_056; // paper-scale dragonfly
        let p = pairs(Pattern::GroupPermutation, nodes);
        let group = 32;
        let mut cross = 0;
        for (i, &d) in p.iter().enumerate() {
            if (i as u32) / group != d / group {
                cross += 1;
            }
        }
        assert!(cross as f64 > 0.95 * nodes as f64, "{cross} cross-group");
    }

    #[test]
    fn uniform_never_self_sends() {
        let a = Assignment::build(Pattern::UniformRandom, 16, 3);
        let mut rng = StreamRng::named(5, "t", 0);
        for _ in 0..500 {
            let d = a.destination(NodeId(7), &mut rng, 16);
            assert_ne!(d.0, 7);
        }
    }

    #[test]
    fn assignments_are_deterministic_per_seed() {
        let a = pairs(Pattern::RandomPermutation, 64);
        let b = match Assignment::build(Pattern::RandomPermutation, 64, 11) {
            Assignment::Pairs(p) => p,
            _ => unreachable!(),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_configs_are_usage_errors_not_panics() {
        assert!(Assignment::try_build(Pattern::UniformRandom, 1, 0).is_err());
        assert!(Assignment::try_build(Pattern::Transpose, 48, 0).is_err());
        assert!(Assignment::try_build(Pattern::Incast { fanin: 0 }, 16, 0).is_err());
        assert!(Assignment::try_build(Pattern::Incast { fanin: 16 }, 16, 0).is_err());
        assert!(Assignment::try_build(Pattern::Incast { fanin: 15 }, 16, 0).is_ok());
    }

    #[test]
    fn incast_senders_converge_on_one_victim() {
        let pattern = Pattern::Incast { fanin: 7 };
        let senders = storm_senders(pattern, 64, 11).expect("incast restricts senders");
        assert_eq!(senders.len(), 7);
        let p = pairs(pattern, 64);
        let victim = p[senders[0] as usize];
        for &s in &senders {
            assert_ne!(s, victim, "victim never sends to itself");
            assert_eq!(p[s as usize], victim, "all senders hit the victim");
        }
        assert_ne!(p[victim as usize], victim, "no self-send in the table");
    }

    #[test]
    fn storm_senders_is_none_for_all_active_patterns() {
        assert!(storm_senders(Pattern::Hotcast, 64, 11).is_none());
        assert!(storm_senders(Pattern::UniformRandom, 64, 11).is_none());
        assert!(storm_senders(Pattern::Hotspot, 64, 11).is_none());
    }

    #[test]
    fn hotcast_skews_half_the_traffic_to_the_hot_node() {
        let a = Assignment::build(Pattern::Hotcast, 64, 11);
        let hot = match a {
            Assignment::Skewed { hot, hot_pct } => {
                assert_eq!(hot_pct, 50);
                hot
            }
            _ => panic!("hotcast builds a skewed assignment"),
        };
        let mut rng = StreamRng::named(5, "t", 0);
        let src = NodeId((hot + 1) % 64);
        let mut hits = 0u32;
        for _ in 0..2_000 {
            let d = a.destination(src, &mut rng, 64);
            assert_ne!(d, src, "skewed draws never self-send");
            if d.0 == hot {
                hits += 1;
            }
        }
        // hot_pct=50 plus the uniform arm's 1-in-63 chance of landing
        // on the hot node anyway.
        assert!((800..=1_400).contains(&hits), "{hits} hot hits");
        // The hot node itself never targets itself.
        for _ in 0..200 {
            assert_ne!(a.destination(NodeId(hot), &mut rng, 64).0, hot);
        }
    }

    #[test]
    fn destination_absorbs_degenerate_inputs() {
        let mut rng = StreamRng::named(5, "t", 0);
        // Out-of-range source under Pairs falls back to a uniform draw.
        let a = Assignment::Pairs(vec![1, 0]);
        let d = a.destination(NodeId(9), &mut rng, 2);
        assert!(d.0 < 2);
        // A one-node world can only self-send; it must not hang.
        assert_eq!(
            Assignment::Uniform.destination(NodeId(0), &mut rng, 1),
            NodeId(0)
        );
    }
}

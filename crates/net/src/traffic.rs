//! Synthetic traffic patterns (paper Sec. V-A).
//!
//! Patterns assign a destination to each transmitted packet. For the
//! pair-based patterns the pairing is fixed per run (drawn from the seeded
//! RNG) so that the same transmitter/receiver pairs are applied to all
//! networks, exactly as the paper does for group_permutation and
//! ping_pong2.

use baldur_sim::rng::StreamRng;
use baldur_topo::dragonfly::Dragonfly;
use baldur_topo::graph::NodeId;
use serde::{Deserialize, Serialize};

/// A synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Nodes paired by a uniformly random permutation.
    RandomPermutation,
    /// Bit-transpose of the binary address (upper/lower halves swapped).
    Transpose,
    /// Random pairing of one half of the machine with the other half.
    Bisection,
    /// Dragonfly groups paired randomly; each node sends to a random node
    /// of the partner group (pairs then reused on every network).
    GroupPermutation,
    /// Every node sends to one destination node.
    Hotspot,
    /// Uniform random destination per packet (not in the paper's list;
    /// kept for calibration).
    UniformRandom,
}

impl Pattern {
    /// All of the paper's open-loop patterns, in Figure 6/7 order.
    pub const PAPER_OPEN_LOOP: [Pattern; 5] = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
        Pattern::GroupPermutation,
        Pattern::Hotspot,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::RandomPermutation => "random_permutation",
            Pattern::Transpose => "transpose",
            Pattern::Bisection => "bisection",
            Pattern::GroupPermutation => "group_permutation",
            Pattern::Hotspot => "hotspot",
            Pattern::UniformRandom => "uniform_random",
        }
    }
}

/// A concrete destination assignment for `nodes` endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Assignment {
    /// Fixed partner per source.
    Pairs(Vec<u32>),
    /// Fresh uniform destination per packet.
    Uniform,
}

impl Assignment {
    /// Builds the assignment for `pattern` over `nodes` endpoints.
    ///
    /// `group_nodes` is the dragonfly group size used by
    /// [`Pattern::GroupPermutation`] (the paper constructs the pairs on
    /// dragonfly and reuses them elsewhere); pass the paper's 1K-scale
    /// dragonfly by default.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, or for [`Pattern::Transpose`] if `nodes` is
    /// not an even power of two.
    pub fn build(pattern: Pattern, nodes: u32, seed: u64) -> Assignment {
        assert!(nodes >= 2, "need at least two nodes");
        let mut rng = StreamRng::named(seed, "traffic", pattern as u64);
        match pattern {
            Pattern::RandomPermutation => Assignment::Pairs(derangement(&mut rng, nodes)),
            Pattern::Transpose => {
                // The paper swaps the upper and lower address halves; for
                // an odd number of address bits this generalizes to the
                // standard rotate-by-floor(bits/2), which coincides with
                // the paper's definition whenever bits is even.
                assert!(
                    nodes.is_power_of_two(),
                    "transpose needs a power-of-two node count"
                );
                let bits = nodes.trailing_zeros();
                let lo = bits / 2;
                let mask = (1u32 << lo) - 1;
                Assignment::Pairs(
                    (0..nodes)
                        .map(|a| ((a & mask) << (bits - lo)) | (a >> lo))
                        .collect(),
                )
            }
            Pattern::Bisection => {
                let half = nodes / 2;
                let perm = rng.permutation(half as usize);
                let mut pairs = vec![0u32; nodes as usize];
                for (lo, &hi_off) in perm.iter().enumerate() {
                    let lo = lo as u32;
                    let hi = half + hi_off as u32;
                    pairs[lo as usize] = hi;
                    pairs[hi as usize] = lo;
                }
                Assignment::Pairs(pairs)
            }
            Pattern::GroupPermutation => {
                let df = Dragonfly::at_least(u64::from(nodes));
                let group_nodes = df.p * df.a;
                let groups = nodes / group_nodes;
                // Pair the groups with a derangement, then each node picks
                // a random node in the partner group.
                let gperm = derangement(&mut rng, groups.max(2));
                let pairs = (0..nodes)
                    .map(|n| {
                        let g = (n / group_nodes).min(groups - 1);
                        let pg = gperm[g as usize] % groups;
                        let target = pg * group_nodes + rng.gen_range(0..group_nodes);
                        if target == n {
                            (target + 1) % nodes
                        } else {
                            target
                        }
                    })
                    .collect();
                Assignment::Pairs(pairs)
            }
            Pattern::Hotspot => {
                let target = rng.gen_range(0..nodes);
                Assignment::Pairs(
                    (0..nodes)
                        .map(|n| {
                            if n == target {
                                (target + 1) % nodes
                            } else {
                                target
                            }
                        })
                        .collect(),
                )
            }
            Pattern::UniformRandom => Assignment::Uniform,
        }
    }

    /// The destination for the next packet from `src`.
    pub fn destination(&self, src: NodeId, rng: &mut StreamRng, nodes: u32) -> NodeId {
        match self {
            Assignment::Pairs(p) => NodeId(p[src.0 as usize]),
            Assignment::Uniform => loop {
                let d = rng.gen_range(0..nodes);
                if d != src.0 {
                    return NodeId(d);
                }
            },
        }
    }
}

/// A random permutation with no fixed points (nobody sends to themselves).
fn derangement(rng: &mut StreamRng, n: u32) -> Vec<u32> {
    loop {
        let p = rng.permutation(n as usize);
        if p.iter().enumerate().all(|(i, &x)| i != x) {
            return p.into_iter().map(|x| x as u32).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(pattern: Pattern, nodes: u32) -> Vec<u32> {
        match Assignment::build(pattern, nodes, 11) {
            Assignment::Pairs(p) => p,
            Assignment::Uniform => panic!("expected pairs"),
        }
    }

    #[test]
    fn random_permutation_is_a_derangement() {
        let p = pairs(Pattern::RandomPermutation, 256);
        let mut seen = vec![false; 256];
        for (i, &d) in p.iter().enumerate() {
            assert_ne!(i as u32, d, "self-send");
            assert!(!seen[d as usize], "duplicate destination");
            seen[d as usize] = true;
        }
    }

    #[test]
    fn transpose_swaps_address_halves() {
        let p = pairs(Pattern::Transpose, 1_024);
        // Node 0b10000_00001 -> 0b00001_10000.
        assert_eq!(p[0b10000_00001], 0b00001_10000);
        // Transpose is an involution.
        for (i, &d) in p.iter().enumerate() {
            assert_eq!(p[d as usize], i as u32);
        }
    }

    #[test]
    fn bisection_pairs_across_halves() {
        let p = pairs(Pattern::Bisection, 128);
        for (i, &d) in p.iter().enumerate() {
            let i = i as u32;
            assert_ne!(i < 64, d < 64, "pair must straddle the bisection");
            assert_eq!(p[d as usize], i, "pairing must be symmetric");
        }
    }

    #[test]
    fn hotspot_targets_one_node() {
        let p = pairs(Pattern::Hotspot, 64);
        let mut dests: Vec<u32> = p.clone();
        dests.sort_unstable();
        dests.dedup();
        assert!(
            dests.len() <= 2,
            "hotspot has one destination (plus the target's own)"
        );
    }

    #[test]
    fn group_permutation_leaves_the_group() {
        let nodes = 1_056; // paper-scale dragonfly
        let p = pairs(Pattern::GroupPermutation, nodes);
        let group = 32;
        let mut cross = 0;
        for (i, &d) in p.iter().enumerate() {
            if (i as u32) / group != d / group {
                cross += 1;
            }
        }
        assert!(cross as f64 > 0.95 * nodes as f64, "{cross} cross-group");
    }

    #[test]
    fn uniform_never_self_sends() {
        let a = Assignment::build(Pattern::UniformRandom, 16, 3);
        let mut rng = StreamRng::named(5, "t", 0);
        for _ in 0..500 {
            let d = a.destination(NodeId(7), &mut rng, 16);
            assert_ne!(d.0, 7);
        }
    }

    #[test]
    fn assignments_are_deterministic_per_seed() {
        let a = pairs(Pattern::RandomPermutation, 64);
        let b = match Assignment::build(Pattern::RandomPermutation, 64, 11) {
            Assignment::Pairs(p) => p,
            _ => unreachable!(),
        };
        assert_eq!(a, b);
    }
}

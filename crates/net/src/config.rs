//! Simulation parameters (paper Table VI and Sec. V-A).

use baldur_sim::Duration;
use baldur_topo::multibutterfly::Wiring;
use baldur_topo::staged::StagedKind;
use serde::{Deserialize, Serialize};

/// Link and packet parameters shared by every network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Data packet size in bytes (paper: 512).
    pub packet_bytes: u32,
    /// ACK packet size in bytes (Baldur only).
    pub ack_bytes: u32,
    /// Link data rate in Gbps (paper: 25, the max per-lane rate of
    /// then-current standards).
    pub gbps: f64,
}

impl LinkParams {
    /// The paper's configuration.
    pub fn paper() -> Self {
        LinkParams {
            packet_bytes: 512,
            ack_bytes: 64,
            gbps: 25.0,
        }
    }

    /// Serialization time of a data packet.
    pub fn packet_time(&self) -> Duration {
        Duration::serialization(u64::from(self.packet_bytes), self.gbps)
    }

    /// Serialization time of an ACK.
    pub fn ack_time(&self) -> Duration {
        Duration::serialization(u64::from(self.ack_bytes), self.gbps)
    }

    /// Mean inter-arrival time for an open-loop source at `load`
    /// (paper Eq. 1): `packet_size / (input_load × link_data_rate)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < load <= 1`.
    pub fn mean_interarrival_ps(&self, load: f64) -> f64 {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        self.packet_time().as_ps() as f64 / load
    }

    /// [`Self::mean_interarrival_ps`] without the unit-load ceiling, for
    /// deliberately super-saturating overload sources (offered load past
    /// 1× is the admission-control stress fixture, not a paper operating
    /// point).
    ///
    /// # Panics
    ///
    /// Panics unless `load > 0`.
    pub fn overload_interarrival_ps(&self, load: f64) -> f64 {
        assert!(load > 0.0, "load must be positive");
        self.packet_time().as_ps() as f64 / load
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::paper()
    }
}

/// Baldur-specific parameters (Sec. IV-E and Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaldurParams {
    /// Path multiplicity (paper: 4 at 1K nodes, 5 at ≥ 16K).
    pub multiplicity: u32,
    /// Per-stage switch latency in picoseconds (Table V; 1.5 ns at m=4).
    pub switch_latency_ps: u64,
    /// Node-to-network (and network-to-node) fiber delay (Table VI: 100 ns).
    pub link_delay_ps: u64,
    /// Inter-stage hop delay (interposer waveguides + fiber array units;
    /// small, same cabinet).
    pub stage_delay_ps: u64,
    /// Retransmission timeout before the first backoff doubling.
    pub base_timeout_ps: u64,
    /// Maximum binary-exponential-backoff exponent.
    pub max_backoff_exp: u32,
    /// Retry budget: retransmissions allowed after the first try before
    /// the packet is abandoned (its terminal state becomes
    /// `DeliveryOutcome::GaveUp` and the abandonment is counted in the
    /// report). The paper's backoff description bounds recovery time, not
    /// attempts; 16 retries at the capped timeout is past any transient
    /// the fabric recovers from, so giving up then is a fault signal, not
    /// a lost packet under congestion.
    pub max_retries: u32,
    /// Seeded retry-timeout jitter as a percentage of the backoff base
    /// (0 = off = paper-faithful pure BEB; clamped below 100 so the
    /// schedule stays monotone in the attempt number). Desynchronizes
    /// sources whose packets died in the same fault at the same instant.
    pub retry_jitter_pct: u32,
    /// Inter-stage wiring (randomized per the paper; dilated butterfly is
    /// the no-expansion ablation baseline).
    pub wiring: Wiring,
    /// Binary exponential backoff on retransmissions (paper Sec. IV-E);
    /// disabling it is an ablation.
    pub backoff: bool,
    /// The staged topology family (multi-butterfly per the paper; Omega
    /// for the isomorphism comparison). When [`Self::wiring`] is
    /// [`Wiring::Dilated`] a multi-butterfly degrades to the structured
    /// dilated butterfly.
    pub topology: StagedTopology,
    /// Extension (off by default = paper-faithful): rotate the starting
    /// path index of the sequential arbitration scan per retransmission
    /// attempt, so retries diversify across the m paths and route around
    /// dead switches (the repair story of Sec. IV-F made transparent).
    pub path_rotation: bool,
    /// Extension (0 = off = paper-faithful): the paper's "traffic
    /// combining" future-work idea applied to ACKs — a receiver batches
    /// the ACKs it owes each source and flushes one combined ACK after
    /// this window (ps). Must stay well below the retransmission timeout.
    pub ack_coalesce_ps: u64,
    /// Overload control (0 = unbounded = paper-faithful): cap on the
    /// packets a source NIC queues awaiting first injection. Arrivals
    /// beyond the cap are refused at admission and counted as
    /// `ingress_drops` — an explicit drop policy instead of silent
    /// unbounded queue growth under storm loads.
    pub ingress_cap: u32,
    /// Overload control (0 = off): source-side admission pacing — the
    /// NIC defers *first* injections while this many of its packets are
    /// already in the network awaiting their first ACK. Retransmissions
    /// bypass the window (they already hold buffer slots).
    pub pacing_window: u32,
    /// Overload control (0 = off): delivery deadline as a packet age
    /// budget, ps. At a retransmission timeout a packet older than this
    /// expires (`DeliveryOutcome::Expired`) instead of retrying — stale
    /// retries only amplify congestion past saturation.
    pub deadline_ps: u64,
}

impl BaldurParams {
    /// The paper's 1,024-node configuration (multiplicity 4).
    pub fn paper_1k() -> Self {
        BaldurParams {
            multiplicity: 4,
            switch_latency_ps: 1_500,
            link_delay_ps: 100_000,
            stage_delay_ps: 500,
            // Unloaded RTT is ~2 × (100 ns + stages × ~2 ns) + ack; 1 µs
            // leaves margin for port-occupancy wait without inflating
            // retransmission latency.
            base_timeout_ps: 1_000_000,
            max_backoff_exp: 8,
            max_retries: 16,
            retry_jitter_pct: 0,
            wiring: Wiring::Randomized,
            topology: StagedTopology::MultiButterfly,
            backoff: true,
            path_rotation: false,
            ack_coalesce_ps: 0,
            ingress_cap: 0,
            pacing_window: 0,
            deadline_ps: 0,
        }
    }

    /// The paper's recommended multiplicity for a network of `nodes`
    /// servers: 4 up to a few thousand nodes, 5 from 16K upward
    /// (Sec. IV-E / Fig. 8 note).
    pub fn multiplicity_for(nodes: u64) -> u32 {
        if nodes >= 16_384 {
            5
        } else if nodes >= 64 {
            4
        } else {
            3
        }
    }

    /// The retransmission timeout (ps) armed for `attempt` (1-based)
    /// when the transmitting NIC carries `backoff_exp` extra backoff:
    /// binary exponential backoff doubling per attempt, capped at
    /// [`Self::max_backoff_exp`] doublings of [`Self::base_timeout_ps`].
    pub fn backoff_timeout_ps(&self, attempt: u32, backoff_exp: u32) -> u64 {
        let exp = attempt
            .saturating_sub(1)
            .saturating_add(backoff_exp)
            .min(self.max_backoff_exp);
        self.base_timeout_ps.saturating_mul(1u64 << exp)
    }

    /// Paper configuration scaled to `nodes` servers.
    pub fn paper_for(nodes: u64) -> Self {
        let m = Self::multiplicity_for(nodes);
        let latency = baldur_tl::gate_count::SwitchDesign::new(m).latency_ns();
        BaldurParams {
            multiplicity: m,
            switch_latency_ps: (latency * 1e3) as u64,
            ..Self::paper_1k()
        }
    }
}

impl Default for BaldurParams {
    fn default() -> Self {
        BaldurParams::paper_1k()
    }
}

/// Which staged topology family Baldur runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StagedTopology {
    /// The paper's multi-butterfly (wiring per [`BaldurParams::wiring`]).
    MultiButterfly,
    /// The Omega network (structured; ignores the wiring field).
    Omega,
}

impl BaldurParams {
    /// Resolves the topology + wiring fields into a [`StagedKind`].
    pub fn staged_kind(&self) -> StagedKind {
        match (self.topology, self.wiring) {
            (StagedTopology::Omega, _) => StagedKind::Omega,
            (StagedTopology::MultiButterfly, Wiring::Randomized) => StagedKind::MultiButterfly,
            (StagedTopology::MultiButterfly, Wiring::Dilated) => StagedKind::DilatedButterfly,
        }
    }
}

/// Electrical router parameters (Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterParams {
    /// Port-to-port switch latency in picoseconds (Mellanox SB7700: 90 ns).
    pub switch_latency_ps: u64,
    /// Buffer per port in bytes (paper: 24 KB).
    pub buffer_bytes: u32,
    /// Virtual channels per port (paper: 3).
    pub vcs: u32,
    /// Overload control (0 = unbounded = paper-faithful): cap on the
    /// packets a source NIC queues while waiting for injection credits.
    /// Arrivals beyond the cap are refused at admission and counted as
    /// `ingress_drops` instead of growing the queue without bound.
    pub nic_queue_cap: u32,
    /// Overload control (0 = off = paper-faithful): delivery deadline as
    /// a packet age budget, ps. A NIC-queued packet older than this at
    /// its injection attempt expires (`DeliveryOutcome::Expired`)
    /// instead of being transmitted — under sustained overload the
    /// bounded queues otherwise hoard stale work and spend post-storm
    /// bandwidth delivering packets nobody is waiting for anymore.
    pub deadline_ps: u64,
}

impl RouterParams {
    /// The paper's configuration.
    pub fn paper() -> Self {
        RouterParams {
            switch_latency_ps: 90_000,
            buffer_bytes: 24 * 1024,
            vcs: 3,
            nic_queue_cap: 0,
            deadline_ps: 0,
        }
    }

    /// Packets of `packet_bytes` that fit in one VC's share of the buffer.
    pub fn vc_capacity(&self, packet_bytes: u32) -> u32 {
        (self.buffer_bytes / self.vcs / packet_bytes).max(1)
    }
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packet_takes_163_84_ns() {
        let p = LinkParams::paper();
        assert_eq!(p.packet_time(), Duration::from_ps(163_840));
        assert_eq!(p.ack_time(), Duration::from_ps(20_480));
    }

    #[test]
    fn interarrival_follows_equation_1() {
        let p = LinkParams::paper();
        let mean = p.mean_interarrival_ps(0.7);
        assert!((mean - 163_840.0 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn multiplicity_schedule_matches_paper() {
        assert_eq!(BaldurParams::multiplicity_for(1_024), 4);
        assert_eq!(BaldurParams::multiplicity_for(16_384), 5);
        assert_eq!(BaldurParams::multiplicity_for(1 << 20), 5);
        assert_eq!(BaldurParams::multiplicity_for(32), 3);
    }

    #[test]
    fn backoff_timeout_doubles_then_caps() {
        let p = BaldurParams::paper_1k();
        assert_eq!(p.backoff_timeout_ps(1, 0), p.base_timeout_ps);
        assert_eq!(p.backoff_timeout_ps(2, 0), 2 * p.base_timeout_ps);
        assert_eq!(p.backoff_timeout_ps(3, 1), 8 * p.base_timeout_ps);
        // Capped at max_backoff_exp doublings, however deep the retry.
        let cap = p.base_timeout_ps << p.max_backoff_exp;
        assert_eq!(p.backoff_timeout_ps(40, 7), cap);
        assert_eq!(p.backoff_timeout_ps(u32::MAX, u32::MAX), cap);
    }

    #[test]
    fn vc_capacity_paper() {
        let r = RouterParams::paper();
        assert_eq!(r.vc_capacity(512), 16);
    }

    #[test]
    #[should_panic(expected = "load")]
    fn zero_load_rejected() {
        LinkParams::paper().mean_interarrival_ps(0.0);
    }
}

//! The Baldur all-optical network model (paper Sec. IV-E, V).
//!
//! Bufferless, cut-through, drop-and-retransmit:
//!
//! * every switch output port is modelled by a `busy_until` time; a packet
//!   head arriving at a switch checks the `m` ports of its routing
//!   direction *sequentially* (the paper's arbitration) and claims the
//!   first idle one, else the packet is **dropped**;
//! * sources keep unACKed packets in a retransmission buffer; a timeout
//!   with binary exponential backoff re-injects them; receivers ACK every
//!   delivery (ACKs traverse the network and can themselves be dropped —
//!   the source then retransmits and the receiver de-duplicates);
//! * latency charged per hop: `switch_latency` (Table V, 1.5 ns at m=4)
//!   plus a small same-cabinet stage delay; node↔network fibers add the
//!   Table VI 100 ns each way.

use std::collections::{BTreeMap, VecDeque};

use baldur_sim::rng::StreamRng;
use baldur_sim::{Duration, Model, Scheduler, Simulation, Time};
use baldur_topo::graph::NodeId;
use baldur_topo::staged::Staged;

use crate::config::{BaldurParams, LinkParams};
use crate::driver::Driver;
use crate::faults::{jittered_timeout_ps, FaultKind, FaultPlan, FaultState};
use crate::metrics::{Collector, DeliveryOutcome, LatencyReport, RecoverySpec};
use crate::oracle::{Oracle, OracleConfig, Violation};

/// Index into the packet table.
type PktId = u32;

#[derive(Debug, Clone, Copy)]
struct PacketState {
    src: NodeId,
    dst: NodeId,
    generated_at: Time,
    attempts: u32,
    outcome: DeliveryOutcome,
    acked: bool,
    /// The retransmission-buffer slot was given back (first ACK or retry
    /// exhaustion — whichever comes first). Guards the `outstanding`
    /// decrement so a repair racing a backoff retry (ACK arriving after
    /// the source already gave up, or after a delivered packet's timers
    /// exhausted) cannot release the same slot twice.
    released: bool,
    /// For ACK packets, the data packet being acknowledged.
    acks: Option<PktId>,
}

#[derive(Debug)]
struct Nic {
    tx_busy_until: Time,
    /// ACKs are urgent (they gate the partner's buffer), so they queue
    /// ahead of data.
    ack_queue: VecDeque<PktId>,
    data_queue: VecDeque<PktId>,
    try_scheduled: bool,
    outstanding: u32,
    backoff_exp: u32,
    /// Packets injected and awaiting their first buffer-slot release
    /// (ACK, give-up, or expiry). Source-side admission pacing defers
    /// *first* injections while this reaches
    /// `BaldurParams::pacing_window`; maintained only when pacing is on.
    in_window: u32,
    /// ACK coalescing: per source, data packets awaiting a combined ACK
    /// (the bool marks a pending flush event). Ordered so no iteration
    /// order can leak into results.
    pending_acks: BTreeMap<u32, (Vec<PktId>, bool)>,
}

impl Nic {
    fn new() -> Self {
        Nic {
            tx_busy_until: Time::ZERO,
            ack_queue: VecDeque::new(),
            data_queue: VecDeque::new(),
            try_scheduled: false,
            outstanding: 0,
            backoff_exp: 0,
            in_window: 0,
            pending_acks: BTreeMap::new(),
        }
    }

    fn pop(&mut self) -> Option<PktId> {
        self.ack_queue
            .pop_front()
            .or_else(|| self.data_queue.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.ack_queue.is_empty() && self.data_queue.is_empty()
    }
}

/// Events of the Baldur model.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Driver wakeup for a node.
    Wake(u32),
    /// NIC should try to transmit.
    TryInject(u32),
    /// A packet head arrives at a switch of `stage`.
    Hop {
        /// Packet id.
        pkt: PktId,
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
    },
    /// A packet tail arrives at its destination node.
    Arrive {
        /// Packet id.
        pkt: PktId,
    },
    /// Retransmission timer for a data packet.
    Timeout {
        /// Packet id.
        pkt: PktId,
        /// The attempt this timer was armed for (stale timers no-op).
        attempt: u32,
    },
    /// Coalescing window expired: flush the combined ACK `node` owes
    /// `src`.
    AckFlush {
        /// The receiver holding the pending ACKs.
        node: u32,
        /// The data source being acknowledged.
        src: u32,
    },
    /// Apply fault-plan event `idx` (scheduled at its `at_ps`).
    Fault(u32),
}

/// The Baldur network simulation model.
pub struct BaldurNet {
    topo: Staged,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    active_nodes: u32,
    /// `ports[stage][switch * 2m + dir * m + path]` → busy-until.
    ports: Vec<Vec<Time>>,
    nics: Vec<Nic>,
    packets: Vec<PacketState>,
    metrics: Collector,
    in_flight: u64,
    /// Live fault state (switches, links, lasers, bit-error bursts); all
    /// healthy by default, driven by [`Ev::Fault`] events from `plan`.
    fstate: FaultState,
    /// The fault schedule this run executes (empty by default).
    plan: FaultPlan,
    /// Seed for retry-timeout jitter (the run seed).
    seed: u64,
    /// Coin flips for bit-error bursts; only drawn while a burst is
    /// active, so fault-free runs stay bit-identical.
    fault_rng: StreamRng,
    /// For combined ACK packets: every data packet they acknowledge.
    /// Ordered for the same determinism reason as `pending_acks`.
    ack_refs: BTreeMap<PktId, Vec<PktId>>,
    /// The always-on invariant oracle (release builds included); its
    /// summary rides on the run's report.
    oracle: Oracle,
}

impl BaldurNet {
    /// Builds the model over a topology sized for `active_nodes` servers.
    pub fn new(
        active_nodes: u32,
        params: BaldurParams,
        link: LinkParams,
        driver: Driver,
        seed: u64,
        sample_cap: usize,
    ) -> Self {
        let topo_nodes = active_nodes.next_power_of_two().max(4);
        let topo = Staged::build(params.staged_kind(), topo_nodes, params.multiplicity, seed);
        let m = params.multiplicity as usize;
        let ports = (0..topo.stages())
            .map(|_| vec![Time::ZERO; topo.switches_per_stage() as usize * 2 * m])
            .collect();
        let nics = (0..active_nodes).map(|_| Nic::new()).collect();
        let fstate = FaultState::healthy(
            topo.stages(),
            topo.switches_per_stage(),
            params.multiplicity,
            active_nodes,
        );
        BaldurNet {
            topo,
            params,
            link,
            driver,
            active_nodes,
            ports,
            nics,
            packets: Vec::new(),
            metrics: Collector::new(sample_cap),
            in_flight: 0,
            fstate,
            plan: FaultPlan::new(seed),
            seed,
            fault_rng: StreamRng::named(seed, "biterror", 0),
            ack_refs: BTreeMap::new(),
            oracle: Oracle::new(OracleConfig::default()),
        }
    }

    /// Marks switches as dead: every packet reaching one is dropped (the
    /// Leighton–Maggs fault model — the multi-butterfly's randomized
    /// multiplicity routes retransmissions around them).
    pub fn inject_faults(&mut self, switches: &[(u32, u32)]) {
        let width = self.topo.switches_per_stage();
        for &(stage, switch) in switches {
            assert!(
                stage < self.topo.stages() && switch < width,
                "fault out of range"
            );
            self.fstate
                .apply(self.plan.seed, 0, &FaultKind::SwitchDown { stage, switch });
        }
    }

    /// The wired topology in use.
    pub fn topology(&self) -> &Staged {
        &self.topo
    }

    fn duration_of(&self, pkt: PktId) -> Duration {
        if self.packets[pkt as usize].acks.is_some() {
            self.link.ack_time()
        } else {
            self.link.packet_time()
        }
    }

    fn port_index(&self, switch: u32, dir: u32, path: u32) -> usize {
        let m = self.params.multiplicity;
        (switch * 2 * m + dir * m + path) as usize
    }

    fn enqueue(&mut self, now: Time, node: u32, pkt: PktId, sched: &mut Scheduler<Ev>) {
        let nic = &mut self.nics[node as usize];
        if self.packets[pkt as usize].acks.is_some() {
            nic.ack_queue.push_back(pkt);
        } else {
            nic.data_queue.push_back(pkt);
        }
        if !nic.try_scheduled {
            nic.try_scheduled = true;
            sched.schedule_at(now.max(nic.tx_busy_until), Ev::TryInject(node));
        }
    }

    fn apply_driver_output(
        &mut self,
        now: Time,
        node: u32,
        out: crate::driver::DriverOutput,
        sched: &mut Scheduler<Ev>,
    ) {
        let cap = self.params.ingress_cap;
        for cmd in out.sends {
            for _ in 0..cmd.count {
                // Admission control: a bounded ingress queue refuses new
                // packets while the source already holds `ingress_cap`
                // unreleased packets (queued or unACKed — every queued
                // data packet is unreleased, so this bounds the queue
                // too). Refused packets are counted, never stored: they
                // take no table slot, no buffer slot, no timer.
                if cap > 0 && self.nics[node as usize].outstanding >= cap {
                    self.metrics.on_generated(now);
                    self.metrics.note_flow_generated(node);
                    self.metrics.on_ingress_drop(now);
                    self.oracle
                        .note(now.as_ps(), "drop:ingress", u64::from(node), 0);
                    continue;
                }
                let pkt = self.packets.len() as PktId;
                self.packets.push(PacketState {
                    src: NodeId(node),
                    dst: cmd.dst,
                    generated_at: now,
                    attempts: 0,
                    outcome: DeliveryOutcome::Pending,
                    acked: false,
                    released: false,
                    acks: None,
                });
                self.metrics.on_generated(now);
                self.metrics.note_flow_generated(node);
                self.nics[node as usize].outstanding += 1;
                self.note_buffer(node);
                self.enqueue(now, node, pkt, sched);
                let len = self.nics[node as usize].data_queue.len() as u64;
                self.oracle
                    .check_occupancy(now.as_ps(), node, len, u64::from(cap));
            }
        }
        if let Some(t) = out.wake_at_ps {
            sched.schedule_at(Time::from_ps(t), Ev::Wake(node));
        }
    }

    /// Creates (and enqueues) one ACK packet from `node` back to `src`
    /// acknowledging every data packet in `batch`.
    fn send_ack(
        &mut self,
        now: Time,
        node: u32,
        src: u32,
        batch: Vec<PktId>,
        sched: &mut Scheduler<Ev>,
    ) {
        let first = batch[0];
        let ack = self.packets.len() as PktId;
        self.packets.push(PacketState {
            src: NodeId(node),
            dst: NodeId(src),
            generated_at: now,
            attempts: 0,
            outcome: DeliveryOutcome::Pending,
            acked: false,
            released: false,
            acks: Some(first),
        });
        if batch.len() > 1 {
            self.ack_refs.insert(ack, batch);
        }
        self.enqueue(now, node, ack, sched);
    }

    /// Takes a packet out of flight (delivery or drop). An underflow is
    /// recorded as an oracle violation (and the decrement skipped)
    /// instead of wrapping.
    fn dec_in_flight(&mut self, now: Time) {
        #[cfg(feature = "validate")]
        debug_assert!(
            self.in_flight > 0,
            "in_flight underflow: drop/arrive without inject"
        );
        if self.in_flight == 0 {
            self.oracle.record(
                now.as_ps(),
                Violation::CounterUnderflow {
                    counter: "in_flight".into(),
                },
            );
            return;
        }
        self.in_flight -= 1;
    }

    /// Gives `node`'s retransmission-buffer slot for one packet back,
    /// with oracle-checked (never wrapping) arithmetic.
    fn release_outstanding(&mut self, now: Time, node: u32) {
        match self.nics.get_mut(node as usize) {
            Some(nic) if nic.outstanding > 0 => nic.outstanding -= 1,
            _ => self.oracle.record(
                now.as_ps(),
                Violation::CounterUnderflow {
                    counter: "outstanding".into(),
                },
            ),
        }
    }

    /// Closes one admission-pacing window slot for `node` (the packet's
    /// first buffer-slot release: ACK, give-up, or expiry). No-op when
    /// pacing is off, so the counter costs nothing on the paper path.
    fn release_window(&mut self, node: u32) {
        if self.params.pacing_window == 0 {
            return;
        }
        if let Some(nic) = self.nics.get_mut(node as usize) {
            nic.in_window = nic.in_window.saturating_sub(1);
        }
    }

    /// Packet-conservation check, valid only once the event queue has
    /// drained: every generated packet was then delivered, dropped and
    /// retransmitted to completion, or abandoned — so nothing is in
    /// flight, no NIC holds queued or unACKed work, and no coalesced ACK
    /// is still owed.
    #[cfg(feature = "validate")]
    fn debug_validate_drained(&self) {
        debug_assert_eq!(self.in_flight, 0, "packets still in flight after drain");
        for (i, nic) in self.nics.iter().enumerate() {
            debug_assert!(
                nic.is_empty(),
                "NIC {i} still has queued packets after drain"
            );
            debug_assert_eq!(
                nic.outstanding, 0,
                "NIC {i} still counts unACKed packets after drain"
            );
            debug_assert!(
                nic.pending_acks.is_empty(),
                "NIC {i} still owes coalesced ACKs after drain"
            );
        }
        debug_assert!(
            self.ack_refs.is_empty(),
            "combined-ACK references leaked after drain"
        );
        // Packet conservation: at drain every data packet has reached a
        // terminal outcome — delivered or GaveUp, never still Pending —
        // and the metric counters agree exactly (delivered and abandoned
        // are disjoint, so generated = delivered + abandoned even under
        // fault plans that killed switches, links, or lasers mid-run).
        let mut delivered = 0u64;
        let mut gave_up = 0u64;
        let mut expired = 0u64;
        for st in self.packets.iter().filter(|p| p.acks.is_none()) {
            match st.outcome {
                DeliveryOutcome::Delivered => delivered += 1,
                DeliveryOutcome::GaveUp => gave_up += 1,
                DeliveryOutcome::Expired => expired += 1,
                DeliveryOutcome::Pending => {
                    debug_assert!(false, "packet leaked: no terminal outcome at drain")
                }
            }
        }
        debug_assert_eq!(self.metrics.delivered(), delivered, "delivered count drift");
        debug_assert_eq!(self.metrics.abandoned(), gave_up, "abandoned count drift");
        debug_assert_eq!(self.metrics.expired(), expired, "expired count drift");
        debug_assert_eq!(
            self.metrics.generated(),
            delivered + gave_up + expired + self.metrics.ingress_drops(),
            "conservation violated: generated != delivered + abandoned + \
             expired + ingress drops"
        );
    }

    fn note_buffer(&mut self, node: u32) {
        let bytes =
            u64::from(self.nics[node as usize].outstanding) * u64::from(self.link.packet_bytes);
        self.metrics.on_retx_buffer(bytes);
    }

    /// Finishes the run and reports.
    pub fn into_report(self, end: Time) -> LatencyReport {
        let mut r = self.metrics.report(end);
        r.oracle = self.oracle.summary();
        r
    }

    /// Periodic oracle tick driven by the engine's observer hook: feeds
    /// the stuck-flow detector with the number of packets still owed a
    /// terminal outcome. Returns `true` when the run should abort.
    fn oracle_tick(&mut self, now: Time) -> bool {
        let per_nic: Vec<u64> = self.nics.iter().map(|n| u64::from(n.outstanding)).collect();
        let outstanding: u64 = per_nic.iter().sum::<u64>() + self.in_flight;
        // Each tick is one starvation observation window: a flow (source
        // node) with work outstanding and zero deliveries for N windows
        // while the rest of the machine progresses is starved.
        self.oracle
            .check_starvation(now.as_ps(), self.metrics.flow_delivered_counts(), &per_nic);
        self.oracle.check_stall(now.as_ps(), outstanding)
    }

    /// Release-build drain audit mirroring [`Self::debug_validate_drained`]:
    /// discrepancies become structured oracle violations on the report
    /// instead of debug assertions, so chaos sweeps catch them in
    /// `--release` too.
    fn oracle_check_drained(&mut self, end: Time) {
        let at = end.as_ps();
        if self.in_flight > 0 {
            let count = u64::from(self.in_flight);
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "in_flight".into(),
                    count,
                },
            );
        }
        let queued = self.nics.iter().filter(|n| !n.is_empty()).count() as u64;
        if queued > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "nic_queue".into(),
                    count: queued,
                },
            );
        }
        let outstanding: u64 = self.nics.iter().map(|n| u64::from(n.outstanding)).sum();
        if outstanding > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "outstanding".into(),
                    count: outstanding,
                },
            );
        }
        let owed: u64 = self.nics.iter().map(|n| n.pending_acks.len() as u64).sum();
        if owed > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "pending_acks".into(),
                    count: owed,
                },
            );
        }
        if !self.ack_refs.is_empty() {
            let count = self.ack_refs.len() as u64;
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "ack_refs".into(),
                    count,
                },
            );
        }
        let mut delivered = 0u64;
        let mut gave_up = 0u64;
        let mut expired = 0u64;
        let mut pending = 0u64;
        for st in self.packets.iter().filter(|p| p.acks.is_none()) {
            match st.outcome {
                DeliveryOutcome::Delivered => delivered += 1,
                DeliveryOutcome::GaveUp => gave_up += 1,
                DeliveryOutcome::Expired => expired += 1,
                DeliveryOutcome::Pending => pending += 1,
            }
        }
        if pending > 0 {
            self.oracle.record(
                at,
                Violation::ResidualState {
                    what: "pending_packets".into(),
                    count: pending,
                },
            );
        }
        // Overload-shed packets (expired + refused at ingress) are part
        // of the ledger: generated must equal delivered + abandoned +
        // expired + ingress drops, exactly.
        let generated = self.metrics.generated();
        let shed = expired + self.metrics.ingress_drops();
        if generated != delivered + gave_up + shed
            || self.metrics.delivered() != delivered
            || self.metrics.abandoned() != gave_up
            || self.metrics.expired() != expired
        {
            let stranded = generated
                .saturating_sub(delivered)
                .saturating_sub(gave_up)
                .saturating_sub(shed);
            self.oracle.record(
                at,
                Violation::Conservation {
                    generated,
                    delivered: self.metrics.delivered(),
                    abandoned: self.metrics.abandoned(),
                    stranded,
                },
            );
        }
    }
}

impl Model for BaldurNet {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Wake(node) => {
                let out = self.driver.wakeup(node, now.as_ps());
                self.apply_driver_output(now, node, out, sched);
            }
            Ev::TryInject(node) => {
                let nic = &mut self.nics[node as usize];
                nic.try_scheduled = false;
                if nic.is_empty() {
                    return;
                }
                if nic.tx_busy_until > now {
                    nic.try_scheduled = true;
                    let at = nic.tx_busy_until;
                    sched.schedule_at(at, Ev::TryInject(node));
                    return;
                }
                // `is_empty` was just checked, so the pop always succeeds;
                // the else arm keeps the handler panic-free regardless.
                let Some(mut pkt) = nic.pop() else { return };
                // Deadline check at the head of the queue: a data packet
                // that aged out while waiting for its (first or retry)
                // injection slot expires here, without burning the slot —
                // queue wait is the dominant staleness under overload and
                // carries no retry timer that could catch it.
                let deadline = self.params.deadline_ps;
                if deadline > 0
                    && self.packets[pkt as usize].acks.is_none()
                    && self.packets[pkt as usize].outcome == DeliveryOutcome::Pending
                    && now.since(self.packets[pkt as usize].generated_at).as_ps() >= deadline
                {
                    let src = self.packets[pkt as usize].src.0;
                    let in_window = self.packets[pkt as usize].attempts > 0;
                    self.packets[pkt as usize].outcome = DeliveryOutcome::Expired;
                    self.metrics.on_expired(now);
                    self.oracle
                        .note(now.as_ps(), "expire", u64::from(pkt), u64::from(src));
                    self.oracle.progress(now.as_ps());
                    if !self.packets[pkt as usize].released {
                        self.packets[pkt as usize].released = true;
                        self.release_outstanding(now, src);
                        if in_window {
                            self.release_window(src);
                        }
                    }
                    let nic = &mut self.nics[node as usize];
                    if !nic.is_empty() {
                        nic.try_scheduled = true;
                        sched.schedule_at(now, Ev::TryInject(node));
                    }
                    return;
                }
                // Source-side admission pacing: a *first* injection waits
                // while `pacing_window` packets are already out awaiting
                // their first release. Retransmissions and ACKs bypass
                // (they are the recovery path), and every in-window
                // packet carries a timer, so the poll always terminates.
                let pw = self.params.pacing_window;
                if pw > 0
                    && self.packets[pkt as usize].acks.is_none()
                    && self.packets[pkt as usize].attempts == 0
                    && self.nics[node as usize].in_window >= pw
                {
                    // A queued retransmission must jump a deferred head:
                    // it is what releases the window, so parking it behind
                    // the deferral would deadlock the NIC.
                    let bypass = self.nics[node as usize].data_queue.iter().position(|&q| {
                        self.packets.get(q as usize).is_some_and(|p| p.attempts > 0)
                    });
                    let nic = &mut self.nics[node as usize];
                    nic.data_queue.push_front(pkt);
                    match bypass.and_then(|pos| nic.data_queue.remove(pos + 1)) {
                        Some(retx) => pkt = retx,
                        None => {
                            nic.try_scheduled = true;
                            sched.schedule_at(now + self.link.packet_time(), Ev::TryInject(node));
                            return;
                        }
                    }
                }
                let dur = self.duration_of(pkt);
                let nic = &mut self.nics[node as usize];
                nic.tx_busy_until = now + dur;
                if !nic.is_empty() {
                    nic.try_scheduled = true;
                    let at = nic.tx_busy_until;
                    sched.schedule_at(at, Ev::TryInject(node));
                }
                let st = &mut self.packets[pkt as usize];
                if st.acks.is_none() {
                    st.attempts += 1;
                    let attempt = st.attempts;
                    if attempt == 1 && self.params.pacing_window > 0 {
                        self.nics[node as usize].in_window += 1;
                    }
                    let backoff = self.nics[node as usize].backoff_exp;
                    let to = Duration::from_ps(jittered_timeout_ps(
                        &self.params,
                        self.seed,
                        pkt,
                        attempt,
                        backoff,
                    ));
                    sched.schedule_at(now + dur + to, Ev::Timeout { pkt, attempt });
                }
                // A dead transmit laser eats the frame at the source: the
                // NIC still burned the serialization slot (and, for data,
                // armed its retry timer — the recovery path), but nothing
                // enters the fabric.
                if !self.fstate.is_all_healthy() && self.fstate.laser_is_down(node) {
                    self.metrics.on_laser_loss();
                    self.oracle
                        .note(now.as_ps(), "drop:laser", u64::from(pkt), u64::from(node));
                    self.ack_refs.remove(&pkt);
                    return;
                }
                // Head reaches the first-stage switch after the ingress
                // fiber.
                let switch = self.topo.ingress_switch(self.packets[pkt as usize].src);
                self.metrics.on_injection();
                self.in_flight += 1;
                sched.schedule_at(
                    now + Duration::from_ps(self.params.link_delay_ps),
                    Ev::Hop {
                        pkt,
                        stage: 0,
                        switch,
                    },
                );
            }
            Ev::Hop { pkt, stage, switch } => {
                let healthy = self.fstate.is_all_healthy();
                if !healthy && self.fstate.switch_is_down(stage, switch) {
                    self.metrics.on_forward_attempt(true);
                    self.oracle
                        .note(now.as_ps(), "drop:switch", u64::from(pkt), u64::from(stage));
                    self.dec_in_flight(now);
                    // ACKs are never retransmitted, so a dropped combined
                    // ACK must release its batch references here.
                    self.ack_refs.remove(&pkt);
                    return; // a dead switch eats the packet
                }
                let dst = self.packets[pkt as usize].dst;
                let dir = self.topo.direction(dst, stage);
                let dur = self.duration_of(pkt);
                // Sequential path arbitration: first idle port wins. With
                // the path-rotation extension the scan start varies per
                // attempt so retries explore all m paths.
                let m = self.params.multiplicity;
                let start = if self.params.path_rotation {
                    // SplitMix-style mixing so every (packet, attempt)
                    // pair explores an independent per-stage path vector.
                    let st = &self.packets[pkt as usize];
                    let mut h = (u64::from(pkt) << 32) ^ u64::from(st.attempts);
                    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((h >> (stage % 8 * 8)) % u64::from(m)) as u32
                } else {
                    0
                };
                let mut claimed = None;
                for k in 0..m {
                    let path = (start + k) % m;
                    // A failed link looks like a permanently busy port:
                    // the scan skips it, shifting traffic onto the
                    // direction's surviving paths.
                    if !healthy && self.fstate.link_is_down(stage, switch, dir, path) {
                        continue;
                    }
                    let idx = self.port_index(switch, dir, path);
                    if self.ports[stage as usize][idx] <= now {
                        self.ports[stage as usize][idx] = now + dur;
                        claimed = Some(path);
                        break;
                    }
                }
                match claimed {
                    None => {
                        self.metrics.on_forward_attempt(true);
                        self.oracle.note(
                            now.as_ps(),
                            "drop:port",
                            u64::from(pkt),
                            u64::from(stage),
                        );
                        self.dec_in_flight(now);
                        self.ack_refs.remove(&pkt);
                        // Dropped: the source's timeout handles recovery.
                    }
                    Some(path) => {
                        // During a bit-error burst the traversal can
                        // corrupt the packet (the port was still burned);
                        // the destination NIC's CRC discards it and the
                        // source timeout recovers, like any drop.
                        if !healthy {
                            let p = self.fstate.corruption_prob(now.as_ps());
                            if p > 0.0 && self.fault_rng.gen_bool(p) {
                                self.metrics.on_corrupted();
                                self.metrics.on_forward_attempt(true);
                                self.oracle.note(
                                    now.as_ps(),
                                    "drop:crc",
                                    u64::from(pkt),
                                    u64::from(stage),
                                );
                                self.dec_in_flight(now);
                                self.ack_refs.remove(&pkt);
                                return;
                            }
                        }
                        self.metrics.on_forward_attempt(false);
                        let hop_delay = Duration::from_ps(
                            self.params.switch_latency_ps + self.params.stage_delay_ps,
                        );
                        if stage + 1 == self.topo.stages() {
                            // Egress: tail arrives after the fiber plus
                            // serialization.
                            let at = now
                                + hop_delay
                                + Duration::from_ps(self.params.link_delay_ps)
                                + dur;
                            sched.schedule_at(at, Ev::Arrive { pkt });
                        } else {
                            // Inner stages always have targets by
                            // construction; a miss would indicate a wiring
                            // bug, so under `validate` it trips, and in
                            // release the packet is treated as dropped
                            // (recovered by the source timeout) instead of
                            // aborting the run.
                            let Some(target) = self.topo.target(stage, switch, dir, path) else {
                                debug_assert!(false, "inner stage {stage} has no target");
                                self.dec_in_flight(now);
                                self.ack_refs.remove(&pkt);
                                return;
                            };
                            sched.schedule_at(
                                now + hop_delay,
                                Ev::Hop {
                                    pkt,
                                    stage: stage + 1,
                                    switch: target.switch,
                                },
                            );
                        }
                    }
                }
            }
            Ev::Arrive { pkt } => {
                self.dec_in_flight(now);
                let (is_ack, dst, src) = {
                    let st = &self.packets[pkt as usize];
                    (st.acks, st.dst, st.src)
                };
                match is_ack {
                    Some(data_pkt) => {
                        // ACK arrived back at the data source; a combined
                        // ACK settles its whole batch.
                        let batch = self.ack_refs.remove(&pkt).unwrap_or_else(|| vec![data_pkt]);
                        for data_pkt in batch {
                            let data = &mut self.packets[data_pkt as usize];
                            if !data.acked {
                                data.acked = true;
                                // A slot already given back by retry
                                // exhaustion (repair racing a backoff
                                // retry: the packet gave up, then a late
                                // copy delivered and this ACK returned)
                                // must not be released twice.
                                let release = !data.released;
                                data.released = true;
                                if release {
                                    self.release_outstanding(now, dst.0);
                                    self.release_window(dst.0);
                                    // Successful round trip relaxes the
                                    // backoff.
                                    let src_nic = &mut self.nics[dst.0 as usize];
                                    src_nic.backoff_exp = src_nic.backoff_exp.saturating_sub(1);
                                }
                            }
                        }
                    }
                    None => {
                        let first = self.packets[pkt as usize].outcome == DeliveryOutcome::Pending;
                        if first {
                            self.packets[pkt as usize].outcome = DeliveryOutcome::Delivered;
                            let latency = now.since(self.packets[pkt as usize].generated_at);
                            self.metrics.on_delivered(latency, now);
                            self.metrics.note_flow_delivered(src.0);
                            self.oracle.note(
                                now.as_ps(),
                                "deliver",
                                u64::from(pkt),
                                u64::from(dst.0),
                            );
                            self.oracle.progress(now.as_ps());
                            let out = self.driver.delivered(dst.0, now.as_ps());
                            self.apply_driver_output(now, dst.0, out, sched);
                        }
                        // ACK every arrival (covers lost-ACK duplicates) —
                        // immediately, or batched per source when traffic
                        // combining is on.
                        let window = self.params.ack_coalesce_ps;
                        if window == 0 {
                            self.send_ack(now, dst.0, src.0, vec![pkt], sched);
                        } else {
                            let entry = self.nics[dst.0 as usize]
                                .pending_acks
                                .entry(src.0)
                                .or_insert_with(|| (Vec::new(), false));
                            entry.0.push(pkt);
                            if !entry.1 {
                                entry.1 = true;
                                sched.schedule_in(
                                    Duration::from_ps(window),
                                    Ev::AckFlush {
                                        node: dst.0,
                                        src: src.0,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            Ev::AckFlush { node, src } => {
                let Some((batch, _)) = self.nics[node as usize].pending_acks.remove(&src) else {
                    return;
                };
                if !batch.is_empty() {
                    self.send_ack(now, node, src, batch, sched);
                }
            }
            Ev::Timeout { pkt, attempt } => {
                let st = self.packets[pkt as usize];
                if st.acked || st.attempts != attempt || st.acks.is_some() {
                    return; // stale timer
                }
                // Deadline-aware retransmission: a retry whose packet has
                // outlived its age budget expires instead of retrying —
                // under overload, stale work is shed rather than
                // amplified. Delivered-but-unACKed packets only drop
                // their buffer slot (they are not a loss).
                let deadline = self.params.deadline_ps;
                if deadline > 0 && now.since(st.generated_at).as_ps() >= deadline {
                    if st.outcome != DeliveryOutcome::Delivered {
                        self.packets[pkt as usize].outcome = DeliveryOutcome::Expired;
                        self.metrics.on_expired(now);
                        self.oracle.note(
                            now.as_ps(),
                            "expire",
                            u64::from(pkt),
                            u64::from(st.src.0),
                        );
                        self.oracle.progress(now.as_ps());
                    }
                    if !st.released {
                        if let Some(p) = self.packets.get_mut(pkt as usize) {
                            p.released = true;
                        }
                        self.release_outstanding(now, st.src.0);
                        self.release_window(st.src.0);
                    }
                    return;
                }
                // Retry budget exhausted: the source gives up instead of
                // retrying forever. A packet that was delivered but whose
                // ACKs all died is only dropped from the buffer — it is
                // not a loss, so it must not count as abandoned.
                if st.attempts > self.params.max_retries {
                    if st.outcome != DeliveryOutcome::Delivered {
                        self.packets[pkt as usize].outcome = DeliveryOutcome::GaveUp;
                        self.metrics.on_abandoned(now);
                        self.oracle.note(
                            now.as_ps(),
                            "giveup",
                            u64::from(pkt),
                            u64::from(st.src.0),
                        );
                        self.oracle.progress(now.as_ps());
                    }
                    // Give the buffer slot back exactly once: a late ACK
                    // for a delivered-but-timer-exhausted packet must not
                    // release it again (see released in Ev::Arrive).
                    if !st.released {
                        if let Some(p) = self.packets.get_mut(pkt as usize) {
                            p.released = true;
                        }
                        self.release_outstanding(now, st.src.0);
                        self.release_window(st.src.0);
                    }
                    return;
                }
                self.metrics.on_retransmit();
                if self.params.backoff {
                    // Binary exponential backoff throttles the transmitter.
                    let nic = &mut self.nics[st.src.0 as usize];
                    nic.backoff_exp = (nic.backoff_exp + 1).min(self.params.max_backoff_exp);
                }
                self.enqueue(now, st.src.0, pkt, sched);
            }
            Ev::Fault(idx) => {
                if let Some(ev) = self.plan.events.get(idx as usize).copied() {
                    self.fstate.apply(self.plan.seed, now.as_ps(), &ev.kind);
                    self.oracle.note(now.as_ps(), "fault", u64::from(idx), 0);
                }
            }
        }
    }
}

/// Convenience: run a Baldur simulation to completion.
///
/// `horizon_ns` bounds simulated time (saturated configurations otherwise
/// retry for a very long time); `None` uses a generous default derived from
/// the workload size.
pub fn simulate(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
) -> LatencyReport {
    simulate_with_faults(active_nodes, params, link, driver, seed, horizon_ns, &[])
}

/// [`simulate`] with a set of dead switches injected before the run.
pub fn simulate_with_faults(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    faults: &[(u32, u32)],
) -> LatencyReport {
    simulate_impl(
        active_nodes,
        params,
        link,
        driver,
        seed,
        horizon_ns,
        faults,
        &FaultPlan::new(seed),
        OracleConfig::default(),
    )
}

/// [`simulate`] executing a full [`FaultPlan`]: scheduled kill/revive of
/// switches, links, and lasers plus bit-error bursts, with per-fault-epoch
/// metrics in the report.
pub fn simulate_plan(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    plan: &FaultPlan,
) -> LatencyReport {
    simulate_impl(
        active_nodes,
        params,
        link,
        driver,
        seed,
        horizon_ns,
        &[],
        plan,
        OracleConfig::default(),
    )
}

/// [`simulate_plan`] with an explicit [`OracleConfig`]: the chaos
/// experiment tightens the stall deadline, and the shrinker fixture
/// deliberately mis-tunes it to demonstrate plan minimization.
#[allow(clippy::too_many_arguments)]
pub fn simulate_chaos(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    plan: &FaultPlan,
    oracle_cfg: OracleConfig,
) -> LatencyReport {
    simulate_impl(
        active_nodes,
        params,
        link,
        driver,
        seed,
        horizon_ns,
        &[],
        plan,
        oracle_cfg,
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_impl(
    active_nodes: u32,
    params: BaldurParams,
    link: LinkParams,
    driver: Driver,
    seed: u64,
    horizon_ns: Option<u64>,
    faults: &[(u32, u32)],
    plan: &FaultPlan,
    oracle_cfg: OracleConfig,
) -> LatencyReport {
    let total = driver.total_to_send();
    let sample_cap = (total.min(2_000_000)) as usize + 16;
    let mut model = BaldurNet::new(active_nodes, params, link, driver, seed, sample_cap);
    model.oracle = Oracle::new(oracle_cfg);
    if !plan.is_empty() {
        let repairs = plan.repair_times();
        let recovery = match (
            repairs.is_empty(),
            plan.events.iter().map(|e| e.at_ps).min(),
        ) {
            (false, Some(first_fault_ps)) => Some(RecoverySpec {
                // 1 us bins resolve recovery on CI-scale runs while a
                // 1 M-bin cap keeps long sweeps bounded.
                bin_ps: 1_000_000,
                frac: 0.5,
                first_fault_ps,
                repairs_ps: repairs,
            }),
            _ => None,
        };
        model.metrics = Collector::with_recovery(sample_cap, plan.epoch_boundaries(), recovery);
        model.oracle.set_boundaries(plan.epoch_boundaries());
        model.plan = plan.clone();
    }
    if !faults.is_empty() {
        model.inject_faults(faults);
    }
    let initial = model.driver.initial();
    let mut sim = Simulation::new(model);
    for (node, t) in initial {
        sim.scheduler_mut()
            .schedule_at(Time::from_ps(t), Ev::Wake(node));
    }
    for (idx, ev) in plan.events.iter().enumerate() {
        sim.scheduler_mut()
            .schedule_at(Time::from_ps(ev.at_ps), Ev::Fault(idx as u32));
    }
    let horizon = Time::from_ns(horizon_ns.unwrap_or_else(|| {
        // ~50x the time to stream the whole workload at line rate, plus
        // slack for retransmission storms.
        let per_node = total / u64::from(sim.model().active_nodes.max(1)) + 1;
        50 * per_node * link.packet_time().as_ps() / 1_000 + 10_000_000
    }));
    // Every 8192 executed events (a deterministic cadence, independent of
    // wall clock and thread count) the oracle's stuck-flow detector gets a
    // look; a latched stall aborts the run so livelocks surface as a
    // violation instead of burning the horizon.
    let stop = sim.run_until_observed(horizon, u64::MAX, 8192, |m, now| !m.oracle_tick(now));
    #[cfg(feature = "validate")]
    if stop == baldur_sim::StopReason::Drained {
        sim.model().debug_validate_drained();
    }
    let end = sim.scheduler().now();
    let events = sim.scheduler().events_executed();
    let mut model = sim.into_model();
    if stop == baldur_sim::StopReason::Drained {
        model.oracle_check_drained(end);
    }
    let mut report = model.into_report(end);
    report.events = events;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::traffic::Pattern;
    use crate::workloads::ping_pong1_pairs;

    fn link() -> LinkParams {
        LinkParams::paper()
    }

    #[test]
    fn light_load_latency_is_near_the_fiber_floor() {
        // 64 nodes, load 0.05: essentially no contention. The floor is
        // 2 x 100 ns fiber + 6 stages x ~2 ns + 163.84 ns serialization.
        let d = Driver::open_loop(64, Pattern::RandomPermutation, 0.05, 50, &link(), 42);
        let r = simulate(64, BaldurParams::paper_for(64), link(), d, 42, None);
        assert_eq!(r.delivered, r.generated, "all packets must arrive");
        assert!(r.avg_ns > 350.0 && r.avg_ns < 500.0, "avg {}", r.avg_ns);
        assert!(r.drop_rate < 0.02, "drop rate {}", r.drop_rate);
    }

    #[test]
    fn heavy_load_drops_but_still_delivers() {
        // Multiplicity 2 under heavy transpose guarantees contention so
        // the drop/ACK/retransmit machinery is exercised end to end.
        let d = Driver::open_loop(64, Pattern::Transpose, 0.9, 60, &link(), 7);
        let params = BaldurParams {
            multiplicity: 2,
            ..BaldurParams::paper_1k()
        };
        let r = simulate(64, params, link(), d, 7, None);
        assert!(
            r.delivery_ratio() > 0.99,
            "delivered {}",
            r.delivery_ratio()
        );
        assert!(r.drop_attempts > 0, "expected contention drops");
        assert!(r.retransmissions > 0);
        assert!(r.avg_ns > 350.0);
    }

    #[test]
    fn multiplicity_cuts_drop_rate() {
        let mut drops = Vec::new();
        for m in [1u32, 2, 4] {
            let d = Driver::open_loop(64, Pattern::Transpose, 0.7, 40, &link(), 3);
            let params = BaldurParams {
                multiplicity: m,
                ..BaldurParams::paper_1k()
            };
            let r = simulate(64, params, link(), d, 3, None);
            drops.push(r.drop_rate);
        }
        assert!(
            drops[0] > drops[1] && drops[1] > drops[2],
            "drop rates must fall with multiplicity: {drops:?}"
        );
        assert!(drops[0] > 0.10, "m=1 under transpose 0.7 drops heavily");
        assert!(drops[2] < 0.05, "m=4 should be rare-drop");
    }

    #[test]
    fn ping_pong_round_trip_is_two_network_crossings() {
        let pairs = ping_pong1_pairs(16, 9);
        let d = Driver::ping_pong(pairs, 10, 9);
        let r = simulate(16, BaldurParams::paper_for(16), link(), d, 9, None);
        assert_eq!(r.delivered, r.generated);
        // One crossing is ~370-420 ns; closed-loop latency per packet is a
        // single crossing (measured generation->delivery).
        assert!(r.avg_ns > 350.0 && r.avg_ns < 600.0, "avg {}", r.avg_ns);
    }

    #[test]
    fn retransmission_buffer_stays_bounded_at_paper_load() {
        let d = Driver::open_loop(128, Pattern::RandomPermutation, 0.7, 100, &link(), 5);
        let r = simulate(128, BaldurParams::paper_for(128), link(), d, 5, None);
        assert!(r.delivery_ratio() > 0.999);
        // Paper: 536 KB suffices at 0.7 load; 1 MB in the design. Our
        // high-water mark must sit well inside 1 MB.
        assert!(
            r.max_retx_buffer_bytes < 1_048_576,
            "buffer {}",
            r.max_retx_buffer_bytes
        );
    }

    #[test]
    fn ack_coalescing_cuts_ack_traffic_without_losing_anything() {
        // The paper's "traffic combining" future-work idea: combined ACKs
        // shrink the reverse-direction load. Injections = data + ACK
        // traversals, so fewer ACKs = fewer injections.
        let run_with = |window: u64| {
            let params = BaldurParams {
                ack_coalesce_ps: window,
                ..BaldurParams::paper_for(64)
            };
            let d = Driver::open_loop(64, Pattern::RandomPermutation, 0.6, 80, &link(), 13);
            simulate(64, params, link(), d, 13, None)
        };
        let plain = run_with(0);
        let combined = run_with(300_000); // 300 ns window << 1 us timeout
        assert_eq!(plain.delivered, plain.generated);
        assert_eq!(combined.delivered, combined.generated);
        assert!(
            combined.injections < plain.injections * 95 / 100,
            "combined {} vs plain {}",
            combined.injections,
            plain.injections
        );
        // Latency stays in the same regime (ACK delay is off the data
        // path; only retransmission margins feel the window).
        assert!(combined.avg_ns < plain.avg_ns * 1.5);
    }

    #[test]
    fn routes_around_a_dead_switch() {
        // Leighton-Maggs: with randomized multiplicity, a faulty switch
        // costs retransmissions, not connectivity.
        let params = BaldurParams {
            path_rotation: true,
            ..BaldurParams::paper_for(64)
        };
        let d = Driver::open_loop(64, Pattern::RandomPermutation, 0.3, 60, &link(), 21);
        let healthy = simulate(64, params, link(), d, 21, None);
        let d = Driver::open_loop(64, Pattern::RandomPermutation, 0.3, 60, &link(), 21);
        let faulty = simulate_with_faults(64, params, link(), d, 21, None, &[(2, 7), (3, 11)]);
        assert_eq!(healthy.delivered, healthy.generated);
        assert_eq!(
            faulty.delivered, faulty.generated,
            "dead switches must not break connectivity"
        );
        assert!(faulty.drop_attempts > healthy.drop_attempts);
        assert!(faulty.retransmissions > 0);
    }

    #[test]
    fn dead_ingress_column_still_recovers_other_flows() {
        // Even killing a first-stage switch only severs the two nodes
        // wired to it; packets *from* those nodes are abandoned after
        // the retry budget while the rest of the machine keeps working.
        let mut params = BaldurParams::paper_for(64);
        params.max_retries = 2;
        params.base_timeout_ps = 500_000;
        let d = Driver::open_loop(64, Pattern::UniformRandom, 0.2, 20, &link(), 5);
        let r = simulate_with_faults(64, params, link(), d, 5, None, &[(0, 0)]);
        // Nodes 0 and 1 inject into switch (0,0): their 40 packets die.
        assert!(r.abandoned >= 30, "{}", r.abandoned);
        assert!(r.delivered as f64 >= 0.9 * (r.generated - r.abandoned) as f64);
    }

    #[test]
    fn terminates_and_gives_up_under_100_percent_drop() {
        // Satellite check for the retry-forever hazard: with every switch
        // dead (100% drop), every packet must hit GaveUp after exactly
        // max_retries retransmissions and the run must drain on its own —
        // no infinite retry loop, no horizon rescue needed.
        let mut params = BaldurParams::paper_for(16);
        params.max_retries = 3;
        params.base_timeout_ps = 500_000;
        let d = Driver::open_loop(16, Pattern::UniformRandom, 0.3, 10, &link(), 11);
        let plan = FaultPlan::degradation(11, 1.0);
        let r = simulate_plan(16, params, link(), d, 11, None, &plan);
        assert_eq!(r.delivered, 0, "nothing can cross a fully dead fabric");
        assert_eq!(r.abandoned, r.generated, "every packet must give up");
        assert!(r.generated > 0);
        // First try + 3 retries per packet, all dropped at stage 0.
        assert_eq!(r.retransmissions, 3 * r.generated);
        assert_eq!(r.drop_attempts, 4 * r.generated);
    }

    #[test]
    fn dead_laser_loses_frames_until_revival() {
        // A dark transmit laser during the first 40 us silences node 0;
        // its packets burn retries (never entering the fabric) until the
        // laser is repaired, after which retransmissions deliver them.
        let params = BaldurParams::paper_for(32);
        let plan = FaultPlan::new(5)
            .at(0, FaultKind::LaserDown { node: 0 })
            .at(40_000_000, FaultKind::LaserUp { node: 0 });
        let d = Driver::open_loop(32, Pattern::RandomPermutation, 0.2, 30, &link(), 5);
        let r = simulate_plan(32, params, link(), d, 5, None, &plan);
        assert_eq!(r.delivered, r.generated, "revival must recover all flows");
        assert!(r.laser_losses > 0, "the dark window must eat frames");
        assert!(r.retransmissions >= r.laser_losses - 1);
        // Epoch 0 (laser dark) must show worse goodput than epoch 1.
        assert_eq!(r.epochs.len(), 2);
        assert!(r.epochs[0].goodput() < r.epochs[1].goodput() + 1e-9);
    }

    #[test]
    fn bit_error_burst_corrupts_then_recovery() {
        // A heavy burst over the first 30 us corrupts traversals; CRC
        // drops + retransmission still deliver everything.
        let params = BaldurParams::paper_for(32);
        let plan = FaultPlan::new(3).at(
            0,
            FaultKind::BitErrorBurst {
                duration_ps: 30_000_000,
                corruption_prob: 0.2,
            },
        );
        let d = Driver::open_loop(32, Pattern::RandomPermutation, 0.3, 30, &link(), 17);
        let r = simulate_plan(32, params, link(), d, 17, None, &plan);
        assert_eq!(r.delivered, r.generated);
        assert!(r.corrupted > 0, "the burst must corrupt some traversals");
        assert!(
            r.drop_attempts >= r.corrupted,
            "corruptions are a subset of drops"
        );
    }

    #[test]
    fn link_failures_degrade_but_do_not_disconnect() {
        // Killing one of the m paths of a direction leaves m-1 survivors:
        // more contention drops, same connectivity.
        let params = BaldurParams::paper_for(64);
        let d = Driver::open_loop(64, Pattern::Transpose, 0.5, 40, &link(), 23);
        let healthy = simulate(64, params, link(), d, 23, None);
        let plan = FaultPlan::new(23)
            .at(
                0,
                FaultKind::LinkDown {
                    stage: 1,
                    switch: 0,
                    dir: 0,
                    path: 0,
                },
            )
            .at(
                0,
                FaultKind::LinkDown {
                    stage: 1,
                    switch: 1,
                    dir: 1,
                    path: 2,
                },
            )
            .at(
                0,
                FaultKind::LinkDown {
                    stage: 2,
                    switch: 3,
                    dir: 0,
                    path: 1,
                },
            );
        let d = Driver::open_loop(64, Pattern::Transpose, 0.5, 40, &link(), 23);
        let faulty = simulate_plan(64, params, link(), d, 23, None, &plan);
        assert_eq!(healthy.delivered, healthy.generated);
        assert_eq!(faulty.delivered, faulty.generated);
        assert!(faulty.drop_attempts >= healthy.drop_attempts);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mk = || {
            let d = Driver::open_loop(32, Pattern::Bisection, 0.5, 30, &link(), 77);
            simulate(32, BaldurParams::paper_for(32), link(), d, 77, None)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.avg_ns.to_bits(), b.avg_ns.to_bits());
        assert_eq!(a.drop_attempts, b.drop_attempts);
    }

    #[test]
    fn late_ack_after_giveup_releases_the_slot_exactly_once() {
        // The repair/backoff race distilled: a 10 us fiber makes every
        // ACK round trip vastly outlive a 100 ns timeout with a zero
        // retry budget, so each packet gives up (slot released) while its
        // copy is still in flight. The copy then delivers and its ACK
        // returns to a source that already released the slot — without
        // the `released` guard that second release underflows
        // `outstanding`, which the oracle would report.
        let params = BaldurParams {
            link_delay_ps: 10_000_000,
            base_timeout_ps: 100_000,
            max_retries: 0,
            ..BaldurParams::paper_for(16)
        };
        let d = Driver::open_loop(16, Pattern::RandomPermutation, 0.05, 4, &link(), 31);
        let r = simulate(16, params, link(), d, 31, None);
        assert_eq!(r.generated, r.delivered + r.abandoned, "conservation");
        assert!(r.abandoned > 0, "the race needs exhausted packets");
        assert!(
            r.oracle.is_clean(),
            "no counter may underflow: {:?}",
            r.oracle
        );
    }

    #[test]
    fn livelock_detector_fires_on_a_wedged_fabric() {
        // Every switch dead and a huge retry budget: sources retransmit
        // forever, nothing ever delivers. The stuck-flow watermark must
        // fire (and abort the run) instead of burning the whole horizon.
        let params = BaldurParams {
            max_retries: 100_000,
            ..BaldurParams::paper_for(16)
        };
        let plan = FaultPlan::new(5).at(0, FaultKind::FailFraction { fraction: 1.0 });
        let cfg = crate::oracle::OracleConfig {
            stall_ps: 1_000_000, // 1 us of silence is already damning here
            ..crate::oracle::OracleConfig::default()
        };
        let d = Driver::open_loop(16, Pattern::RandomPermutation, 0.3, 10, &link(), 5);
        let r = simulate_chaos(16, params, link(), d, 5, None, &plan, cfg);
        assert_eq!(r.delivered, 0);
        assert!(
            r.oracle
                .reports
                .iter()
                .any(|rep| matches!(rep.violation, Violation::StuckFlow { .. })),
            "expected a StuckFlow violation, got {:?}",
            r.oracle
        );
    }

    #[test]
    fn ingress_cap_sheds_load_with_exact_conservation() {
        // A 16-to-1 incast at 4x saturation with a small admission cap:
        // the cap must refuse packets (counted, not stored) and the
        // ledger must still balance exactly.
        let params = BaldurParams {
            ingress_cap: 8,
            deadline_ps: 0,
            ..BaldurParams::paper_for(32)
        };
        let d = Driver::storm(32, Pattern::Incast { fanin: 16 }, 4.0, 40, &link(), 7);
        let r = simulate(32, params, link(), d, 7, None);
        assert!(r.ingress_drops > 0, "4x incast must trip admission control");
        assert_eq!(
            r.generated,
            r.delivered + r.abandoned + r.expired + r.ingress_drops,
            "conservation with load shedding"
        );
        assert!(r.delivered > 0, "shedding must not collapse goodput");
        assert!(r.oracle.is_clean(), "oracle: {:?}", r.oracle);
    }

    #[test]
    fn deadline_expires_stale_packets_instead_of_retrying_forever() {
        // A fully dead fabric with a generous retry budget but a tight
        // deadline: packets expire at the age budget instead of burning
        // the whole retry budget.
        let params = BaldurParams {
            max_retries: 100_000,
            base_timeout_ps: 500_000,
            deadline_ps: 3_000_000, // 3 us age budget
            ..BaldurParams::paper_for(16)
        };
        let plan = FaultPlan::degradation(11, 1.0);
        let d = Driver::open_loop(16, Pattern::UniformRandom, 0.3, 10, &link(), 11);
        let r = simulate_plan(16, params, link(), d, 11, None, &plan);
        assert_eq!(r.delivered, 0, "nothing crosses a dead fabric");
        assert_eq!(r.expired, r.generated, "every packet expires at deadline");
        assert_eq!(r.abandoned, 0, "deadline fires before the retry budget");
        assert!(
            r.retransmissions < 16 * r.generated,
            "the deadline bounds retry amplification: {} retries",
            r.retransmissions
        );
        assert_eq!(
            r.generated,
            r.delivered + r.abandoned + r.expired + r.ingress_drops
        );
    }

    #[test]
    fn pacing_defers_injections_without_losing_anything() {
        let base = BaldurParams::paper_for(64);
        let run = |pacing_window: u32| {
            let params = BaldurParams {
                pacing_window,
                ..base
            };
            // An incast storm guarantees wavelength contention at the
            // victim, so the unpaced run sees real fabric drops.
            let d = Driver::storm(64, Pattern::Incast { fanin: 8 }, 2.0, 30, &link(), 13);
            simulate(64, params, link(), d, 13, None)
        };
        let unpaced = run(0);
        let paced = run(2);
        assert!(unpaced.drop_attempts > 0, "storm must contend");
        // Contention past the retry budget legitimately gives up, so the
        // guarantee is exact conservation, not universal delivery.
        assert_eq!(
            paced.generated,
            paced.delivered + paced.abandoned + paced.expired + paced.ingress_drops
        );
        assert!(paced.oracle.is_clean(), "oracle: {:?}", paced.oracle);
        // Pacing throttles the offered burst, so fabric drops fall.
        assert!(
            paced.drop_attempts < unpaced.drop_attempts,
            "paced {} vs unpaced {}",
            paced.drop_attempts,
            unpaced.drop_attempts
        );
    }

    #[test]
    fn hotcast_storm_delivers_and_reports_fairness() {
        let d = Driver::storm(32, Pattern::Hotcast, 0.6, 30, &link(), 3);
        let r = simulate(32, BaldurParams::paper_for(32), link(), d, 3, None);
        assert_eq!(r.generated, 32 * 30);
        assert!(r.delivery_ratio() > 0.99, "{}", r.delivery_ratio());
        assert_eq!(r.fairness.flows, 32, "every node offers traffic");
        assert!(r.fairness.jain > 0.0 && r.fairness.jain <= 1.0);
        assert!(r.p999_ns >= r.p99_ns && r.p99_ns > 0.0);
    }

    #[test]
    fn chaos_staged_plan_drains_clean_with_recovery_metrics() {
        use crate::faults::{ChaosProfile, ChaosShape};
        // A mixed link/switch/laser chaos schedule over the staged fabric
        // must drain with conservation intact, a quiet oracle, and one
        // recovery measurement per repair.
        let shape = ChaosShape {
            stages: 3,
            width: 8,
            m: 4,
            nodes: 64,
            routers: 0,
        };
        let profile = ChaosProfile {
            warmup_ps: 2_000_000,
            last_repair_ps: 40_000_000,
            pairs: 6,
        };
        let plan = FaultPlan::chaos(19, &shape, &profile);
        let d = Driver::open_loop(64, Pattern::RandomPermutation, 0.3, 40, &link(), 19);
        let r = simulate_plan(64, BaldurParams::paper_for(64), link(), d, 19, None, &plan);
        assert_eq!(r.generated, r.delivered + r.abandoned, "conservation");
        assert!(r.oracle.is_clean(), "oracle: {:?}", r.oracle);
        assert_eq!(r.recoveries.len(), plan.repair_times().len());
        assert!(r.flap_amplification() >= 1.0);
    }
}

//! Routing algorithms for the electrical baseline networks.
//!
//! * Multi-butterfly: destination-bit routing with adaptive (least-pending)
//!   selection among the `m` parallel ports of the chosen direction.
//! * Dragonfly: UGAL-style adaptive routing \[16\] — at injection the source
//!   router compares the congestion of the minimal path against a Valiant
//!   detour through a random intermediate group; VCs follow Kim et al.'s
//!   local/global hop-class assignment to stay deadlock-free.
//! * Fat-tree: adaptive up-routing (least-pending upstream port), then
//!   deterministic down-routing \[55\].

use baldur_sim::rng::StreamRng;
use baldur_topo::dragonfly::Dragonfly;
use baldur_topo::fattree::{FatTree, Level};
use baldur_topo::graph::{NodeId, RouterGraph};
use baldur_topo::multibutterfly::MultiButterfly;

/// Per-packet routing scratch state.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteState {
    /// Dragonfly Valiant intermediate group (cleared once reached).
    pub valiant_mid: Option<u32>,
    /// Local hops taken (dragonfly VC class).
    pub local_hops: u8,
    /// Global hops taken (dragonfly VC class).
    pub global_hops: u8,
}

/// A congestion view the adaptive algorithms consult: packets currently
/// buffered in this router destined to each output port.
pub trait Congestion {
    /// Pending packets for `port`.
    fn pending(&self, port: u32) -> u32;
}

impl Congestion for &[u32] {
    fn pending(&self, port: u32) -> u32 {
        self[port as usize]
    }
}

/// The routing algorithm of an electrical network.
#[derive(Debug, Clone)]
pub enum RoutingAlg {
    /// Adaptive destination-bit routing on the multi-butterfly.
    MultiButterfly(MultiButterfly),
    /// UGAL-style adaptive dragonfly routing.
    Dragonfly(Dragonfly),
    /// Minimal-only dragonfly routing (the non-adaptive ablation).
    DragonflyMinimal(Dragonfly),
    /// Adaptive up / deterministic down fat-tree routing.
    FatTree(FatTree),
}

/// UGAL bias: take the Valiant detour only when the minimal queue exceeds
/// twice the non-minimal queue plus this threshold.
const UGAL_THRESHOLD: u32 = 3;

impl RoutingAlg {
    /// Number of VCs the algorithm requires (all fit the paper's 3).
    pub fn required_vcs(&self) -> u32 {
        3
    }

    /// Called once when a packet is injected at its source router: decides
    /// dragonfly minimal-vs-Valiant. `cong` views the *source router*.
    pub fn on_inject(
        &self,
        router: u32,
        src: NodeId,
        dst: NodeId,
        state: &mut RouteState,
        cong: &impl Congestion,
        rng: &mut StreamRng,
    ) {
        let RoutingAlg::Dragonfly(df) = self else {
            return; // minimal-only and non-dragonfly algorithms never detour
        };
        let src_group = df.group_of_node(src);
        let dst_group = df.group_of_node(dst);
        if src_group == dst_group {
            return;
        }
        // Candidate intermediate group.
        let mid = loop {
            let g = rng.gen_range(0..df.groups);
            if g != src_group && g != dst_group {
                break g;
            }
        };
        let q_min = cong.pending(self.df_first_port(df, router, dst_group, dst));
        let q_val = cong.pending(self.df_first_port(df, router, mid, dst));
        if q_min > 2 * q_val + UGAL_THRESHOLD {
            state.valiant_mid = Some(mid);
        }
    }

    /// The output port a dragonfly packet heading for `target_group` takes
    /// from `router` (terminal port if already at the destination router).
    fn df_first_port(&self, df: &Dragonfly, router: u32, target_group: u32, dst: NodeId) -> u32 {
        let g = df.group_of_router(router);
        if g == target_group {
            let dst_router = df.router_of_node(dst);
            if df.group_of_router(dst_router) != g {
                // Heading to an intermediate group: any local port; use 0's
                // congestion as a proxy via the port toward router 0 of the
                // group (the decision only compares magnitudes).
                let local = router % df.a;
                let peer = if local == 0 { 1 } else { 0 };
                return df.local_port(local, peer);
            }
            if dst_router == router {
                return dst.0 % df.p;
            }
            return df.local_port(router % df.a, dst_router % df.a);
        }
        let (gw, gp) = df.gateway(g, target_group);
        if gw == router {
            df.global_port_base() + gp
        } else {
            df.local_port(router % df.a, gw % df.a)
        }
    }

    /// Computes the next hop for a packet at `router`: `(port, vc)`.
    /// Must be called exactly once per router visit (it advances the
    /// packet's hop-class counters).
    ///
    /// # Panics
    ///
    /// Panics if invariants break (e.g. a packet mis-sorted in the
    /// multi-butterfly).
    pub fn route(
        &self,
        graph: &RouterGraph,
        router: u32,
        pkt_id: u64,
        dst: NodeId,
        state: &mut RouteState,
        cong: &impl Congestion,
    ) -> (u32, u32) {
        match self {
            RoutingAlg::MultiButterfly(mb) => {
                let m = mb.multiplicity();
                let width = mb.switches_per_stage();
                let stage = router / width;
                let switch = router % width;
                let dir = mb.direction(dst, stage);
                let base = 2 * m + dir * m;
                let port = if stage + 1 == mb.stages() {
                    base // single terminal port per direction
                } else {
                    // Adaptive: least-pending of the m parallel ports.
                    (base..base + m)
                        .min_by_key(|&p| cong.pending(p))
                        .expect("m >= 1")
                };
                let _ = (graph, switch);
                (port, (pkt_id % 3) as u32)
            }
            RoutingAlg::Dragonfly(df) | RoutingAlg::DragonflyMinimal(df) => {
                let g = df.group_of_router(router);
                if state.valiant_mid == Some(g) {
                    state.valiant_mid = None;
                }
                let target_group = state.valiant_mid.unwrap_or_else(|| df.group_of_node(dst));
                let port = if g == target_group && state.valiant_mid.is_none() {
                    let dst_router = df.router_of_node(dst);
                    if dst_router == router {
                        dst.0 % df.p
                    } else {
                        df.local_port(router % df.a, dst_router % df.a)
                    }
                } else if g == target_group {
                    unreachable!("valiant mid cleared above");
                } else {
                    let (gw, gp) = df.gateway(g, target_group);
                    if gw == router {
                        df.global_port_base() + gp
                    } else {
                        df.local_port(router % df.a, gw % df.a)
                    }
                };
                // VC by hop class (Kim et al.): local hops use classes
                // 0/1/2, global hops 0/1.
                let is_global = port >= df.global_port_base();
                let vc = if is_global {
                    let vc = u32::from(state.global_hops).min(1);
                    state.global_hops += 1;
                    vc
                } else {
                    let vc = u32::from(state.local_hops).min(2);
                    state.local_hops += 1;
                    vc
                };
                (port, vc)
            }
            RoutingAlg::FatTree(ft) => {
                let half = ft.half_k();
                let port = match ft.level(router) {
                    Level::Edge => {
                        let (er, ep) = ft.host_attachment(dst);
                        if er == router {
                            ep
                        } else {
                            (half..ft.k)
                                .min_by_key(|&p| cong.pending(p))
                                .expect("k >= 4")
                        }
                    }
                    Level::Aggregation => {
                        let pod = ft.pod_of(router);
                        let dst_pod = dst.0 / ft.hosts_per_pod();
                        if dst_pod == pod {
                            // Down to the destination edge switch.
                            (dst.0 % ft.hosts_per_pod()) / half
                        } else {
                            (half..ft.k)
                                .min_by_key(|&p| cong.pending(p))
                                .expect("k >= 4")
                        }
                    }
                    Level::Core => dst.0 / ft.hosts_per_pod(),
                };
                let _ = graph;
                (port, (pkt_id % 3) as u32)
            }
        }
    }

    /// The VC a packet uses on its injection (terminal) link.
    pub fn injection_vc(&self, pkt_id: u64) -> u32 {
        match self {
            RoutingAlg::Dragonfly(_) | RoutingAlg::DragonflyMinimal(_) => 0,
            _ => (pkt_id % 3) as u32,
        }
    }
}

/// Builds the port-level graph of an electrical multi-butterfly.
///
/// Router index = `stage * (nodes/2) + switch`. Port layout: `[0, 2m)` are
/// upstream inputs, `[2m, 4m)` downstream outputs (direction-major). Nodes
/// inject at stage 0 (input `(node % 2) * m`) and are delivered from the
/// last stage (output port `2m + dir * m`).
pub fn build_mb_graph(mb: &MultiButterfly, node_link_ps: u64, stage_link_ps: u64) -> RouterGraph {
    let m = mb.multiplicity();
    let width = mb.switches_per_stage();
    let routers = width * mb.stages();
    let mut g = RouterGraph::new(routers, 4 * m);
    // Injection attachments, node-id order.
    for n in 0..mb.nodes() {
        g.attach_node(n / 2, (n % 2) * m, node_link_ps);
    }
    // Inter-stage links.
    for s in 0..mb.stages() - 1 {
        for sw in 0..width {
            for dir in 0..2 {
                let targets = mb.next_targets(s, sw, dir).expect("inner stage");
                for (path, t) in targets.iter().enumerate() {
                    g.connect(
                        (s * width + sw, 2 * m + dir * m + path as u32),
                        ((s + 1) * width + t.switch, t.port),
                        stage_link_ps,
                    );
                }
            }
        }
    }
    // Egress terminals on the last stage.
    let last = mb.stages() - 1;
    for sw in 0..width {
        for dir in 0..2 {
            let node = mb.egress_node(sw, dir);
            g.attach_terminal(node, last * width + sw, 2 * m + dir * m, node_link_ps);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_graph_validates() {
        let mb = MultiButterfly::new(32, 4, 5);
        let g = build_mb_graph(&mb, 100_000, 10_000);
        assert!(g.validate().is_ok());
        assert_eq!(g.node_count(), 32);
    }

    #[test]
    fn mb_route_follows_destination_bits() {
        let mb = MultiButterfly::new(16, 2, 1);
        let g = build_mb_graph(&mb, 1, 1);
        let alg = RoutingAlg::MultiButterfly(mb.clone());
        let pending = vec![0u32; 8];
        let mut st = RouteState::default();
        // dst 0b1010: stage 0 direction 1 -> ports [2m + m .. 2m + 2m).
        let (port, _) = alg.route(&g, 0, 0, NodeId(0b1010), &mut st, &pending.as_slice());
        assert!((6..8).contains(&port), "port {port}");
    }

    #[test]
    fn mb_route_prefers_less_pending_port() {
        let mb = MultiButterfly::new(16, 2, 1);
        let g = build_mb_graph(&mb, 1, 1);
        let alg = RoutingAlg::MultiButterfly(mb);
        let mut pending = vec![0u32; 8];
        pending[6] = 5;
        let mut st = RouteState::default();
        let (port, _) = alg.route(&g, 0, 0, NodeId(0b1010), &mut st, &pending.as_slice());
        assert_eq!(port, 7, "must avoid the congested parallel port");
    }

    #[test]
    fn dragonfly_minimal_route_walks_l_g_l() {
        let df = Dragonfly::balanced(2); // p=2, a=4, h=2, 9 groups
        let g = df.build_graph(10_000, 100_000);
        let alg = RoutingAlg::Dragonfly(df.clone());
        let pending = vec![0u32; df.radix() as usize];
        // Node 0 (router 0, group 0) -> node in group 5.
        let dst = NodeId(5 * (df.p * df.a) + 3);
        let mut st = RouteState::default();
        let mut router = df.router_of_node(NodeId(0));
        let mut hops = 0;
        loop {
            let (port, vc) = alg.route(&g, router, 0, dst, &mut st, &pending.as_slice());
            assert!(vc < 3);
            match g.peer(router, port) {
                baldur_topo::graph::Endpoint::Router { router: r, .. } => router = r,
                baldur_topo::graph::Endpoint::Node(n) => {
                    assert_eq!(n, dst);
                    break;
                }
                baldur_topo::graph::Endpoint::Unused => panic!("routed to unused port"),
            }
            hops += 1;
            assert!(hops <= 5, "minimal dragonfly path too long");
        }
    }

    #[test]
    fn dragonfly_valiant_goes_through_mid_group() {
        let df = Dragonfly::balanced(2);
        let g = df.build_graph(10_000, 100_000);
        let alg = RoutingAlg::Dragonfly(df.clone());
        let pending = vec![0u32; df.radix() as usize];
        let dst = NodeId(5 * (df.p * df.a));
        let mut st = RouteState {
            valiant_mid: Some(7),
            ..Default::default()
        };
        let mut router = 0;
        let mut visited_mid = false;
        for _ in 0..10 {
            let (port, _) = alg.route(&g, router, 0, dst, &mut st, &pending.as_slice());
            match g.peer(router, port) {
                baldur_topo::graph::Endpoint::Router { router: r, .. } => {
                    router = r;
                    if df.group_of_router(r) == 7 {
                        visited_mid = true;
                    }
                }
                baldur_topo::graph::Endpoint::Node(n) => {
                    assert_eq!(n, dst);
                    assert!(visited_mid, "valiant path must cross group 7");
                    return;
                }
                baldur_topo::graph::Endpoint::Unused => panic!("unused port"),
            }
        }
        panic!("did not deliver");
    }

    #[test]
    fn ugal_picks_valiant_under_congestion() {
        let df = Dragonfly::balanced(2);
        let alg = RoutingAlg::Dragonfly(df.clone());
        let mut rng = StreamRng::named(1, "ugal", 0);
        // Congest every port heavily except nothing: minimal q = 50.
        let mut pending = vec![0u32; df.radix() as usize];
        let dst = NodeId(5 * (df.p * df.a));
        let min_port = {
            let mut st = RouteState::default();
            let g = df.build_graph(1, 1);
            alg.route(&g, 0, 0, dst, &mut st, &pending.as_slice()).0
        };
        pending[min_port as usize] = 50;
        let mut st = RouteState::default();
        alg.on_inject(0, NodeId(0), dst, &mut st, &pending.as_slice(), &mut rng);
        assert!(st.valiant_mid.is_some(), "should detour around congestion");
        // And with no congestion it stays minimal.
        let pending = vec![0u32; df.radix() as usize];
        let mut st = RouteState::default();
        alg.on_inject(0, NodeId(0), dst, &mut st, &pending.as_slice(), &mut rng);
        assert!(st.valiant_mid.is_none());
    }

    #[test]
    fn fattree_up_down_delivers() {
        let ft = FatTree::new(8);
        let g = ft.build_graph(10_000, 50_000, 100_000);
        let alg = RoutingAlg::FatTree(ft.clone());
        let pending = vec![0u32; ft.k as usize];
        for (src, dst) in [(0u32, 127u32), (5, 6), (64, 1), (127, 0)] {
            let (mut router, _) = ft.host_attachment(NodeId(src));
            let mut st = RouteState::default();
            let mut hops = 0;
            loop {
                let (port, _) = alg.route(
                    &g,
                    router,
                    u64::from(src),
                    NodeId(dst),
                    &mut st,
                    &pending.as_slice(),
                );
                match g.peer(router, port) {
                    baldur_topo::graph::Endpoint::Router { router: r, .. } => router = r,
                    baldur_topo::graph::Endpoint::Node(n) => {
                        assert_eq!(n.0, dst);
                        break;
                    }
                    baldur_topo::graph::Endpoint::Unused => panic!("unused port"),
                }
                hops += 1;
                assert!(hops <= 6, "fat-tree path too long: {src}->{dst}");
            }
        }
    }
}

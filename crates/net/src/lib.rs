//! Packet-level network simulation models for the Baldur reproduction.
//!
//! This crate is the stand-in for the paper's CODES-based evaluation
//! (Sec. V): it simulates, at packet granularity,
//!
//! * [`baldur_net`] — the bufferless all-optical Baldur network: on-the-fly
//!   switching, per-output-port occupancy, sequential multiplicity-path
//!   arbitration, packet drops, ACK/timeout retransmission with binary
//!   exponential backoff, and retransmission-buffer accounting,
//! * [`router_net`] — the buffered electrical substrate (input-queued VC
//!   routers, credit flow control, 90 ns switch latency) used by the
//!   electrical multi-butterfly, dragonfly (UGAL-style adaptive routing),
//!   and fat-tree (adaptive up-path) baselines,
//! * [`ideal_net`] — the infinite-bandwidth, flat-200 ns reference,
//! * [`traffic`] — the seven synthetic patterns of Sec. V-A,
//! * [`workloads`] — synthetic DUMPI-style traces for the four Design
//!   Forward HPC applications (see DESIGN.md for the substitution note),
//! * [`droptool`] — the paper's "in-house tool": worst-case simultaneous
//!   injection drop-rate analysis at scales up to millions of nodes,
//! * [`diagnosis`] — Sec. IV-F fault isolation via deterministic
//!   test-mode probing,
//! * [`faults`] — deterministic seeded fault injection ([`FaultPlan`]):
//!   switch/link/laser kill-and-revive schedules and jitter-model-derived
//!   bit-error bursts, threaded through both network models for
//!   degradation curves,
//! * [`oracle`] — the always-on runtime invariant oracle (packet
//!   conservation, credit balance, stuck-flow detection) whose structured
//!   violation reports ride on every [`metrics::LatencyReport`],
//! * [`runner`] — one entry point that builds any of the networks, applies
//!   any workload, and returns a [`metrics::LatencyReport`].
//!
//! Both packet models keep their retired pre-SoA implementations
//! ([`baldur_net_baseline`], [`router_net_baseline`]) for differential
//! testing: seeded workloads must produce byte-identical reports through
//! the map-based and struct-of-arrays state layouts.

pub mod baldur_net;
pub mod baldur_net_baseline;
pub mod config;
pub mod diagnosis;
pub mod driver;
pub mod droptool;
pub mod faults;
pub mod ideal_net;
pub mod metrics;
pub mod oracle;
pub mod router_net;
pub mod router_net_baseline;
pub mod routing;
pub mod runner;
pub mod traffic;
pub mod workloads;

pub use config::LinkParams;
pub use faults::{FaultKind, FaultPlan};
pub use metrics::LatencyReport;
pub use oracle::{OracleReport, OracleSummary};
pub use runner::{run, run_baseline, NetworkKind, RunConfig, Workload};

//! Fault diagnosis (paper Sec. IV-F).
//!
//! When an error is detected, Baldur can isolate it to a single 2x2 TL
//! switch: test signals driven by the server nodes configure every switch
//! to enable only *one* output port per direction, making each probe
//! packet's path fully deterministic. Sending probes along different
//! deterministic paths and intersecting the failing ones pinpoints the
//! faulty switch.
//!
//! This module implements that procedure against the topology model: a
//! hidden fault predicate marks switches as broken (they kill every packet
//! traversing them), probes walk forced paths, and [`locate_faulty_switch`]
//! narrows the candidate set until a unique suspect remains.

use baldur_sim::rng::StreamRng;
use baldur_topo::graph::NodeId;
use baldur_topo::multibutterfly::MultiButterfly;
use serde::{Deserialize, Serialize};

/// A switch location: `(stage, switch-within-stage)`.
pub type SwitchLoc = (u32, u32);

/// Outcome of a diagnosis session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiagnosisResult {
    /// The isolated switch, if diagnosis converged.
    pub suspect: Option<SwitchLoc>,
    /// Probes transmitted.
    pub probes_used: u32,
    /// Candidate switches remaining (1 on success; more if the probe
    /// budget ran out; 0 if observations were inconsistent with a single
    /// stuck-at-fault).
    pub candidates_left: usize,
}

/// The deterministic path a probe takes in test mode: at every stage the
/// configured path index selects one concrete output port.
pub fn probe_path(
    topo: &MultiButterfly,
    src: NodeId,
    dst: NodeId,
    path_config: &[u32],
) -> Vec<SwitchLoc> {
    assert_eq!(
        path_config.len(),
        topo.stages() as usize,
        "one path index per stage"
    );
    let mut switch = topo.ingress_switch(src);
    let mut path = vec![(0, switch)];
    for s in 0..topo.stages() - 1 {
        let dir = topo.direction(dst, s);
        let targets = topo.next_targets(s, switch, dir).expect("inner stage");
        let choice = path_config[s as usize] % topo.multiplicity();
        switch = targets[choice as usize].switch;
        path.push((s + 1, switch));
    }
    path
}

/// Runs one probe: returns `true` if the probe arrives (no faulty switch
/// on its path).
pub fn run_probe(
    topo: &MultiButterfly,
    src: NodeId,
    dst: NodeId,
    path_config: &[u32],
    is_faulty: &impl Fn(SwitchLoc) -> bool,
) -> bool {
    !probe_path(topo, src, dst, path_config)
        .into_iter()
        .any(is_faulty)
}

/// Locates a single faulty switch by intersecting failing probe paths and
/// subtracting successful ones.
///
/// Converges as long as at least one probe fails within the budget; with
/// randomized sources/destinations/paths each successful probe clears
/// roughly its whole path from the candidate set, so the expected probe
/// count is modest even at thousands of switches.
pub fn locate_faulty_switch(
    topo: &MultiButterfly,
    is_faulty: &impl Fn(SwitchLoc) -> bool,
    seed: u64,
    max_probes: u32,
) -> DiagnosisResult {
    let mut rng = StreamRng::named(seed, "diagnose", 0);
    let stages = topo.stages();
    let width = topo.switches_per_stage();
    // Candidate set only forms after the first failing probe (before
    // that, every switch is implicitly suspect).
    let mut candidates: Option<Vec<bool>> = None;
    let mut cleared = vec![false; (stages * width) as usize];
    let idx = |loc: SwitchLoc| (loc.0 * width + loc.1) as usize;

    let mut probes_used = 0;
    for _ in 0..max_probes {
        let src = NodeId(rng.gen_range(0..topo.nodes()));
        let dst = NodeId(rng.gen_range(0..topo.nodes()));
        let cfg: Vec<u32> = (0..stages)
            .map(|_| rng.gen_range(0..topo.multiplicity()))
            .collect();
        let path = probe_path(topo, src, dst, &cfg);
        let ok = !path.iter().any(|&loc| is_faulty(loc));
        probes_used += 1;

        if ok {
            for loc in path {
                cleared[idx(loc)] = true;
                if let Some(c) = candidates.as_mut() {
                    c[idx(loc)] = false;
                }
            }
        } else {
            match candidates.as_mut() {
                None => {
                    let mut c = vec![false; (stages * width) as usize];
                    for loc in path {
                        if !cleared[idx(loc)] {
                            c[idx(loc)] = true;
                        }
                    }
                    candidates = Some(c);
                }
                Some(c) => {
                    let on_path: Vec<bool> = {
                        let mut p = vec![false; c.len()];
                        for loc in path {
                            p[idx(loc)] = true;
                        }
                        p
                    };
                    for (slot, &keep) in c.iter_mut().zip(on_path.iter()) {
                        *slot = *slot && keep;
                    }
                }
            }
        }

        if let Some(c) = &candidates {
            let remaining: Vec<usize> = c
                .iter()
                .enumerate()
                .filter(|(_, &x)| x)
                .map(|(i, _)| i)
                .collect();
            if remaining.len() <= 1 {
                let suspect = remaining.first().map(|&i| {
                    let i = i as u32;
                    (i / width, i % width)
                });
                return DiagnosisResult {
                    suspect,
                    probes_used,
                    candidates_left: remaining.len(),
                };
            }
        }
    }
    let candidates_left = candidates
        .as_ref()
        .map(|c| c.iter().filter(|&&x| x).count())
        .unwrap_or((stages * width) as usize);
    DiagnosisResult {
        suspect: None,
        probes_used,
        candidates_left,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault_at(loc: SwitchLoc) -> impl Fn(SwitchLoc) -> bool {
        move |l| l == loc
    }

    #[test]
    fn probe_path_is_deterministic_and_valid() {
        let topo = MultiButterfly::new(64, 4, 3);
        let cfg = vec![2, 1, 0, 3, 2, 1];
        let a = probe_path(&topo, NodeId(5), NodeId(40), &cfg);
        let b = probe_path(&topo, NodeId(5), NodeId(40), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), topo.stages() as usize);
        assert_eq!(a[0], (0, 2)); // ingress switch of node 5
        for (i, &(stage, sw)) in a.iter().enumerate() {
            assert_eq!(stage, i as u32);
            assert!(sw < topo.switches_per_stage());
        }
    }

    #[test]
    fn locates_an_injected_fault_everywhere() {
        let topo = MultiButterfly::new(64, 4, 7);
        for &loc in &[(0u32, 0u32), (2, 17), (5, 31), (3, 8)] {
            let r = locate_faulty_switch(&topo, &fault_at(loc), 99, 10_000);
            assert_eq!(r.suspect, Some(loc), "{loc:?}: {r:?}");
            assert_eq!(r.candidates_left, 1);
        }
    }

    #[test]
    fn needs_few_probes_relative_to_switch_count() {
        let topo = MultiButterfly::new(256, 4, 1);
        let r = locate_faulty_switch(&topo, &fault_at((4, 100)), 5, 50_000);
        assert_eq!(r.suspect, Some((4, 100)));
        // 1,024 switches; diagnosis should need well under one probe per
        // switch.
        assert!(r.probes_used < 600, "{}", r.probes_used);
    }

    #[test]
    fn healthy_network_yields_no_suspect() {
        let topo = MultiButterfly::new(64, 2, 5);
        let r = locate_faulty_switch(&topo, &|_| false, 1, 500);
        assert_eq!(r.suspect, None);
        // No failing probe ever formed a candidate set.
        assert!(r.candidates_left > 1);
    }

    #[test]
    fn works_at_multiplicity_1_too() {
        // The paper's base case: with m=1 every route is already
        // deterministic.
        let topo = MultiButterfly::new(64, 1, 11);
        let r = locate_faulty_switch(&topo, &fault_at((3, 20)), 4, 20_000);
        assert_eq!(r.suspect, Some((3, 20)));
    }
}

//! Deterministic fault injection for the network models.
//!
//! The paper's architecture (Sec. IV-F, V) leans entirely on
//! drop-and-retransmit for correctness, which makes component failure a
//! first-class input rather than an exceptional condition: a dead TL
//! switch, a failed inter-stage link, or a dark laser all look — to a
//! source — exactly like contention, and the same timeout/backoff
//! machinery recovers around them (or gives up after its retry budget).
//!
//! This module supplies the *schedule* of such failures:
//!
//! * [`FaultKind`] — what can fail (switches, links, per-port lasers),
//!   recover, or transiently degrade (bit-error bursts derived from the
//!   Sec. IV-F jitter model via [`baldur_tl::health::SwitchHealth`]);
//! * [`FaultEvent`] / [`FaultPlan`] — a seeded, time-ordered schedule of
//!   fault events on the simulation clock. Plans are plain data
//!   (serde-serializable, comparable) so they live inside
//!   [`crate::runner::RunConfig`] and travel with a run's provenance;
//! * [`FaultState`] — the live fault state a network model consults on
//!   its hot paths, with an all-healthy fast-out;
//! * [`nested_kill_set`] — the seeded "fail a fraction of elements"
//!   resolver. Kill sets are *nested*: for one seed, the elements dead at
//!   fraction `f1 < f2` are a subset of those dead at `f2`, so degradation
//!   sweeps are monotone by construction instead of by luck.
//!
//! Everything is a pure function of `(plan seed, sim clock)`; a faulted
//! run is exactly as reproducible as a healthy one.

use baldur_sim::rng::StreamRng;
use baldur_tl::health::SwitchHealth;
use baldur_tl::reliability::JitterModel;
use baldur_topo::mask::EdgeMask;
use serde::{Deserialize, Serialize};

use crate::config::BaldurParams;

/// One kind of fault (or recovery) event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A TL switch dies: every packet reaching it is lost.
    SwitchDown {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
    },
    /// A previously dead switch returns to service (repair).
    SwitchUp {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
    },
    /// One inter-stage link (an output port of a switch) fails; the
    /// arbitration scan skips it, so traffic shifts to the remaining
    /// `m - 1` paths of that direction.
    LinkDown {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
        /// Routing direction (0/1).
        dir: u32,
        /// Path index within the direction (`< m`).
        path: u32,
    },
    /// A failed link returns to service.
    LinkUp {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
        /// Routing direction (0/1).
        dir: u32,
        /// Path index within the direction (`< m`).
        path: u32,
    },
    /// A node's transmit laser dies: frames it sends never enter the
    /// fabric (they are charged as attempts and recovered by the
    /// timeout/backoff path until the laser returns or the retry budget
    /// runs out).
    LaserDown {
        /// The node whose transmitter fails.
        node: u32,
    },
    /// A dead laser returns to service.
    LaserUp {
        /// The node whose transmitter recovers.
        node: u32,
    },
    /// An electrical router dies (electrical baselines only): its queues
    /// flush with upstream credit refunds and arriving packets are
    /// dropped-and-refunded until repair. The staged (Baldur) model
    /// ignores this kind.
    RouterDown {
        /// The router index in the electrical topology.
        router: u32,
    },
    /// A dead router returns to service (repair). Credit state needs no
    /// reconstruction: credits kept flowing back to the dead router while
    /// it was down, so clearing the down flag restores service exactly.
    RouterUp {
        /// The router index in the electrical topology.
        router: u32,
    },
    /// Kill the seeded nested fraction of elements: staged switches in
    /// the Baldur model, routers in the electrical models. Fractions are
    /// cumulative per plan seed — the set at 0.10 contains the set at
    /// 0.05 — so staircase plans and sweep comparisons degrade
    /// monotonically.
    FailFraction {
        /// Fraction of elements to have dead from this event on, in
        /// `[0, 1]`.
        fraction: f64,
    },
    /// Every dead element returns to service (lasers and links included).
    ReviveAll,
    /// A transient bit-error burst: for `duration_ps` after this event,
    /// every switch traversal corrupts the packet with probability
    /// `corruption_prob` (the packet is then dropped — CRC at the NIC —
    /// and recovered by retransmission).
    BitErrorBurst {
        /// Burst length in picoseconds.
        duration_ps: u64,
        /// Per-traversal corruption probability in `[0, 1]`.
        corruption_prob: f64,
    },
}

impl FaultKind {
    /// The matched repair event for a failure kind, or `None` for kinds
    /// that are not a single-element outage (fraction kills, revives,
    /// bursts — a burst expires on its own clock). This is what fault
    /// lifecycles (flapping, maintenance waves, chaos schedules) pair
    /// each failure with so the post-repair state is exactly the
    /// pre-failure state.
    pub fn repair(&self) -> Option<FaultKind> {
        match *self {
            FaultKind::SwitchDown { stage, switch } => Some(FaultKind::SwitchUp { stage, switch }),
            FaultKind::LinkDown {
                stage,
                switch,
                dir,
                path,
            } => Some(FaultKind::LinkUp {
                stage,
                switch,
                dir,
                path,
            }),
            FaultKind::LaserDown { node } => Some(FaultKind::LaserUp { node }),
            FaultKind::RouterDown { router } => Some(FaultKind::RouterUp { router }),
            FaultKind::SwitchUp { .. }
            | FaultKind::LinkUp { .. }
            | FaultKind::LaserUp { .. }
            | FaultKind::RouterUp { .. }
            | FaultKind::FailFraction { .. }
            | FaultKind::ReviveAll
            | FaultKind::BitErrorBurst { .. } => None,
        }
    }

    /// True for events that restore service (the repair side of a
    /// lifecycle): the per-element `*Up` kinds and [`FaultKind::ReviveAll`].
    pub fn is_repair(&self) -> bool {
        matches!(
            self,
            FaultKind::SwitchUp { .. }
                | FaultKind::LinkUp { .. }
                | FaultKind::LaserUp { .. }
                | FaultKind::RouterUp { .. }
                | FaultKind::ReviveAll
        )
    }
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the event applies, on the simulation clock (ps).
    pub at_ps: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of fault events.
///
/// The `seed` feeds only the fault layer (which elements a
/// [`FaultKind::FailFraction`] kills, retry-jitter draws, bit-error
/// coin flips); it is independent of the workload seed so the same
/// failure story can replay under different traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every random choice the fault layer makes.
    pub seed: u64,
    /// The schedule; kept sorted by [`FaultEvent::at_ps`].
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event, keeping the schedule sorted by time (stable for
    /// equal times, so same-instant events apply in insertion order).
    pub fn at(mut self, at_ps: u64, kind: FaultKind) -> Self {
        let pos = self.events.partition_point(|e| e.at_ps <= at_ps);
        self.events.insert(pos, FaultEvent { at_ps, kind });
        self
    }

    /// The canonical degradation-sweep plan: the nested `fraction` of
    /// elements is dead from time zero.
    pub fn degradation(seed: u64, fraction: f64) -> Self {
        FaultPlan::new(seed).at(0, FaultKind::FailFraction { fraction })
    }

    /// A staircase plan: exactly `fractions[i]` of the elements are dead
    /// from `i * epoch_ps`. Each boundary revives everything and then
    /// fails the (nested) fraction, so steps down recover — equal-time
    /// events apply in insertion order.
    pub fn staircase(seed: u64, epoch_ps: u64, fractions: &[f64]) -> Self {
        let mut plan = FaultPlan::new(seed);
        for (i, &fraction) in fractions.iter().enumerate() {
            let at = i as u64 * epoch_ps;
            if i > 0 {
                plan = plan.at(at, FaultKind::ReviveAll);
            }
            plan = plan.at(at, FaultKind::FailFraction { fraction });
        }
        plan
    }

    /// A bit-error burst whose corruption probability is derived from a
    /// degraded switch health under the Sec. IV-F jitter model:
    /// `transitions` routing-bit edges are exposed per traversal.
    pub fn with_burst_from_health(
        self,
        at_ps: u64,
        duration_ps: u64,
        health: SwitchHealth,
        transitions: u32,
    ) -> Self {
        let model = JitterModel::paper();
        self.at(
            at_ps,
            FaultKind::BitErrorBurst {
                duration_ps,
                corruption_prob: health.packet_corruption_probability(&model, transitions),
            },
        )
    }

    /// The distinct nonzero event times, ascending — the fault-epoch
    /// boundaries metrics bucket observations against (epoch 0 is
    /// everything before the first boundary).
    pub fn epoch_boundaries(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .events
            .iter()
            .map(|e| e.at_ps)
            .filter(|&t| t > 0)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The distinct times at which something is repaired (per-element
    /// `*Up` events and [`FaultKind::ReviveAll`]), ascending — the
    /// instants recovery metrics measure time-to-recover from.
    pub fn repair_times(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.kind.is_repair())
            .map(|e| e.at_ps)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Adds a matched fail→repair pair: `kind` (a `*Down` event) at
    /// `at_ps` and its [`FaultKind::repair`] at `at_ps + outage_ps`.
    /// Kinds without a matched repair are ignored.
    pub fn outage(self, at_ps: u64, outage_ps: u64, kind: FaultKind) -> Self {
        match kind.repair() {
            Some(up) => self.at(at_ps, kind).at(at_ps.saturating_add(outage_ps), up),
            None => self,
        }
    }

    /// A flapping element: `cycles` down/up duty cycles of `kind`
    /// starting at `start_ps`, each `down_ps` down then `up_ps` up.
    /// Kinds without a matched repair are ignored. The last cycle's
    /// repair lands at `start_ps + cycles*down_ps + (cycles-1)*up_ps`,
    /// so the plan ends with the element in service.
    pub fn flapping(
        mut self,
        kind: FaultKind,
        start_ps: u64,
        down_ps: u64,
        up_ps: u64,
        cycles: u32,
    ) -> Self {
        if kind.repair().is_none() {
            return self;
        }
        let period = down_ps.saturating_add(up_ps);
        for k in 0..u64::from(cycles) {
            let at = start_ps.saturating_add(k.saturating_mul(period));
            self = self.outage(at, down_ps, kind);
        }
        self
    }

    /// A rolling maintenance wave over every switch of a staged fabric:
    /// switch `(stage, switch)` is taken down for `outage_ps` starting at
    /// `start_ps + (stage*width + switch) * stride_ps`, row-major, one
    /// matched repair per outage. With `stride_ps >= outage_ps` at most
    /// one switch is ever out — the planned-maintenance regime the laser
    /// co-design work treats as normal operation.
    pub fn rolling_maintenance(
        mut self,
        start_ps: u64,
        outage_ps: u64,
        stride_ps: u64,
        stages: u32,
        width: u32,
    ) -> Self {
        for stage in 0..stages {
            for switch in 0..width {
                let i = u64::from(stage) * u64::from(width) + u64::from(switch);
                let at = start_ps.saturating_add(i.saturating_mul(stride_ps));
                self = self.outage(at, outage_ps, FaultKind::SwitchDown { stage, switch });
            }
        }
        self
    }

    /// A seeded random chaos schedule: `profile.pairs` matched
    /// fail→repair pairs over the elements of `shape`, every repair
    /// landing at or before `profile.last_repair_ps` so the plan ends
    /// with the fabric fully healthy. A pure function of
    /// `(seed, shape, profile)` — same inputs, same plan.
    pub fn chaos(seed: u64, shape: &ChaosShape, profile: &ChaosProfile) -> Self {
        let mut plan = FaultPlan::new(seed);
        let window = profile
            .last_repair_ps
            .saturating_sub(profile.warmup_ps)
            .max(2);
        for i in 0..u64::from(profile.pairs) {
            let mut rng = StreamRng::named(seed, "chaospln", i);
            let kind = chaos_kind(&mut rng, shape);
            // Start anywhere in the window's first half; hold for up to
            // half the window so the repair stays inside it.
            let start = profile.warmup_ps + rng.gen_range(0..window / 2);
            let outage = 1 + rng.gen_range(0..window / 2);
            plan = plan.outage(start, outage, kind);
        }
        plan
    }
}

/// How many of each element a [`FaultPlan::chaos`] schedule can hit.
/// With `routers > 0` the schedule targets the electrical model
/// (router outages); otherwise the staged fabric (switches, links,
/// transmit lasers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosShape {
    /// Stages in the staged fabric.
    pub stages: u32,
    /// Switches per stage.
    pub width: u32,
    /// Path multiplicity (output ports per direction).
    pub m: u32,
    /// Server count (transmit lasers).
    pub nodes: u32,
    /// Router count for electrical targets (0 = staged fabric).
    pub routers: u32,
}

/// Timing envelope of a [`FaultPlan::chaos`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// No fault fires before this (the pre-fault baseline window the
    /// recovery metrics measure goodput against).
    pub warmup_ps: u64,
    /// Every repair lands at or before this.
    pub last_repair_ps: u64,
    /// Matched fail→repair pairs to draw.
    pub pairs: u32,
}

fn chaos_kind(rng: &mut StreamRng, shape: &ChaosShape) -> FaultKind {
    if shape.routers > 0 {
        return FaultKind::RouterDown {
            router: rng.gen_range(0..shape.routers),
        };
    }
    let stage = rng.gen_range(0..shape.stages.max(1));
    let switch = rng.gen_range(0..shape.width.max(1));
    match rng.gen_range(0u32..4) {
        // Half the pairs are link outages: the mildest fault (traffic
        // shifts to the other m-1 paths), so chaos exercises partial as
        // well as total element loss.
        0 | 1 => FaultKind::LinkDown {
            stage,
            switch,
            dir: rng.gen_range(0u32..2),
            path: rng.gen_range(0..shape.m.max(1)),
        },
        2 => FaultKind::SwitchDown { stage, switch },
        _ => FaultKind::LaserDown {
            node: rng.gen_range(0..shape.nodes.max(1)),
        },
    }
}

/// Greedy delta-debugging over a failing fault plan: repeatedly try
/// dropping each event and keep the removal whenever `fails` still
/// returns true, looping until no single removal preserves the failure.
/// The result is 1-minimal — removing any one remaining event makes the
/// failure disappear — which is what the chaos harness prints as a
/// reproduction when an oracle violation shows up.
///
/// `fails` must be deterministic (a pure function of the plan); it is
/// called O(n²) times in the worst case for an n-event plan.
pub fn shrink_plan(plan: &FaultPlan, mut fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    if !fails(&current) {
        return current;
    }
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < current.events.len() {
            let mut candidate = current.clone();
            candidate.events.remove(i);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
                // Same index now holds the next event; retry it.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

/// The seeded nested kill set: which of `total` elements are dead at
/// `fraction`. For a fixed `seed` the set grows monotonically with
/// `fraction` (it is a prefix of one fixed random permutation), which is
/// what makes degradation curves monotone by construction.
pub fn nested_kill_set(seed: u64, total: u32, fraction: f64) -> Vec<bool> {
    let mut dead = vec![false; total as usize];
    let kill = ((f64::from(total) * fraction.clamp(0.0, 1.0)).round() as usize).min(dead.len());
    if kill == 0 {
        return dead;
    }
    let mut rng = StreamRng::named(seed, "faultset", 0);
    for idx in rng.permutation(total as usize).into_iter().take(kill) {
        if let Some(slot) = dead.get_mut(idx) {
            *slot = true;
        }
    }
    dead
}

/// The retransmission timeout for `attempt` (1-based) with the NIC's
/// current extra backoff, plus the seeded per-(packet, attempt) jitter
/// extension when [`BaldurParams::retry_jitter_pct`] is nonzero.
///
/// Jitter desynchronizes sources that lost packets to the same fault at
/// the same instant (their pure-BEB retries would otherwise collide
/// forever in lockstep); capping it below 100% of the base keeps the
/// schedule monotone in `attempt` up to the backoff cap. Deterministic:
/// a pure function of `(params, seed, pkt, attempt, backoff_exp)`.
pub fn jittered_timeout_ps(
    params: &BaldurParams,
    seed: u64,
    pkt: u32,
    attempt: u32,
    backoff_exp: u32,
) -> u64 {
    let base = params.backoff_timeout_ps(attempt, backoff_exp);
    let pct = u64::from(params.retry_jitter_pct.min(99));
    if pct == 0 {
        return base;
    }
    let span = (base / 100).saturating_mul(pct).max(1);
    let mut rng = StreamRng::named(
        seed,
        "retryjit",
        (u64::from(pkt) << 32) | u64::from(attempt),
    );
    base + rng.gen_range(0..span)
}

/// Live fault state for the staged (Baldur) network model.
///
/// All queries are O(1); [`FaultState::is_all_healthy`] lets the model
/// skip every check in the (default) fault-free configuration, keeping
/// the healthy hot path bit-identical to the pre-fault-layer code.
#[derive(Debug, Clone)]
pub struct FaultState {
    stages: u32,
    width: u32,
    m: u32,
    switch_down: Vec<bool>,
    dead_switches: usize,
    links: EdgeMask,
    laser_down: Vec<bool>,
    dead_lasers: usize,
    bit_error_prob: f64,
    bit_error_until_ps: u64,
}

impl FaultState {
    /// An all-healthy state for a staged topology of `stages` stages of
    /// `width` switches with multiplicity `m`, serving `nodes` servers.
    pub fn healthy(stages: u32, width: u32, m: u32, nodes: u32) -> Self {
        FaultState {
            stages,
            width,
            m,
            switch_down: vec![false; (stages * width) as usize],
            dead_switches: 0,
            links: EdgeMask::new(stages, width * 2 * m),
            laser_down: vec![false; nodes as usize],
            dead_lasers: 0,
            bit_error_prob: 0.0,
            bit_error_until_ps: 0,
        }
    }

    /// True when nothing is failed and no burst is armed — the hot-path
    /// fast-out.
    #[inline]
    pub fn is_all_healthy(&self) -> bool {
        self.dead_switches == 0
            && self.dead_lasers == 0
            && self.links.is_all_healthy()
            && self.bit_error_prob <= 0.0
    }

    fn switch_index(&self, stage: u32, switch: u32) -> Option<usize> {
        if stage < self.stages && switch < self.width {
            Some((stage * self.width + switch) as usize)
        } else {
            None
        }
    }

    fn set_switch(&mut self, stage: u32, switch: u32, down: bool) {
        let Some(i) = self.switch_index(stage, switch) else {
            return;
        };
        if let Some(slot) = self.switch_down.get_mut(i) {
            if *slot != down {
                *slot = down;
                if down {
                    self.dead_switches += 1;
                } else {
                    self.dead_switches -= 1;
                }
            }
        }
    }

    fn set_laser(&mut self, node: u32, down: bool) {
        if let Some(l) = self.laser_down.get_mut(node as usize) {
            if *l != down {
                *l = down;
                if down {
                    self.dead_lasers += 1;
                } else {
                    self.dead_lasers -= 1;
                }
            }
        }
    }

    /// True when switch `(stage, switch)` is dead.
    #[inline]
    pub fn switch_is_down(&self, stage: u32, switch: u32) -> bool {
        match self.switch_index(stage, switch) {
            Some(i) => self.switch_down.get(i).copied().unwrap_or(false),
            None => false,
        }
    }

    /// True when the output port `(switch, dir, path)` of `stage` is on
    /// a failed link.
    #[inline]
    pub fn link_is_down(&self, stage: u32, switch: u32, dir: u32, path: u32) -> bool {
        self.links
            .is_failed(stage, switch * 2 * self.m + dir * self.m + path)
    }

    /// True when `node`'s transmit laser is dead.
    #[inline]
    pub fn laser_is_down(&self, node: u32) -> bool {
        self.laser_down.get(node as usize).copied().unwrap_or(false)
    }

    /// The corruption probability per traversal at `now_ps` (0 outside
    /// any burst).
    #[inline]
    pub fn corruption_prob(&self, now_ps: u64) -> f64 {
        if now_ps < self.bit_error_until_ps {
            self.bit_error_prob
        } else {
            0.0
        }
    }

    /// The live inter-stage link mask (for exact-repair comparisons:
    /// after a matched fail→repair plan this must equal a never-faulted
    /// state's mask).
    pub fn links(&self) -> &EdgeMask {
        &self.links
    }

    /// How many switches are currently dead.
    pub fn dead_switch_count(&self) -> usize {
        self.dead_switches
    }

    /// How many transmit lasers are currently dead.
    pub fn dead_laser_count(&self) -> usize {
        self.dead_lasers
    }

    /// The [`SwitchHealth`] the fault layer implies for `(stage, switch)`
    /// — `Dead` while the switch is down, `Healthy` otherwise. This is
    /// the `tl::health` view of the fault state, and the value
    /// exact-repair tests compare against a never-faulted fabric.
    pub fn switch_health(&self, stage: u32, switch: u32) -> SwitchHealth {
        if self.switch_is_down(stage, switch) {
            SwitchHealth::Dead
        } else {
            SwitchHealth::Healthy
        }
    }

    /// Applies one fault event (at simulation time `now_ps`, using the
    /// plan `seed` for [`FaultKind::FailFraction`] resolution).
    pub fn apply(&mut self, seed: u64, now_ps: u64, kind: &FaultKind) {
        match *kind {
            FaultKind::SwitchDown { stage, switch } => self.set_switch(stage, switch, true),
            FaultKind::SwitchUp { stage, switch } => self.set_switch(stage, switch, false),
            FaultKind::LinkDown {
                stage,
                switch,
                dir,
                path,
            } => self
                .links
                .fail(stage, switch * 2 * self.m + dir * self.m + path),
            FaultKind::LinkUp {
                stage,
                switch,
                dir,
                path,
            } => self
                .links
                .restore(stage, switch * 2 * self.m + dir * self.m + path),
            FaultKind::LaserDown { node } => self.set_laser(node, true),
            FaultKind::LaserUp { node } => self.set_laser(node, false),
            // Router lifecycles target the electrical models; the staged
            // fabric has no routers.
            FaultKind::RouterDown { .. } | FaultKind::RouterUp { .. } => {}
            FaultKind::FailFraction { fraction } => {
                let dead = nested_kill_set(seed, self.stages * self.width, fraction);
                for (i, &d) in dead.iter().enumerate() {
                    if d {
                        let (stage, switch) = (i as u32 / self.width, i as u32 % self.width);
                        self.set_switch(stage, switch, true);
                    }
                }
            }
            FaultKind::ReviveAll => {
                self.switch_down.iter_mut().for_each(|d| *d = false);
                self.dead_switches = 0;
                self.laser_down.iter_mut().for_each(|d| *d = false);
                self.dead_lasers = 0;
                self.links.restore_all();
            }
            FaultKind::BitErrorBurst {
                duration_ps,
                corruption_prob,
            } => {
                self.bit_error_prob = corruption_prob.clamp(0.0, 1.0);
                self.bit_error_until_ps = now_ps.saturating_add(duration_ps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stays_sorted_and_reports_epochs() {
        let plan = FaultPlan::new(7)
            .at(5_000, FaultKind::ReviveAll)
            .at(
                1_000,
                FaultKind::SwitchDown {
                    stage: 0,
                    switch: 1,
                },
            )
            .at(5_000, FaultKind::LaserDown { node: 3 })
            .at(0, FaultKind::FailFraction { fraction: 0.05 });
        let times: Vec<u64> = plan.events.iter().map(|e| e.at_ps).collect();
        assert_eq!(times, vec![0, 1_000, 5_000, 5_000]);
        assert_eq!(plan.epoch_boundaries(), vec![1_000, 5_000]);
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::default().epoch_boundaries().is_empty());
    }

    #[test]
    fn kill_sets_are_nested_and_sized() {
        let total = 64;
        let mut last = 0;
        let mut prev = vec![false; total as usize];
        for fraction in [0.0, 0.05, 0.10, 0.20, 0.50, 1.0] {
            let dead = nested_kill_set(9, total, fraction);
            let count = dead.iter().filter(|&&d| d).count();
            assert_eq!(count, (f64::from(total) * fraction).round() as usize);
            assert!(count >= last);
            for i in 0..dead.len() {
                assert!(!prev[i] || dead[i], "kill sets must nest");
            }
            last = count;
            prev = dead;
        }
        // Different seeds pick different sets.
        assert_ne!(nested_kill_set(1, 64, 0.25), nested_kill_set(2, 64, 0.25));
        // Same seed is reproducible.
        assert_eq!(nested_kill_set(5, 64, 0.25), nested_kill_set(5, 64, 0.25));
    }

    #[test]
    fn fault_state_round_trips_every_kind() {
        let mut st = FaultState::healthy(4, 8, 3, 16);
        assert!(st.is_all_healthy());
        st.apply(
            1,
            0,
            &FaultKind::SwitchDown {
                stage: 2,
                switch: 5,
            },
        );
        st.apply(
            1,
            0,
            &FaultKind::LinkDown {
                stage: 1,
                switch: 3,
                dir: 1,
                path: 2,
            },
        );
        st.apply(1, 0, &FaultKind::LaserDown { node: 7 });
        assert!(st.switch_is_down(2, 5));
        assert!(!st.switch_is_down(2, 4));
        assert!(st.link_is_down(1, 3, 1, 2));
        assert!(!st.link_is_down(1, 3, 1, 1));
        assert!(st.laser_is_down(7));
        assert!(!st.is_all_healthy());
        st.apply(
            1,
            0,
            &FaultKind::SwitchUp {
                stage: 2,
                switch: 5,
            },
        );
        st.apply(
            1,
            0,
            &FaultKind::LinkUp {
                stage: 1,
                switch: 3,
                dir: 1,
                path: 2,
            },
        );
        st.apply(1, 0, &FaultKind::LaserUp { node: 7 });
        assert!(st.is_all_healthy());
    }

    #[test]
    fn fail_fraction_and_revive_all() {
        let mut st = FaultState::healthy(4, 8, 3, 16);
        st.apply(9, 0, &FaultKind::FailFraction { fraction: 0.25 });
        let dead: usize = (0..4)
            .flat_map(|s| (0..8).map(move |w| (s, w)))
            .filter(|&(s, w)| st.switch_is_down(s, w))
            .count();
        assert_eq!(dead, 8);
        st.apply(9, 0, &FaultKind::ReviveAll);
        assert!(st.is_all_healthy());
    }

    #[test]
    fn bursts_expire_on_the_clock() {
        let mut st = FaultState::healthy(2, 4, 2, 8);
        st.apply(
            3,
            1_000,
            &FaultKind::BitErrorBurst {
                duration_ps: 500,
                corruption_prob: 0.25,
            },
        );
        assert!((st.corruption_prob(1_000) - 0.25).abs() < 1e-12);
        assert!((st.corruption_prob(1_499) - 0.25).abs() < 1e-12);
        assert!(st.corruption_prob(1_500).abs() < 1e-12);
        assert!(!st.is_all_healthy(), "an armed burst is not healthy");
    }

    #[test]
    fn health_derived_bursts_scale_with_degradation() {
        let mild = FaultPlan::new(1).with_burst_from_health(
            0,
            1_000,
            SwitchHealth::Degraded { margin_scale: 0.6 },
            8,
        );
        let severe = FaultPlan::new(1).with_burst_from_health(
            0,
            1_000,
            SwitchHealth::Degraded { margin_scale: 0.2 },
            8,
        );
        let prob = |p: &FaultPlan| match p.events[0].kind {
            FaultKind::BitErrorBurst {
                corruption_prob, ..
            } => corruption_prob,
            _ => unreachable!(),
        };
        assert!(prob(&severe) > prob(&mild));
        assert!(prob(&mild) > 0.0 && prob(&severe) < 1.0);
    }

    #[test]
    fn repair_pairs_cover_every_outage_kind() {
        let down = [
            FaultKind::SwitchDown {
                stage: 1,
                switch: 2,
            },
            FaultKind::LinkDown {
                stage: 0,
                switch: 1,
                dir: 1,
                path: 0,
            },
            FaultKind::LaserDown { node: 5 },
            FaultKind::RouterDown { router: 3 },
        ];
        for kind in down {
            let up = kind.repair().expect("every outage kind has a repair");
            assert!(up.is_repair());
            assert!(!kind.is_repair());
            assert_eq!(up.repair(), None, "repairs have no repair");
        }
        assert_eq!(FaultKind::ReviveAll.repair(), None);
        assert_eq!(FaultKind::FailFraction { fraction: 0.1 }.repair(), None);
        assert!(FaultKind::ReviveAll.is_repair());
    }

    #[test]
    fn flapping_builds_matched_duty_cycles() {
        let plan = FaultPlan::new(1).flapping(FaultKind::LaserDown { node: 2 }, 1_000, 300, 700, 3);
        let times: Vec<u64> = plan.events.iter().map(|e| e.at_ps).collect();
        assert_eq!(times, vec![1_000, 1_300, 2_000, 2_300, 3_000, 3_300]);
        assert_eq!(plan.repair_times(), vec![1_300, 2_300, 3_300]);
        // Unrepairable kinds are ignored, not half-scheduled.
        let noop = FaultPlan::new(1).flapping(FaultKind::ReviveAll, 0, 10, 10, 4);
        assert!(noop.is_empty());
    }

    #[test]
    fn rolling_maintenance_waves_end_healthy() {
        let plan = FaultPlan::new(3).rolling_maintenance(500, 100, 250, 2, 3);
        assert_eq!(plan.events.len(), 2 * 3 * 2);
        let mut st = FaultState::healthy(2, 3, 2, 8);
        for e in &plan.events {
            st.apply(plan.seed, e.at_ps, &e.kind);
        }
        assert!(st.is_all_healthy());
        // stride > outage: at most one switch is down at any instant.
        let mut st = FaultState::healthy(2, 3, 2, 8);
        let mut i = 0;
        while i < plan.events.len() {
            let t = plan.events[i].at_ps;
            while i < plan.events.len() && plan.events[i].at_ps == t {
                st.apply(plan.seed, t, &plan.events[i].kind);
                i += 1;
            }
            assert!(st.dead_switch_count() <= 1, "at t={t}");
        }
    }

    #[test]
    fn chaos_plans_are_matched_seeded_and_bounded() {
        let shape = ChaosShape {
            stages: 3,
            width: 8,
            m: 3,
            nodes: 16,
            routers: 0,
        };
        let profile = ChaosProfile {
            warmup_ps: 10_000,
            last_repair_ps: 90_000,
            pairs: 12,
        };
        let plan = FaultPlan::chaos(42, &shape, &profile);
        assert_eq!(plan, FaultPlan::chaos(42, &shape, &profile));
        assert_ne!(plan, FaultPlan::chaos(43, &shape, &profile));
        assert_eq!(plan.events.len(), 24, "every pair lands both halves");
        for e in &plan.events {
            assert!(e.at_ps >= profile.warmup_ps);
            assert!(e.at_ps <= profile.last_repair_ps);
        }
        // Router-shaped chaos only draws router lifecycles.
        let rshape = ChaosShape {
            routers: 6,
            ..shape
        };
        let rplan = FaultPlan::chaos(7, &rshape, &profile);
        assert!(rplan.events.iter().all(|e| matches!(
            e.kind,
            FaultKind::RouterDown { .. } | FaultKind::RouterUp { .. }
        )));
    }

    #[test]
    fn matched_plans_restore_fault_state_byte_identically() {
        let shape = ChaosShape {
            stages: 3,
            width: 8,
            m: 3,
            nodes: 16,
            routers: 0,
        };
        let profile = ChaosProfile {
            warmup_ps: 5_000,
            last_repair_ps: 200_000,
            pairs: 20,
        };
        let fresh = FaultState::healthy(shape.stages, shape.width, shape.m, shape.nodes);
        for seed in 0..32 {
            let plan = FaultPlan::chaos(seed, &shape, &profile);
            let mut st = FaultState::healthy(shape.stages, shape.width, shape.m, shape.nodes);
            for e in &plan.events {
                st.apply(plan.seed, e.at_ps, &e.kind);
            }
            // EdgeMask, switch health, and laser state all restored
            // exactly; the Debug rendering covers every field, so equal
            // strings is byte-identical state.
            assert!(st.is_all_healthy(), "seed {seed}");
            assert_eq!(st.links(), fresh.links(), "seed {seed}");
            for stage in 0..shape.stages {
                for switch in 0..shape.width {
                    assert_eq!(
                        st.switch_health(stage, switch),
                        SwitchHealth::Healthy,
                        "seed {seed}"
                    );
                }
            }
            assert_eq!(format!("{st:?}"), format!("{fresh:?}"), "seed {seed}");
        }
    }

    #[test]
    fn shrink_finds_the_one_guilty_event() {
        // A synthetic predicate: the "violation" persists exactly while
        // the plan still contains LaserDown{99} (a node index chaos can
        // never draw, so only the appended event matches). The shrinker must strip
        // all 15 innocent events and keep that one.
        let shape = ChaosShape {
            stages: 3,
            width: 8,
            m: 3,
            nodes: 16,
            routers: 0,
        };
        let profile = ChaosProfile {
            warmup_ps: 1_000,
            last_repair_ps: 50_000,
            pairs: 7,
        };
        let plan =
            FaultPlan::chaos(11, &shape, &profile).at(2_500, FaultKind::LaserDown { node: 99 });
        let guilty = |p: &FaultPlan| {
            p.events
                .iter()
                .any(|e| e.kind == FaultKind::LaserDown { node: 99 })
        };
        assert!(plan.events.len() > 1);
        let shrunk = shrink_plan(&plan, guilty);
        assert_eq!(shrunk.events.len(), 1);
        assert_eq!(shrunk.events[0].kind, FaultKind::LaserDown { node: 99 });
        assert_eq!(shrunk.seed, plan.seed);
        // A plan that never fails comes back untouched.
        let healthy = FaultPlan::chaos(11, &shape, &profile);
        assert_eq!(shrink_plan(&healthy, guilty), healthy);
    }

    #[test]
    fn jittered_timeouts_are_deterministic_and_bounded() {
        let mut params = BaldurParams::paper_1k();
        params.retry_jitter_pct = 50;
        for attempt in 1..=10 {
            let a = jittered_timeout_ps(&params, 42, 7, attempt, 0);
            let b = jittered_timeout_ps(&params, 42, 7, attempt, 0);
            assert_eq!(a, b, "same (seed, pkt, attempt) must agree");
            let base = params.backoff_timeout_ps(attempt, 0);
            assert!(a >= base && a < base + base / 2 + 1, "attempt {attempt}");
        }
        // Different packets draw different jitter.
        let xs: Vec<u64> = (0..16)
            .map(|pkt| jittered_timeout_ps(&params, 42, pkt, 1, 0))
            .collect();
        let all_same = xs.iter().all(|&x| x == xs[0]);
        assert!(!all_same, "{xs:?}");
        // Jitter off is the pure BEB schedule.
        params.retry_jitter_pct = 0;
        assert_eq!(
            jittered_timeout_ps(&params, 42, 7, 3, 1),
            params.backoff_timeout_ps(3, 1)
        );
    }
}

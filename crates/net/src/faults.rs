//! Deterministic fault injection for the network models.
//!
//! The paper's architecture (Sec. IV-F, V) leans entirely on
//! drop-and-retransmit for correctness, which makes component failure a
//! first-class input rather than an exceptional condition: a dead TL
//! switch, a failed inter-stage link, or a dark laser all look — to a
//! source — exactly like contention, and the same timeout/backoff
//! machinery recovers around them (or gives up after its retry budget).
//!
//! This module supplies the *schedule* of such failures:
//!
//! * [`FaultKind`] — what can fail (switches, links, per-port lasers),
//!   recover, or transiently degrade (bit-error bursts derived from the
//!   Sec. IV-F jitter model via [`baldur_tl::health::SwitchHealth`]);
//! * [`FaultEvent`] / [`FaultPlan`] — a seeded, time-ordered schedule of
//!   fault events on the simulation clock. Plans are plain data
//!   (serde-serializable, comparable) so they live inside
//!   [`crate::runner::RunConfig`] and travel with a run's provenance;
//! * [`FaultState`] — the live fault state a network model consults on
//!   its hot paths, with an all-healthy fast-out;
//! * [`nested_kill_set`] — the seeded "fail a fraction of elements"
//!   resolver. Kill sets are *nested*: for one seed, the elements dead at
//!   fraction `f1 < f2` are a subset of those dead at `f2`, so degradation
//!   sweeps are monotone by construction instead of by luck.
//!
//! Everything is a pure function of `(plan seed, sim clock)`; a faulted
//! run is exactly as reproducible as a healthy one.

use baldur_sim::rng::StreamRng;
use baldur_tl::health::SwitchHealth;
use baldur_tl::reliability::JitterModel;
use baldur_topo::mask::EdgeMask;
use serde::{Deserialize, Serialize};

use crate::config::BaldurParams;

/// One kind of fault (or recovery) event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A TL switch dies: every packet reaching it is lost.
    SwitchDown {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
    },
    /// A previously dead switch returns to service (repair).
    SwitchUp {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
    },
    /// One inter-stage link (an output port of a switch) fails; the
    /// arbitration scan skips it, so traffic shifts to the remaining
    /// `m - 1` paths of that direction.
    LinkDown {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
        /// Routing direction (0/1).
        dir: u32,
        /// Path index within the direction (`< m`).
        path: u32,
    },
    /// A failed link returns to service.
    LinkUp {
        /// Stage index.
        stage: u32,
        /// Switch index within the stage.
        switch: u32,
        /// Routing direction (0/1).
        dir: u32,
        /// Path index within the direction (`< m`).
        path: u32,
    },
    /// A node's transmit laser dies: frames it sends never enter the
    /// fabric (they are charged as attempts and recovered by the
    /// timeout/backoff path until the laser returns or the retry budget
    /// runs out).
    LaserDown {
        /// The node whose transmitter fails.
        node: u32,
    },
    /// A dead laser returns to service.
    LaserUp {
        /// The node whose transmitter recovers.
        node: u32,
    },
    /// Kill the seeded nested fraction of elements: staged switches in
    /// the Baldur model, routers in the electrical models. Fractions are
    /// cumulative per plan seed — the set at 0.10 contains the set at
    /// 0.05 — so staircase plans and sweep comparisons degrade
    /// monotonically.
    FailFraction {
        /// Fraction of elements to have dead from this event on, in
        /// `[0, 1]`.
        fraction: f64,
    },
    /// Every dead element returns to service (lasers and links included).
    ReviveAll,
    /// A transient bit-error burst: for `duration_ps` after this event,
    /// every switch traversal corrupts the packet with probability
    /// `corruption_prob` (the packet is then dropped — CRC at the NIC —
    /// and recovered by retransmission).
    BitErrorBurst {
        /// Burst length in picoseconds.
        duration_ps: u64,
        /// Per-traversal corruption probability in `[0, 1]`.
        corruption_prob: f64,
    },
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the event applies, on the simulation clock (ps).
    pub at_ps: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of fault events.
///
/// The `seed` feeds only the fault layer (which elements a
/// [`FaultKind::FailFraction`] kills, retry-jitter draws, bit-error
/// coin flips); it is independent of the workload seed so the same
/// failure story can replay under different traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every random choice the fault layer makes.
    pub seed: u64,
    /// The schedule; kept sorted by [`FaultEvent::at_ps`].
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event, keeping the schedule sorted by time (stable for
    /// equal times, so same-instant events apply in insertion order).
    pub fn at(mut self, at_ps: u64, kind: FaultKind) -> Self {
        let pos = self.events.partition_point(|e| e.at_ps <= at_ps);
        self.events.insert(pos, FaultEvent { at_ps, kind });
        self
    }

    /// The canonical degradation-sweep plan: the nested `fraction` of
    /// elements is dead from time zero.
    pub fn degradation(seed: u64, fraction: f64) -> Self {
        FaultPlan::new(seed).at(0, FaultKind::FailFraction { fraction })
    }

    /// A staircase plan: exactly `fractions[i]` of the elements are dead
    /// from `i * epoch_ps`. Each boundary revives everything and then
    /// fails the (nested) fraction, so steps down recover — equal-time
    /// events apply in insertion order.
    pub fn staircase(seed: u64, epoch_ps: u64, fractions: &[f64]) -> Self {
        let mut plan = FaultPlan::new(seed);
        for (i, &fraction) in fractions.iter().enumerate() {
            let at = i as u64 * epoch_ps;
            if i > 0 {
                plan = plan.at(at, FaultKind::ReviveAll);
            }
            plan = plan.at(at, FaultKind::FailFraction { fraction });
        }
        plan
    }

    /// A bit-error burst whose corruption probability is derived from a
    /// degraded switch health under the Sec. IV-F jitter model:
    /// `transitions` routing-bit edges are exposed per traversal.
    pub fn with_burst_from_health(
        self,
        at_ps: u64,
        duration_ps: u64,
        health: SwitchHealth,
        transitions: u32,
    ) -> Self {
        let model = JitterModel::paper();
        self.at(
            at_ps,
            FaultKind::BitErrorBurst {
                duration_ps,
                corruption_prob: health.packet_corruption_probability(&model, transitions),
            },
        )
    }

    /// The distinct nonzero event times, ascending — the fault-epoch
    /// boundaries metrics bucket observations against (epoch 0 is
    /// everything before the first boundary).
    pub fn epoch_boundaries(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .events
            .iter()
            .map(|e| e.at_ps)
            .filter(|&t| t > 0)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

/// The seeded nested kill set: which of `total` elements are dead at
/// `fraction`. For a fixed `seed` the set grows monotonically with
/// `fraction` (it is a prefix of one fixed random permutation), which is
/// what makes degradation curves monotone by construction.
pub fn nested_kill_set(seed: u64, total: u32, fraction: f64) -> Vec<bool> {
    let mut dead = vec![false; total as usize];
    let kill = ((f64::from(total) * fraction.clamp(0.0, 1.0)).round() as usize).min(dead.len());
    if kill == 0 {
        return dead;
    }
    let mut rng = StreamRng::named(seed, "faultset", 0);
    for idx in rng.permutation(total as usize).into_iter().take(kill) {
        if let Some(slot) = dead.get_mut(idx) {
            *slot = true;
        }
    }
    dead
}

/// The retransmission timeout for `attempt` (1-based) with the NIC's
/// current extra backoff, plus the seeded per-(packet, attempt) jitter
/// extension when [`BaldurParams::retry_jitter_pct`] is nonzero.
///
/// Jitter desynchronizes sources that lost packets to the same fault at
/// the same instant (their pure-BEB retries would otherwise collide
/// forever in lockstep); capping it below 100% of the base keeps the
/// schedule monotone in `attempt` up to the backoff cap. Deterministic:
/// a pure function of `(params, seed, pkt, attempt, backoff_exp)`.
pub fn jittered_timeout_ps(
    params: &BaldurParams,
    seed: u64,
    pkt: u32,
    attempt: u32,
    backoff_exp: u32,
) -> u64 {
    let base = params.backoff_timeout_ps(attempt, backoff_exp);
    let pct = u64::from(params.retry_jitter_pct.min(99));
    if pct == 0 {
        return base;
    }
    let span = (base / 100).saturating_mul(pct).max(1);
    let mut rng = StreamRng::named(
        seed,
        "retryjit",
        (u64::from(pkt) << 32) | u64::from(attempt),
    );
    base + rng.gen_range(0..span)
}

/// Live fault state for the staged (Baldur) network model.
///
/// All queries are O(1); [`FaultState::is_all_healthy`] lets the model
/// skip every check in the (default) fault-free configuration, keeping
/// the healthy hot path bit-identical to the pre-fault-layer code.
#[derive(Debug, Clone)]
pub struct FaultState {
    stages: u32,
    width: u32,
    m: u32,
    switch_down: Vec<bool>,
    dead_switches: usize,
    links: EdgeMask,
    laser_down: Vec<bool>,
    dead_lasers: usize,
    bit_error_prob: f64,
    bit_error_until_ps: u64,
}

impl FaultState {
    /// An all-healthy state for a staged topology of `stages` stages of
    /// `width` switches with multiplicity `m`, serving `nodes` servers.
    pub fn healthy(stages: u32, width: u32, m: u32, nodes: u32) -> Self {
        FaultState {
            stages,
            width,
            m,
            switch_down: vec![false; (stages * width) as usize],
            dead_switches: 0,
            links: EdgeMask::new(stages, width * 2 * m),
            laser_down: vec![false; nodes as usize],
            dead_lasers: 0,
            bit_error_prob: 0.0,
            bit_error_until_ps: 0,
        }
    }

    /// True when nothing is failed and no burst is armed — the hot-path
    /// fast-out.
    #[inline]
    pub fn is_all_healthy(&self) -> bool {
        self.dead_switches == 0
            && self.dead_lasers == 0
            && self.links.is_all_healthy()
            && self.bit_error_prob <= 0.0
    }

    fn switch_index(&self, stage: u32, switch: u32) -> Option<usize> {
        if stage < self.stages && switch < self.width {
            Some((stage * self.width + switch) as usize)
        } else {
            None
        }
    }

    fn set_switch(&mut self, stage: u32, switch: u32, down: bool) {
        let Some(i) = self.switch_index(stage, switch) else {
            return;
        };
        if let Some(slot) = self.switch_down.get_mut(i) {
            if *slot != down {
                *slot = down;
                if down {
                    self.dead_switches += 1;
                } else {
                    self.dead_switches -= 1;
                }
            }
        }
    }

    fn set_laser(&mut self, node: u32, down: bool) {
        if let Some(l) = self.laser_down.get_mut(node as usize) {
            if *l != down {
                *l = down;
                if down {
                    self.dead_lasers += 1;
                } else {
                    self.dead_lasers -= 1;
                }
            }
        }
    }

    /// True when switch `(stage, switch)` is dead.
    #[inline]
    pub fn switch_is_down(&self, stage: u32, switch: u32) -> bool {
        match self.switch_index(stage, switch) {
            Some(i) => self.switch_down.get(i).copied().unwrap_or(false),
            None => false,
        }
    }

    /// True when the output port `(switch, dir, path)` of `stage` is on
    /// a failed link.
    #[inline]
    pub fn link_is_down(&self, stage: u32, switch: u32, dir: u32, path: u32) -> bool {
        self.links
            .is_failed(stage, switch * 2 * self.m + dir * self.m + path)
    }

    /// True when `node`'s transmit laser is dead.
    #[inline]
    pub fn laser_is_down(&self, node: u32) -> bool {
        self.laser_down.get(node as usize).copied().unwrap_or(false)
    }

    /// The corruption probability per traversal at `now_ps` (0 outside
    /// any burst).
    #[inline]
    pub fn corruption_prob(&self, now_ps: u64) -> f64 {
        if now_ps < self.bit_error_until_ps {
            self.bit_error_prob
        } else {
            0.0
        }
    }

    /// Applies one fault event (at simulation time `now_ps`, using the
    /// plan `seed` for [`FaultKind::FailFraction`] resolution).
    pub fn apply(&mut self, seed: u64, now_ps: u64, kind: &FaultKind) {
        match *kind {
            FaultKind::SwitchDown { stage, switch } => self.set_switch(stage, switch, true),
            FaultKind::SwitchUp { stage, switch } => self.set_switch(stage, switch, false),
            FaultKind::LinkDown {
                stage,
                switch,
                dir,
                path,
            } => self
                .links
                .fail(stage, switch * 2 * self.m + dir * self.m + path),
            FaultKind::LinkUp {
                stage,
                switch,
                dir,
                path,
            } => self
                .links
                .restore(stage, switch * 2 * self.m + dir * self.m + path),
            FaultKind::LaserDown { node } => self.set_laser(node, true),
            FaultKind::LaserUp { node } => self.set_laser(node, false),
            FaultKind::FailFraction { fraction } => {
                let dead = nested_kill_set(seed, self.stages * self.width, fraction);
                for (i, &d) in dead.iter().enumerate() {
                    if d {
                        let (stage, switch) = (i as u32 / self.width, i as u32 % self.width);
                        self.set_switch(stage, switch, true);
                    }
                }
            }
            FaultKind::ReviveAll => {
                self.switch_down.iter_mut().for_each(|d| *d = false);
                self.dead_switches = 0;
                self.laser_down.iter_mut().for_each(|d| *d = false);
                self.dead_lasers = 0;
                self.links.restore_all();
            }
            FaultKind::BitErrorBurst {
                duration_ps,
                corruption_prob,
            } => {
                self.bit_error_prob = corruption_prob.clamp(0.0, 1.0);
                self.bit_error_until_ps = now_ps.saturating_add(duration_ps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stays_sorted_and_reports_epochs() {
        let plan = FaultPlan::new(7)
            .at(5_000, FaultKind::ReviveAll)
            .at(
                1_000,
                FaultKind::SwitchDown {
                    stage: 0,
                    switch: 1,
                },
            )
            .at(5_000, FaultKind::LaserDown { node: 3 })
            .at(0, FaultKind::FailFraction { fraction: 0.05 });
        let times: Vec<u64> = plan.events.iter().map(|e| e.at_ps).collect();
        assert_eq!(times, vec![0, 1_000, 5_000, 5_000]);
        assert_eq!(plan.epoch_boundaries(), vec![1_000, 5_000]);
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::default().epoch_boundaries().is_empty());
    }

    #[test]
    fn kill_sets_are_nested_and_sized() {
        let total = 64;
        let mut last = 0;
        let mut prev = vec![false; total as usize];
        for fraction in [0.0, 0.05, 0.10, 0.20, 0.50, 1.0] {
            let dead = nested_kill_set(9, total, fraction);
            let count = dead.iter().filter(|&&d| d).count();
            assert_eq!(count, (f64::from(total) * fraction).round() as usize);
            assert!(count >= last);
            for i in 0..dead.len() {
                assert!(!prev[i] || dead[i], "kill sets must nest");
            }
            last = count;
            prev = dead;
        }
        // Different seeds pick different sets.
        assert_ne!(nested_kill_set(1, 64, 0.25), nested_kill_set(2, 64, 0.25));
        // Same seed is reproducible.
        assert_eq!(nested_kill_set(5, 64, 0.25), nested_kill_set(5, 64, 0.25));
    }

    #[test]
    fn fault_state_round_trips_every_kind() {
        let mut st = FaultState::healthy(4, 8, 3, 16);
        assert!(st.is_all_healthy());
        st.apply(
            1,
            0,
            &FaultKind::SwitchDown {
                stage: 2,
                switch: 5,
            },
        );
        st.apply(
            1,
            0,
            &FaultKind::LinkDown {
                stage: 1,
                switch: 3,
                dir: 1,
                path: 2,
            },
        );
        st.apply(1, 0, &FaultKind::LaserDown { node: 7 });
        assert!(st.switch_is_down(2, 5));
        assert!(!st.switch_is_down(2, 4));
        assert!(st.link_is_down(1, 3, 1, 2));
        assert!(!st.link_is_down(1, 3, 1, 1));
        assert!(st.laser_is_down(7));
        assert!(!st.is_all_healthy());
        st.apply(
            1,
            0,
            &FaultKind::SwitchUp {
                stage: 2,
                switch: 5,
            },
        );
        st.apply(
            1,
            0,
            &FaultKind::LinkUp {
                stage: 1,
                switch: 3,
                dir: 1,
                path: 2,
            },
        );
        st.apply(1, 0, &FaultKind::LaserUp { node: 7 });
        assert!(st.is_all_healthy());
    }

    #[test]
    fn fail_fraction_and_revive_all() {
        let mut st = FaultState::healthy(4, 8, 3, 16);
        st.apply(9, 0, &FaultKind::FailFraction { fraction: 0.25 });
        let dead: usize = (0..4)
            .flat_map(|s| (0..8).map(move |w| (s, w)))
            .filter(|&(s, w)| st.switch_is_down(s, w))
            .count();
        assert_eq!(dead, 8);
        st.apply(9, 0, &FaultKind::ReviveAll);
        assert!(st.is_all_healthy());
    }

    #[test]
    fn bursts_expire_on_the_clock() {
        let mut st = FaultState::healthy(2, 4, 2, 8);
        st.apply(
            3,
            1_000,
            &FaultKind::BitErrorBurst {
                duration_ps: 500,
                corruption_prob: 0.25,
            },
        );
        assert!((st.corruption_prob(1_000) - 0.25).abs() < 1e-12);
        assert!((st.corruption_prob(1_499) - 0.25).abs() < 1e-12);
        assert!(st.corruption_prob(1_500).abs() < 1e-12);
        assert!(!st.is_all_healthy(), "an armed burst is not healthy");
    }

    #[test]
    fn health_derived_bursts_scale_with_degradation() {
        let mild = FaultPlan::new(1).with_burst_from_health(
            0,
            1_000,
            SwitchHealth::Degraded { margin_scale: 0.6 },
            8,
        );
        let severe = FaultPlan::new(1).with_burst_from_health(
            0,
            1_000,
            SwitchHealth::Degraded { margin_scale: 0.2 },
            8,
        );
        let prob = |p: &FaultPlan| match p.events[0].kind {
            FaultKind::BitErrorBurst {
                corruption_prob, ..
            } => corruption_prob,
            _ => unreachable!(),
        };
        assert!(prob(&severe) > prob(&mild));
        assert!(prob(&mild) > 0.0 && prob(&severe) < 1.0);
    }

    #[test]
    fn jittered_timeouts_are_deterministic_and_bounded() {
        let mut params = BaldurParams::paper_1k();
        params.retry_jitter_pct = 50;
        for attempt in 1..=10 {
            let a = jittered_timeout_ps(&params, 42, 7, attempt, 0);
            let b = jittered_timeout_ps(&params, 42, 7, attempt, 0);
            assert_eq!(a, b, "same (seed, pkt, attempt) must agree");
            let base = params.backoff_timeout_ps(attempt, 0);
            assert!(a >= base && a < base + base / 2 + 1, "attempt {attempt}");
        }
        // Different packets draw different jitter.
        let xs: Vec<u64> = (0..16)
            .map(|pkt| jittered_timeout_ps(&params, 42, pkt, 1, 0))
            .collect();
        let all_same = xs.iter().all(|&x| x == xs[0]);
        assert!(!all_same, "{xs:?}");
        // Jitter off is the pure BEB schedule.
        params.retry_jitter_pct = 0;
        assert_eq!(
            jittered_timeout_ps(&params, 42, 7, 3, 1),
            params.backoff_timeout_ps(3, 1)
        );
    }
}

//! The ideal reference network (paper Sec. V-A): infinite bandwidth, no
//! queueing, flat 200 ns latency between any pair of nodes.

use baldur_sim::{Duration, Model, Scheduler, Simulation, Time};

use crate::driver::Driver;
use crate::metrics::{Collector, LatencyReport};

/// Events of the ideal model.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Driver wakeup for a node.
    Wake(u32),
    /// Flat-latency delivery at a node.
    Deliver {
        /// Destination node.
        node: u32,
        /// Generation time, for latency accounting.
        generated_ps: u64,
    },
}

/// The ideal network model.
pub struct IdealNet {
    driver: Driver,
    latency: Duration,
    metrics: Collector,
}

impl IdealNet {
    fn apply(
        &mut self,
        now: Time,
        node: u32,
        out: crate::driver::DriverOutput,
        sched: &mut Scheduler<Ev>,
    ) {
        for cmd in out.sends {
            for _ in 0..cmd.count {
                self.metrics.on_generated(now);
                sched.schedule_at(
                    now + self.latency,
                    Ev::Deliver {
                        node: cmd.dst.0,
                        generated_ps: now.as_ps(),
                    },
                );
            }
        }
        if let Some(t) = out.wake_at_ps {
            sched.schedule_at(Time::from_ps(t), Ev::Wake(node));
        }
    }
}

impl Model for IdealNet {
    type Event = Ev;

    fn handle(&mut self, now: Time, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Wake(node) => {
                let out = self.driver.wakeup(node, now.as_ps());
                self.apply(now, node, out, sched);
            }
            Ev::Deliver { node, generated_ps } => {
                self.metrics
                    .on_delivered(now.since(Time::from_ps(generated_ps)), now);
                let out = self.driver.delivered(node, now.as_ps());
                self.apply(now, node, out, sched);
            }
        }
    }
}

/// Runs the ideal network. The flat latency is 200 ns unless overridden.
pub fn simulate(driver: Driver, latency_ns: Option<u64>) -> LatencyReport {
    let total = driver.total_to_send();
    let sample_cap = (total.min(2_000_000)) as usize + 16;
    let mut model = IdealNet {
        driver,
        latency: Duration::from_ns(latency_ns.unwrap_or(200)),
        metrics: Collector::new(sample_cap),
    };
    let initial = model.driver.initial();
    let mut sim = Simulation::new(model);
    for (node, t) in initial {
        sim.scheduler_mut()
            .schedule_at(Time::from_ps(t), Ev::Wake(node));
    }
    sim.run();
    let end = sim.scheduler().now();
    let events = sim.scheduler().events_executed();
    let mut report = sim.into_model().metrics.report(end);
    report.events = events;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkParams;
    use crate::traffic::Pattern;

    #[test]
    fn every_packet_takes_exactly_200ns() {
        let d = Driver::open_loop(
            32,
            Pattern::RandomPermutation,
            0.9,
            50,
            &LinkParams::paper(),
            1,
        );
        let r = simulate(d, None);
        assert_eq!(r.delivered, r.generated);
        assert!((r.avg_ns - 200.0).abs() < 1e-9, "{}", r.avg_ns);
        assert!((r.p99_ns - 200.0).abs() < 1e-9);
    }

    #[test]
    fn ping_pong_round_trip_is_400ns() {
        let pairs = crate::workloads::ping_pong1_pairs(8, 2);
        let d = Driver::ping_pong(pairs, 4, 2);
        let r = simulate(d, None);
        assert_eq!(r.delivered, 8 / 2 * 2 * 4);
        assert!((r.avg_ns - 200.0).abs() < 1e-9);
        // A full 4-round exchange is 8 crossings = 1.6 us of simulated time.
        assert!((r.sim_end_ns - 1_600.0).abs() < 1.0, "{}", r.sim_end_ns);
    }

    #[test]
    fn hpc_trace_completes() {
        let scripts =
            crate::workloads::generate(crate::workloads::HpcApp::Amg, 64, Default::default(), 3);
        let d = Driver::trace(scripts, 3);
        let total = d.total_to_send();
        let r = simulate(d, None);
        assert_eq!(r.delivered, total, "trace must run to completion");
    }
}

//! Synthetic HPC workload traces (paper Sec. V-A).
//!
//! The paper replays DUMPI traces of four DOE Design Forward mini-apps.
//! Those traces are not redistributable, so this module generates traces
//! with the published structural character of each application (see the
//! substitution note in DESIGN.md):
//!
//! * **AMG** — algebraic multigrid V-cycle: 3-D nearest-neighbour halo
//!   exchanges whose message sizes shrink per level, plus a small
//!   hypercube allreduce at the coarsest level.
//! * **CrystalRouter** (CR) — log₂N staged many-to-many: each stage
//!   exchanges with the node whose address differs in one bit.
//! * **FillBoundary** (FB) — AMR ghost-cell exchange with a *skewed,
//!   distance-heavy* partner set (the property that makes FB near
//!   worst-case for hierarchical topologies — the paper measures
//!   dragonfly/fat-tree at 23.5X/46.1X worse than Baldur here).
//! * **MultiGrid** (MG) — geometric multigrid: barriered V-cycle of 3-D
//!   stencil exchanges with halving message counts.
//!
//! Also provides the two closed-loop ping-pong pairings of Sec. V-A.

use baldur_sim::rng::StreamRng;
use baldur_topo::dragonfly::Dragonfly;
use serde::{Deserialize, Serialize};

use crate::driver::Op;
use crate::traffic::Pattern;

/// The four Design Forward applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HpcApp {
    /// Algebraic multigrid.
    Amg,
    /// CrystalRouter many-to-many.
    CrystalRouter,
    /// BoxLib FillBoundary.
    FillBoundary,
    /// Geometric multigrid.
    MultiGrid,
}

impl HpcApp {
    /// All four, in the paper's order.
    pub const ALL: [HpcApp; 4] = [
        HpcApp::Amg,
        HpcApp::CrystalRouter,
        HpcApp::FillBoundary,
        HpcApp::MultiGrid,
    ];

    /// Short name used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            HpcApp::Amg => "AMG",
            HpcApp::CrystalRouter => "CR",
            HpcApp::FillBoundary => "FB",
            HpcApp::MultiGrid => "MG",
        }
    }
}

/// Scale knobs for trace generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceParams {
    /// Iterations (V-cycles / exchange rounds).
    pub iterations: u32,
    /// Packets per halo message at the finest level.
    pub halo_packets: u32,
    /// Compute delay inserted between phases, ps.
    pub compute_ps: u64,
}

impl TraceParams {
    /// Small default keeping harness runtimes reasonable; scale up via the
    /// harness flags for full-fidelity runs.
    pub fn default_scale() -> Self {
        TraceParams {
            iterations: 2,
            halo_packets: 4,
            compute_ps: 200_000,
        }
    }
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams::default_scale()
    }
}

/// Generates the per-node scripts for `app` over `nodes` endpoints.
///
/// # Panics
///
/// Panics if `nodes < 8`.
pub fn generate(app: HpcApp, nodes: u32, p: TraceParams, seed: u64) -> Vec<Vec<Op>> {
    assert!(nodes >= 8, "HPC traces need at least 8 nodes");
    match app {
        HpcApp::Amg => amg(nodes, p),
        HpcApp::CrystalRouter => crystal_router(nodes, p),
        HpcApp::FillBoundary => fill_boundary(nodes, p, seed),
        HpcApp::MultiGrid => multigrid(nodes, p),
    }
}

/// A near-cubic 3-D decomposition of `n` ranks: factors (x, y, z) with
/// x·y·z = n and the dimensions as balanced as powers of two allow.
pub fn grid3d(n: u32) -> (u32, u32, u32) {
    assert!(n.is_power_of_two(), "grid3d expects a power of two");
    let bits = n.trailing_zeros();
    let bx = bits / 3 + u32::from(!bits.is_multiple_of(3));
    let by = bits / 3 + u32::from(bits % 3 > 1);
    let bz = bits / 3;
    (1 << bx, 1 << by, 1 << bz)
}

fn coords(rank: u32, dims: (u32, u32, u32)) -> (u32, u32, u32) {
    let (x, y, _) = dims;
    (rank % x, (rank / x) % y, rank / (x * y))
}

fn rank_of(c: (u32, u32, u32), dims: (u32, u32, u32)) -> u32 {
    c.0 + c.1 * dims.0 + c.2 * dims.0 * dims.1
}

/// The up-to-six face neighbours of `rank` in a periodic 3-D grid.
pub fn neighbors3d(rank: u32, dims: (u32, u32, u32)) -> Vec<u32> {
    let (x, y, z) = coords(rank, dims);
    let mut out = Vec::with_capacity(6);
    let deltas: [(i64, i64, i64); 6] = [
        (1, 0, 0),
        (-1, 0, 0),
        (0, 1, 0),
        (0, -1, 0),
        (0, 0, 1),
        (0, 0, -1),
    ];
    for (dx, dy, dz) in deltas {
        let nx = ((i64::from(x) + dx).rem_euclid(i64::from(dims.0))) as u32;
        let ny = ((i64::from(y) + dy).rem_euclid(i64::from(dims.1))) as u32;
        let nz = ((i64::from(z) + dz).rem_euclid(i64::from(dims.2))) as u32;
        let n = rank_of((nx, ny, nz), dims);
        if n != rank && !out.contains(&n) {
            out.push(n);
        }
    }
    out
}

fn halo_phase(script: &mut Vec<Op>, partners: &[u32], packets: u32, compute_ps: u64) {
    if partners.is_empty() || packets == 0 {
        return;
    }
    for &p in partners {
        script.push(Op::Send { dst: p, packets });
    }
    script.push(Op::Recv {
        packets: packets * partners.len() as u32,
    });
    if compute_ps > 0 {
        script.push(Op::Delay { ps: compute_ps });
    }
}

fn amg(nodes: u32, p: TraceParams) -> Vec<Vec<Op>> {
    let n2 = nodes.next_power_of_two() / if nodes.is_power_of_two() { 1 } else { 2 };
    let dims = grid3d(n2);
    let levels = 3u32;
    (0..nodes)
        .map(|rank| {
            let mut script = Vec::new();
            if rank >= n2 {
                return script; // ragged tail idles, like unused ranks
            }
            for _ in 0..p.iterations {
                // Down-cycle: shrinking halos.
                for lvl in 0..levels {
                    let pk = (p.halo_packets >> lvl).max(1);
                    halo_phase(&mut script, &neighbors3d(rank, dims), pk, p.compute_ps);
                }
                // Coarse allreduce: hypercube exchange, 1 packet per stage.
                let bits = n2.trailing_zeros();
                for d in 0..bits {
                    let peer = rank ^ (1 << d);
                    script.push(Op::Send {
                        dst: peer,
                        packets: 1,
                    });
                    script.push(Op::Recv { packets: 1 });
                }
                // Up-cycle: growing halos.
                for lvl in (0..levels).rev() {
                    let pk = (p.halo_packets >> lvl).max(1);
                    halo_phase(&mut script, &neighbors3d(rank, dims), pk, p.compute_ps);
                }
            }
            script
        })
        .collect()
}

fn crystal_router(nodes: u32, p: TraceParams) -> Vec<Vec<Op>> {
    let n2 = nodes.next_power_of_two() / if nodes.is_power_of_two() { 1 } else { 2 };
    let bits = n2.trailing_zeros();
    (0..nodes)
        .map(|rank| {
            let mut script = Vec::new();
            if rank >= n2 {
                return script;
            }
            for _ in 0..p.iterations {
                for d in 0..bits {
                    let peer = rank ^ (1 << d);
                    script.push(Op::Send {
                        dst: peer,
                        packets: p.halo_packets,
                    });
                    script.push(Op::Recv {
                        packets: p.halo_packets,
                    });
                    if p.compute_ps > 0 {
                        script.push(Op::Delay {
                            ps: p.compute_ps / 4,
                        });
                    }
                }
            }
            script
        })
        .collect()
}

fn fill_boundary(nodes: u32, p: TraceParams, seed: u64) -> Vec<Vec<Op>> {
    // Distance-heavy AMR exchange: every rank talks to its antipode (the
    // full-bisection component) plus two random far partners — traffic
    // hierarchical topologies concentrate onto few global links.
    let mut rng = StreamRng::named(seed, "fbtrace", 0);
    let half = nodes / 2;
    let partners: Vec<Vec<u32>> = (0..nodes)
        .map(|rank| {
            let mut ps = vec![(rank + half) % nodes];
            for _ in 0..2 {
                let offset = rng.gen_range(half / 2..half.max(2));
                let far = (rank + offset) % nodes;
                if far != rank && !ps.contains(&far) {
                    ps.push(far);
                }
            }
            ps
        })
        .collect();
    // Symmetrize so every send has a matching recv.
    let mut inbound: Vec<Vec<u32>> = vec![Vec::new(); nodes as usize];
    for (rank, ps) in partners.iter().enumerate() {
        for &dst in ps {
            inbound[dst as usize].push(rank as u32);
        }
    }
    (0..nodes as usize)
        .map(|rank| {
            let mut script = Vec::new();
            for _ in 0..p.iterations {
                for &dst in &partners[rank] {
                    script.push(Op::Send {
                        dst,
                        packets: p.halo_packets,
                    });
                }
                let expected = inbound[rank].len() as u32 * p.halo_packets;
                if expected > 0 {
                    script.push(Op::Recv { packets: expected });
                }
                if p.compute_ps > 0 {
                    script.push(Op::Delay { ps: p.compute_ps });
                }
            }
            script
        })
        .collect()
}

fn multigrid(nodes: u32, p: TraceParams) -> Vec<Vec<Op>> {
    let n2 = nodes.next_power_of_two() / if nodes.is_power_of_two() { 1 } else { 2 };
    let dims = grid3d(n2);
    let levels = 4u32;
    (0..nodes)
        .map(|rank| {
            let mut script = Vec::new();
            if rank >= n2 {
                return script;
            }
            for _ in 0..p.iterations {
                for lvl in 0..levels {
                    // Geometric coarsening: only every 2^lvl-th rank works.
                    let stride = 1u32 << lvl;
                    if rank % stride != 0 {
                        continue;
                    }
                    let active_partners: Vec<u32> = neighbors3d(rank, dims)
                        .into_iter()
                        .filter(|n| n % stride == 0)
                        .collect();
                    let pk = (p.halo_packets >> lvl).max(1);
                    halo_phase(&mut script, &active_partners, pk, p.compute_ps);
                }
            }
            script
        })
        .collect()
}

/// Quantitative characterization of a generated trace, used to document
/// how the synthetic traces preserve each mini-app's communication
/// structure (the DESIGN.md substitution note, made measurable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total messages (Send ops).
    pub messages: u64,
    /// Total packets across all messages.
    pub packets: u64,
    /// Distinct communication partners, averaged over active ranks.
    pub avg_partners: f64,
    /// Mean ring distance |dst - src| (mod N), normalized by N/2: 0 = all
    /// nearest-neighbour, 1 = all antipodal.
    pub mean_distance: f64,
    /// Fraction of ranks with at least one op.
    pub active_fraction: f64,
    /// Receive ops (synchronization points) per active rank.
    pub sync_points_per_rank: f64,
}

/// Computes [`TraceStats`] for a trace.
pub fn characterize(scripts: &[Vec<Op>]) -> TraceStats {
    let n = scripts.len() as u32;
    let mut messages = 0u64;
    let mut packets = 0u64;
    let mut partner_total = 0usize;
    let mut dist_sum = 0.0f64;
    let mut active = 0u32;
    let mut recvs = 0u64;
    for (rank, ops) in scripts.iter().enumerate() {
        if ops.is_empty() {
            continue;
        }
        active += 1;
        let mut partners = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                Op::Send { dst, packets: p } => {
                    messages += 1;
                    packets += u64::from(*p);
                    partners.insert(*dst);
                    let d = (i64::from(*dst) - rank as i64).unsigned_abs() as u32;
                    let ring = d.min(n - d);
                    dist_sum += f64::from(ring) / (f64::from(n) / 2.0);
                }
                Op::Recv { .. } => recvs += 1,
                Op::Delay { .. } => {}
            }
        }
        partner_total += partners.len();
    }
    TraceStats {
        messages,
        packets,
        avg_partners: partner_total as f64 / f64::from(active.max(1)),
        mean_distance: if messages > 0 {
            dist_sum / messages as f64
        } else {
            0.0
        },
        active_fraction: f64::from(active) / f64::from(n.max(1)),
        sync_points_per_rank: recvs as f64 / f64::from(active.max(1)),
    }
}

/// Ping-pong 1 pairing: a random mutual pairing of all nodes.
pub fn ping_pong1_pairs(nodes: u32, seed: u64) -> Vec<u32> {
    assert!(
        nodes >= 2 && nodes.is_multiple_of(2),
        "need an even node count"
    );
    let mut rng = StreamRng::named(seed, "pp1", 0);
    let order = rng.permutation(nodes as usize);
    let mut pairs = vec![0u32; nodes as usize];
    for chunk in order.chunks(2) {
        pairs[chunk[0]] = chunk[1] as u32;
        pairs[chunk[1]] = chunk[0] as u32;
    }
    pairs
}

/// Ping-pong 2 pairing: nodes of dragonfly group 2k paired position-wise
/// with nodes of group 2k+1, forcing all traffic of a group pair across
/// the single global link between them (the paper's dragonfly stress
/// case). The pairing is built on the dragonfly sized for `nodes` and
/// applied identically to all networks.
pub fn ping_pong2_pairs(nodes: u32) -> Vec<u32> {
    let df = Dragonfly::at_least(u64::from(nodes));
    let group = df.p * df.a;
    (0..nodes)
        .map(|n| {
            let g = n / group;
            let pos = n % group;
            let pg = if g.is_multiple_of(2) { g + 1 } else { g - 1 };
            let partner = pg * group + pos;
            if partner < nodes {
                partner
            } else {
                // Ragged tail: fall back to a neighbour pairing.
                if n % 2 == 0 {
                    n + 1
                } else {
                    n - 1
                }
            }
        })
        .collect()
}

/// The overload-storm workload family (ROADMAP item 3), in sweep order:
/// uniform background load, k-to-1 incast at the machine's default
/// fan-in, and the bursty skewed hotcast. These are the three columns of
/// the `overload` experiment.
pub fn storm_patterns(nodes: u32) -> Vec<Pattern> {
    vec![
        Pattern::UniformRandom,
        Pattern::Incast {
            fanin: incast_fanin(nodes),
        },
        Pattern::Hotcast,
    ]
}

/// Default incast fan-in: a quarter of the machine converging on one
/// victim, clamped to the `1..nodes` range [`Pattern::Incast`] accepts.
pub fn incast_fanin(nodes: u32) -> u32 {
    (nodes / 4).clamp(1, nodes.saturating_sub(1).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_family_builds_at_every_scale() {
        for nodes in [2u32, 3, 8, 64, 1_024] {
            for p in storm_patterns(nodes) {
                assert!(
                    crate::traffic::Assignment::try_build(p, nodes, 7).is_ok(),
                    "{} invalid at {nodes} nodes",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn grid3d_is_balanced() {
        assert_eq!(grid3d(64), (4, 4, 4));
        assert_eq!(grid3d(128), (8, 4, 4));
        assert_eq!(grid3d(1_024), (16, 8, 8));
        let (x, y, z) = grid3d(256);
        assert_eq!(x * y * z, 256);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let dims = grid3d(64);
        for r in 0..64 {
            for n in neighbors3d(r, dims) {
                assert!(
                    neighbors3d(n, dims).contains(&r),
                    "asymmetric neighbours {r} {n}"
                );
            }
        }
    }

    /// Every generated trace must be deadlock-free under in-order delivery:
    /// simulate instant delivery and check all scripts run to completion
    /// with sends equal to receives.
    fn check_closure(scripts: &[Vec<Op>]) {
        let sent: u64 = scripts
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::Send { packets, .. } => Some(u64::from(*packets)),
                _ => None,
            })
            .sum();
        let recv: u64 = scripts
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::Recv { packets } => Some(u64::from(*packets)),
                _ => None,
            })
            .sum();
        assert_eq!(sent, recv, "sends and receives must balance");
        // Destinations in range and no self-sends.
        let n = scripts.len() as u32;
        for (rank, ops) in scripts.iter().enumerate() {
            for op in ops {
                if let Op::Send { dst, .. } = op {
                    assert!(*dst < n);
                    assert_ne!(*dst, rank as u32, "self-send at rank {rank}");
                }
            }
        }
    }

    #[test]
    fn all_apps_generate_balanced_traces() {
        for app in HpcApp::ALL {
            let scripts = generate(app, 64, TraceParams::default_scale(), 5);
            assert_eq!(scripts.len(), 64);
            check_closure(&scripts);
            let total_ops: usize = scripts.iter().map(Vec::len).sum();
            assert!(total_ops > 64, "{}: trivial trace", app.name());
        }
    }

    #[test]
    fn fb_is_distance_heavy() {
        let scripts = generate(HpcApp::FillBoundary, 64, TraceParams::default_scale(), 5);
        let mut far = 0;
        let mut near = 0;
        for (rank, ops) in scripts.iter().enumerate() {
            for op in ops {
                if let Op::Send { dst, .. } = op {
                    let dist = (i64::from(*dst) - rank as i64).unsigned_abs();
                    if dist >= 16 {
                        far += 1;
                    } else {
                        near += 1;
                    }
                }
            }
        }
        assert!(far > near * 3, "far {far} near {near}");
    }

    #[test]
    fn characterization_separates_the_apps() {
        let p = TraceParams::default_scale();
        let stats: Vec<(HpcApp, TraceStats)> = HpcApp::ALL
            .iter()
            .map(|&app| (app, characterize(&generate(app, 64, p, 5))))
            .collect();
        let get = |app: HpcApp| {
            stats
                .iter()
                .find(|(a, _)| *a == app)
                .map(|(_, s)| s.clone())
                .expect("app present")
        };
        // FB is the distance-heavy one: its mean ring distance dominates
        // the stencil codes'.
        let fb = get(HpcApp::FillBoundary);
        let mg = get(HpcApp::MultiGrid);
        assert!(
            fb.mean_distance > 2.0 * mg.mean_distance,
            "FB {} vs MG {}",
            fb.mean_distance,
            mg.mean_distance
        );
        // CrystalRouter talks to log2(N) = 6 hypercube partners.
        let cr = get(HpcApp::CrystalRouter);
        assert!((cr.avg_partners - 6.0).abs() < 0.5, "{}", cr.avg_partners);
        // Everyone has synchronization structure.
        for (_, s) in &stats {
            assert!(s.sync_points_per_rank >= 1.0);
            assert!(s.active_fraction > 0.9);
        }
    }

    #[test]
    fn ping_pong1_is_an_involution() {
        let p = ping_pong1_pairs(128, 3);
        for (i, &d) in p.iter().enumerate() {
            assert_ne!(i as u32, d);
            assert_eq!(p[d as usize], i as u32);
        }
    }

    #[test]
    fn ping_pong2_crosses_groups() {
        let p = ping_pong2_pairs(1_056);
        let group = 32;
        let crossing = p
            .iter()
            .enumerate()
            .filter(|&(i, &d)| (i as u32) / group != d / group)
            .count();
        assert!(crossing >= 1_000, "{crossing}");
        for (i, &d) in p.iter().enumerate() {
            assert_eq!(p[d as usize], i as u32, "must be mutual");
        }
    }

    #[test]
    fn traces_handle_non_power_of_two() {
        // 1,056-node dragonfly scale: ragged tail idles but must not panic.
        for app in HpcApp::ALL {
            let scripts = generate(app, 96, TraceParams::default_scale(), 1);
            assert_eq!(scripts.len(), 96);
            check_closure(&scripts);
        }
    }
}

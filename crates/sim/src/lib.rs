//! Discrete-event simulation kernel for the Baldur reproduction.
//!
//! This crate is the substrate that replaces the CODES/ROSS toolkit used by
//! the paper for packet-level network simulation, and also drives the
//! gate-level circuit simulator in `baldur-tl`. It provides:
//!
//! * [`Time`] / [`Duration`] — integer picosecond simulated time,
//! * [`Scheduler`] / [`Simulation`] — a deterministic event queue and run
//!   loop generic over the model's event type (heap-backed, self-promoting
//!   to a calendar queue at datacenter-scale event populations),
//! * [`Arena`] — generational slab allocation with index [`Handle`]s for
//!   kernel-side object populations (no per-object boxes on hot paths),
//! * [`rng`] — reproducible, stream-split random number generation,
//! * [`par`] — a work-stealing thread pool that fans independent runs
//!   across workers while keeping output order (and thus bytes) identical
//!   to the serial path,
//! * [`stats`] — streaming summary statistics, exact percentiles, and
//!   logarithmic histograms used for latency reporting.
//!
//! # Example
//!
//! ```
//! use baldur_sim::{Duration, Model, Scheduler, Simulation, Time};
//!
//! struct Counter {
//!     fired: u64,
//! }
//!
//! impl Model for Counter {
//!     type Event = ();
//!     fn handle(&mut self, now: Time, _ev: (), sched: &mut Scheduler<()>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.schedule_in(Duration::from_ns(1), ());
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.scheduler_mut().schedule_at(Time::ZERO, ());
//! sim.run();
//! assert_eq!(sim.model().fired, 10);
//! ```

pub mod arena;
pub mod calendar;
pub mod engine;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;

pub use arena::{Arena, ArenaStats, Handle};
pub use engine::{Model, Scheduler, Simulation, StopReason};
pub use time::{Duration, Time};

//! Reproducible random-number streams.
//!
//! Every stochastic element of the reproduction (topology wiring, traffic
//! pattern pairing, inter-arrival draws, jitter injection) pulls from a
//! [`StreamRng`] derived from a master seed plus a named stream, so that a
//! run is a pure function of its configuration. ChaCha8 is used because it
//! is counter-based, portable across platforms, and fast enough to never
//! appear in profiles. The cipher core is implemented here directly (the
//! build environment has no crates.io access, so `rand_chacha` is
//! unavailable); the keystream is the standard ChaCha with 8 rounds, a
//! 64-bit block counter, and a zero nonce.

use std::ops::{Bound, RangeBounds};

/// Identifies an independent random stream within one experiment.
///
/// Streams derived from the same master seed but different labels/indices
/// are statistically independent, so e.g. re-wiring the topology does not
/// perturb the traffic draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    /// Stable label for the subsystem (e.g. `b"topology"`).
    pub label: [u8; 8],
    /// Index within the subsystem (e.g. node id).
    pub index: u64,
}

impl StreamId {
    /// Creates a stream id from a label (at most 8 bytes, zero-padded) and
    /// an index.
    ///
    /// # Panics
    ///
    /// Panics if `label` is longer than 8 bytes.
    pub fn new(label: &[u8], index: u64) -> Self {
        assert!(label.len() <= 8, "stream label too long");
        let mut l = [0u8; 8];
        l[..label.len()].copy_from_slice(label);
        StreamId { label: l, index }
    }
}

/// The ChaCha8 keystream generator: 256-bit key, 64-bit block counter,
/// 64-bit (zero) nonce, eight rounds.
#[derive(Debug, Clone)]
struct ChaCha8 {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// Block counter (state words 12..14).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word to emit from `block`; 16 forces a refill.
    word_idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8 {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8 {
            key,
            counter: 0,
            block: [0; 16],
            word_idx: 16,
        }
    }

    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce (words 14..16) stays zero: streams are separated by key.
        let initial = state;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_idx = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

/// Integer types [`StreamRng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back from the sampling domain (the value is guaranteed to
    /// fit by construction).
    fn from_u64(v: u64) -> Self;
    /// The largest representable value, widened.
    const MAX_U64: u64;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            const MAX_U64: u64 = <$t>::MAX as u64;
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct StreamRng {
    inner: ChaCha8,
}

impl StreamRng {
    /// Derives the stream identified by `id` from `master_seed`.
    pub fn derive(master_seed: u64, id: StreamId) -> Self {
        // SplitMix64-style mixing of (seed, label, index) into a 256-bit key.
        let mut state = master_seed ^ 0x9E37_79B9_7F4A_7C15;
        let label = u64::from_le_bytes(id.label);
        let mut key = [0u8; 32];
        let mut feed = |x: u64, out: &mut [u8]| {
            state = state.wrapping_add(x).wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            out.copy_from_slice(&z.to_le_bytes());
        };
        feed(master_seed, &mut key[0..8]);
        feed(label, &mut key[8..16]);
        feed(id.index, &mut key[16..24]);
        feed(label ^ id.index.rotate_left(17), &mut key[24..32]);
        StreamRng {
            inner: ChaCha8::from_seed(key),
        }
    }

    /// Convenience: derives a stream from a textual label.
    pub fn named(master_seed: u64, label: &str, index: u64) -> Self {
        Self::derive(master_seed, StreamId::new(label.as_bytes(), index))
    }

    /// Splits `sweep_seed` into the `index`-th child run seed.
    ///
    /// Sweep orchestration gives every point of a parameter sweep its own
    /// master seed so runs stay statistically independent while the whole
    /// sweep remains a pure function of one seed. The split is a SplitMix64
    /// finalizer over `(sweep_seed, index)` — stateless, so the children
    /// can be computed in any order (or in parallel) and always agree.
    pub fn split_seed(sweep_seed: u64, index: u64) -> u64 {
        let mut z = sweep_seed
            .rotate_left(23)
            .wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fills `dest` with uniformly random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.inner.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.inner.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Uniform sample from `range` (unbiased via rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&s) => s.to_u64(),
            Bound::Excluded(&s) => s.to_u64() + 1,
            Bound::Unbounded => 0,
        };
        let hi_inclusive = match range.end_bound() {
            Bound::Included(&e) => e.to_u64(),
            Bound::Excluded(&e) => {
                assert!(e.to_u64() > 0, "empty range");
                e.to_u64() - 1
            }
            Bound::Unbounded => T::MAX_U64,
        };
        assert!(lo <= hi_inclusive, "empty range");
        if lo == 0 && hi_inclusive == u64::MAX {
            return T::from_u64(self.next_u64());
        }
        let span = hi_inclusive - lo + 1;
        // Rejection zone: the largest multiple of `span` below 2^64 keeps
        // the modulo unbiased.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return T::from_u64(lo + v % span);
            }
        }
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// An exponentially distributed sample with the given `mean`
    /// (inter-arrival draws for the open-loop traffic model, Sec. V-A Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // Inverse CDF; 1-u avoids ln(0).
        let u = self.gen_f64();
        -mean * (1.0 - u).ln()
    }

    /// A normal sample (Marsaglia polar method), used for timing
    /// jitter (Sec. IV-F).
    pub fn gen_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        loop {
            let u = self.gen_f64() * 2.0 - 1.0;
            let v = self.gen_f64() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return mu + sigma * u * factor;
            }
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 test vector machinery only covers ChaCha20; cross-check the
    /// 8-round core against the independently published ChaCha8 keystream
    /// for the all-zero key and nonce (first block, words 0..4).
    #[test]
    fn chacha8_keystream_matches_reference() {
        let mut core = ChaCha8::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..4).map(|_| core.next_u32()).collect();
        // From the eSTREAM/chacha reference implementation output
        // ("expand 32-byte k", zero key, zero IV, 8 rounds), first 16 bytes:
        // 3e00ef2f895f40d67f5bb8e81f09a5a1 2c840ec3ce9a7f3b181be188ef711a1e.
        let expected = [
            u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]),
            u32::from_le_bytes([0x89, 0x5f, 0x40, 0xd6]),
            u32::from_le_bytes([0x7f, 0x5b, 0xb8, 0xe8]),
            u32::from_le_bytes([0x1f, 0x09, 0xa5, 0xa1]),
        ];
        assert_eq!(first, expected);
    }

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = StreamRng::named(42, "traffic", 7);
        let mut b = StreamRng::named(42, "traffic", 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = StreamRng::named(42, "traffic", 7);
        let mut b = StreamRng::named(42, "traffic", 8);
        let mut c = StreamRng::named(42, "topology", 7);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(av, bv);
        assert_ne!(av, cv);
        assert_ne!(bv, cv);
    }

    #[test]
    fn split_seed_is_reproducible_across_calls() {
        for seed in [0u64, 1, 42, u64::MAX, 0xba1d] {
            for idx in [0u64, 1, 2, 63, 1000] {
                assert_eq!(
                    StreamRng::split_seed(seed, idx),
                    StreamRng::split_seed(seed, idx),
                );
            }
        }
    }

    #[test]
    fn split_seed_children_are_distinct() {
        // All children of one sweep seed differ pairwise, differ from the
        // parent, and differ from the same index under a different parent.
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..512u64 {
            assert!(seen.insert(StreamRng::split_seed(0xba1d, idx)));
        }
        assert!(!seen.contains(&0xba1d), "child collided with parent seed");
        for idx in 0..512u64 {
            assert_ne!(
                StreamRng::split_seed(0xba1d, idx),
                StreamRng::split_seed(0xba1e, idx),
                "index {idx} collided across parents"
            );
        }
        // Zero is not a fixed point (a classic weak-seed hazard).
        assert_ne!(StreamRng::split_seed(0, 0), 0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StreamRng::named(9, "range", 0);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StreamRng::named(1, "exp", 0);
        let n = 200_000;
        let mean = 163_840.0 / 0.7;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!((sample_mean / mean - 1.0).abs() < 0.02, "{sample_mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StreamRng::named(1, "norm", 0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(0.0, 1.237)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.53).abs() < 0.05, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StreamRng::named(3, "perm", 0);
        let p = rng.permutation(257);
        let mut seen = vec![false; 257];
        for &x in &p {
            assert!(!seen[x]);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        let mut a = StreamRng::named(5, "bytes", 0);
        let mut b = StreamRng::named(5, "bytes", 0);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));
    }

    #[test]
    #[should_panic(expected = "stream label too long")]
    fn long_label_panics() {
        StreamId::new(b"far-too-long-label", 0);
    }
}

//! Reproducible random-number streams.
//!
//! Every stochastic element of the reproduction (topology wiring, traffic
//! pattern pairing, inter-arrival draws, jitter injection) pulls from a
//! [`StreamRng`] derived from a master seed plus a named stream, so that a
//! run is a pure function of its configuration. ChaCha8 is used because it
//! is counter-based, portable across platforms, and fast enough to never
//! appear in profiles.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Identifies an independent random stream within one experiment.
///
/// Streams derived from the same master seed but different labels/indices
/// are statistically independent, so e.g. re-wiring the topology does not
/// perturb the traffic draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    /// Stable label for the subsystem (e.g. `b"topology"`).
    pub label: [u8; 8],
    /// Index within the subsystem (e.g. node id).
    pub index: u64,
}

impl StreamId {
    /// Creates a stream id from a label (at most 8 bytes, zero-padded) and
    /// an index.
    ///
    /// # Panics
    ///
    /// Panics if `label` is longer than 8 bytes.
    pub fn new(label: &[u8], index: u64) -> Self {
        assert!(label.len() <= 8, "stream label too long");
        let mut l = [0u8; 8];
        l[..label.len()].copy_from_slice(label);
        StreamId { label: l, index }
    }
}

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct StreamRng {
    inner: ChaCha8Rng,
}

impl StreamRng {
    /// Derives the stream identified by `id` from `master_seed`.
    pub fn derive(master_seed: u64, id: StreamId) -> Self {
        // SplitMix64-style mixing of (seed, label, index) into a 256-bit key.
        let mut state = master_seed ^ 0x9E37_79B9_7F4A_7C15;
        let label = u64::from_le_bytes(id.label);
        let mut key = [0u8; 32];
        let mut feed = |x: u64, out: &mut [u8]| {
            state = state.wrapping_add(x).wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            out.copy_from_slice(&z.to_le_bytes());
        };
        feed(master_seed, &mut key[0..8]);
        feed(label, &mut key[8..16]);
        feed(id.index, &mut key[16..24]);
        feed(label ^ id.index.rotate_left(17), &mut key[24..32]);
        StreamRng {
            inner: ChaCha8Rng::from_seed(key),
        }
    }

    /// Convenience: derives a stream from a textual label.
    pub fn named(master_seed: u64, label: &str, index: u64) -> Self {
        Self::derive(master_seed, StreamId::new(label.as_bytes(), index))
    }

    /// Uniform sample from `range`.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform bool.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }

    /// An exponentially distributed sample with the given `mean`
    /// (inter-arrival draws for the open-loop traffic model, Sec. V-A Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // Inverse CDF; 1-u avoids ln(0).
        let u: f64 = self.inner.gen::<f64>();
        -mean * (1.0 - u).ln()
    }

    /// A standard-normal sample (Marsaglia polar method), used for timing
    /// jitter (Sec. IV-F).
    pub fn gen_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        loop {
            let u = self.inner.gen::<f64>() * 2.0 - 1.0;
            let v = self.inner.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return mu + sigma * u * factor;
            }
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = StreamRng::named(42, "traffic", 7);
        let mut b = StreamRng::named(42, "traffic", 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = StreamRng::named(42, "traffic", 7);
        let mut b = StreamRng::named(42, "traffic", 8);
        let mut c = StreamRng::named(42, "topology", 7);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(av, bv);
        assert_ne!(av, cv);
        assert_ne!(bv, cv);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StreamRng::named(1, "exp", 0);
        let n = 200_000;
        let mean = 163_840.0 / 0.7;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!((sample_mean / mean - 1.0).abs() < 0.02, "{sample_mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StreamRng::named(1, "norm", 0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(0.0, 1.237)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.53).abs() < 0.05, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StreamRng::named(3, "perm", 0);
        let p = rng.permutation(257);
        let mut seen = vec![false; 257];
        for &x in &p {
            assert!(!seen[x]);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "stream label too long")]
    fn long_label_panics() {
        StreamId::new(b"far-too-long-label", 0);
    }
}

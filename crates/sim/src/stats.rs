//! Summary statistics for latency reporting.
//!
//! The paper reports average and 99th-percentile ("tail") packet latency per
//! configuration, plus geometric means across workloads (Figure 7). This
//! module provides:
//!
//! * [`Streaming`] — Welford mean/variance + min/max without storing samples,
//! * [`Reservoir`] — exact percentiles over all samples (used at the scales
//!   this reproduction runs at), with an optional cap that degrades to
//!   uniform reservoir sampling,
//! * [`LogHistogram`] — a log₂-bucketed histogram for cheap distribution
//!   sketches,
//! * [`geometric_mean`] — for cross-workload aggregation.

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Streaming {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// An empty accumulator.
    pub fn new() -> Self {
        Streaming {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Streaming) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance; `NaN` when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Sample store with exact percentiles up to a capacity, degrading to
/// uniform reservoir sampling beyond it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    samples: Vec<f64>,
    // xorshift state for the reservoir replacement draws; deterministic.
    state: u64,
}

impl Reservoir {
    /// A reservoir that stores up to `cap` samples exactly.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be positive");
        Reservoir {
            cap,
            seen: 0,
            samples: Vec::new(),
            state: 0x243F_6A88_85A3_08D3,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Number of observations offered (not necessarily retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// True while every observation is retained, so percentiles are exact.
    pub fn is_exact(&self) -> bool {
        self.seen as usize <= self.cap
    }

    /// The `q`-quantile (`q` in `[0, 1]`) using nearest-rank interpolation;
    /// `NaN` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        // total_cmp gives NaN a fixed sort position (after +inf) instead of
        // panicking, so a single bad sample cannot abort a whole run.
        sorted.sort_by(f64::total_cmp);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// The paper's "tail latency": the 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Log₂-bucketed histogram over non-negative integer values (picoseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl LogHistogram {
    /// An empty histogram (covers the full `u64` range in 65 buckets).
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 65],
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Adds a [`Duration`] observation in picoseconds.
    pub fn push_duration(&mut self, d: Duration) {
        self.push(d.as_ps());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterates `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
    }

    /// Upper bound on the `q`-quantile from bucket boundaries.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Geometric mean of strictly positive values; `NaN` for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_basic_moments() {
        let mut s = Streaming::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let mut whole = Streaming::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for &x in &data[..300] {
            a.push(x);
        }
        for &x in &data[300..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn reservoir_exact_quantiles() {
        let mut r = Reservoir::with_capacity(10_000);
        for i in 1..=100 {
            r.push(i as f64);
        }
        assert!(r.is_exact());
        assert!((r.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((r.quantile(1.0) - 100.0).abs() < 1e-12);
        assert!((r.quantile(0.5) - 50.5).abs() < 1e-12);
        assert!((r.p99() - 99.01).abs() < 1e-9);
    }

    #[test]
    fn reservoir_quantile_survives_nan_sample() {
        // Regression: sort_by(partial_cmp().expect()) used to abort on a
        // NaN sample. total_cmp sorts NaN after +inf, so finite quantiles
        // stay sane and only the extreme upper quantile sees the NaN.
        let mut r = Reservoir::with_capacity(100);
        for i in 1..=9 {
            r.push(i as f64);
        }
        r.push(f64::NAN);
        assert!((r.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((r.quantile(0.5) - 5.5).abs() < 1e-12);
        assert!(r.quantile(1.0).is_nan());
    }

    /// Independent reference: linear interpolation between order statistics
    /// on a fully sorted copy, written from the definition rather than by
    /// calling back into `Reservoir`.
    fn exact_quantile(data: &[f64], q: f64) -> f64 {
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = q * (sorted.len() as f64 - 1.0);
        let below = rank.floor() as usize;
        let above = rank.ceil() as usize;
        let w = rank - below as f64;
        sorted[below] + (sorted[above] - sorted[below]) * w
    }

    #[test]
    fn reservoir_quantiles_match_exact_sorted_reference() {
        // Several sizes, including ones that don't divide the quantile
        // grid evenly; xorshift data so values are unordered and distinct.
        for n in [1usize, 2, 3, 7, 100, 997] {
            let mut r = Reservoir::with_capacity(1000);
            let mut x = 0x9E37_79B9u64 | 1;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = (x % 1_000_003) as f64 / 7.0;
                r.push(v);
                data.push(v);
            }
            assert!(r.is_exact());
            for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let got = r.quantile(q);
                let want = exact_quantile(&data, q);
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "n={n} q={q}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn reservoir_single_sample_is_every_quantile() {
        let mut r = Reservoir::with_capacity(8);
        r.push(42.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(r.quantile(q), 42.5, "q={q}");
        }
    }

    #[test]
    fn reservoir_quantile_is_monotone_in_q() {
        let mut r = Reservoir::with_capacity(100);
        for i in 0..64u64 {
            r.push((i.wrapping_mul(0x9E37_79B9) % 1000) as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = f64::from(i) / 100.0;
            let v = r.quantile(q);
            assert!(v >= last, "quantile regressed at q={q}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn reservoir_empty_quantile_is_nan() {
        let r = Reservoir::with_capacity(4);
        assert!(r.quantile(0.5).is_nan());
    }

    #[test]
    fn reservoir_sampling_stays_close() {
        let mut r = Reservoir::with_capacity(4096);
        for i in 0..100_000u64 {
            r.push(i as f64);
        }
        assert!(!r.is_exact());
        let med = r.quantile(0.5);
        assert!((med - 50_000.0).abs() < 5_000.0, "median {med}");
    }

    #[test]
    fn log_histogram_buckets() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.push(v);
        }
        assert_eq!(h.count(), 7);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert!(buckets.iter().any(|&(lb, c)| lb == 0 && c == 1));
        assert!(buckets.iter().any(|&(lb, c)| lb == 1 && c == 1));
        assert!(buckets.iter().any(|&(lb, c)| lb == 2 && c == 2)); // 2,3
        assert!(buckets.iter().any(|&(lb, c)| lb == 4 && c == 1));
        assert!(buckets.iter().any(|&(lb, c)| lb == 1024 && c == 1));
    }

    #[test]
    fn log_histogram_quantile_bound() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.push(100);
        }
        h.push(1_000_000);
        let q50 = h.quantile_upper_bound(0.5);
        assert!((100..1_000_000).contains(&q50));
        assert!(h.quantile_upper_bound(1.0) >= 1_000_000);
    }

    #[test]
    fn geomean() {
        assert!((geometric_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}

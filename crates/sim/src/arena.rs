//! Generational arena allocation for kernel-side object populations.
//!
//! The datacenter-scale refactor replaces per-object heap allocation
//! (boxed events, map-of-vec ACK batches) with index handles into flat
//! slabs. An [`Arena`] hands out [`Handle`]s — a slot index plus a
//! generation — so a stale handle to a reused slot is detectable instead
//! of silently aliasing a new tenant. Freed slots go on a free list and
//! are reused in LIFO order, which keeps the slab dense and the reuse
//! order deterministic.
//!
//! The arena also keeps the allocation counters the perf fabric and the
//! `scaling` experiment report: live population, high-water mark, total
//! insertions, and slab capacity (see [`ArenaStats`]).

/// A generational handle into an [`Arena`].
///
/// Copyable and order-free: handles are only meaningful against the arena
/// that issued them. The generation disambiguates reuse — a handle whose
/// generation no longer matches its slot is dead and resolves to `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle {
    slot: u32,
    generation: u32,
}

impl Handle {
    /// The raw slot, for diagnostics only (not a stable identifier —
    /// slots are reused; the generation is what makes a handle unique).
    pub fn slot(self) -> u32 {
        self.slot
    }
}

/// One slab slot: the current generation plus the tenant, if any.
#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// Allocation counters for one arena, in the shape the perf fabric and
/// the `scaling` experiment report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Currently live entries.
    pub live: u64,
    /// Peak simultaneous live entries over the arena's lifetime.
    pub high_water: u64,
    /// Total insertions ever (reuse included).
    pub total_inserts: u64,
    /// Slab slots allocated (live + free-listed).
    pub slots: u64,
}

/// A generational slab allocator: `insert` returns a [`Handle`], `remove`
/// retires it and recycles the slot. All storage is two flat `Vec`s — no
/// per-entry heap allocation once the slab has grown to its working set.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: u64,
    high_water: u64,
    total_inserts: u64,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            total_inserts: 0,
        }
    }

    /// An empty arena with slab capacity for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            total_inserts: 0,
        }
    }

    /// Number of live entries.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Allocation counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            live: self.live,
            high_water: self.high_water,
            total_inserts: self.total_inserts,
            slots: self.slots.len() as u64,
        }
    }

    /// Bytes of slab storage currently reserved (capacity, not live
    /// population) — the exact figure the `scaling` experiment charges
    /// per endpoint.
    pub fn state_bytes(&self) -> u64 {
        (self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Inserts `value`, returning its handle. Reuses the most recently
    /// freed slot when one exists (LIFO — deterministic and cache-warm).
    pub fn insert(&mut self, value: T) -> Handle {
        self.total_inserts += 1;
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.value = Some(value);
            return Handle {
                slot,
                generation: s.generation,
            };
        }
        let slot = u32::try_from(self.slots.len()).unwrap_or(u32::MAX);
        debug_assert!(slot < u32::MAX, "arena slab exceeded u32 slots");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        Handle {
            slot,
            generation: 0,
        }
    }

    /// Shared access to a live entry (`None` for stale or foreign handles).
    pub fn get(&self, h: Handle) -> Option<&T> {
        self.slots
            .get(h.slot as usize)
            .filter(|s| s.generation == h.generation)
            .and_then(|s| s.value.as_ref())
    }

    /// Exclusive access to a live entry.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        self.slots
            .get_mut(h.slot as usize)
            .filter(|s| s.generation == h.generation)
            .and_then(|s| s.value.as_mut())
    }

    /// Removes a live entry, returning it and retiring the handle. A
    /// stale or foreign handle is a no-op returning `None`.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let s = self.slots.get_mut(h.slot as usize)?;
        if s.generation != h.generation {
            return None;
        }
        let value = s.value.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(h.slot);
        self.live -= 1;
        Some(value)
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let h1 = a.insert("one");
        let h2 = a.insert("two");
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.get(h2), Some(&"two"));
        assert_eq!(a.live(), 2);
        assert_eq!(a.remove(h1), Some("one"));
        assert_eq!(a.get(h1), None);
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn stale_handles_are_dead_after_reuse() {
        let mut a = Arena::new();
        let h1 = a.insert(1u64);
        assert_eq!(a.remove(h1), Some(1));
        let h2 = a.insert(2u64);
        // LIFO reuse: same slot, new generation.
        assert_eq!(h1.slot(), h2.slot());
        assert_ne!(h1, h2);
        assert_eq!(a.get(h1), None);
        assert_eq!(a.remove(h1), None);
        assert_eq!(a.get(h2), Some(&2));
    }

    #[test]
    fn counters_track_high_water_and_totals() {
        let mut a = Arena::new();
        let hs: Vec<Handle> = (0..10u64).map(|i| a.insert(i)).collect();
        for &h in &hs[..7] {
            a.remove(h);
        }
        a.insert(99);
        let s = a.stats();
        assert_eq!(s.live, 4);
        assert_eq!(s.high_water, 10);
        assert_eq!(s.total_inserts, 11);
        assert_eq!(s.slots, 10);
        assert!(a.state_bytes() > 0);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut a = Arena::new();
        let h = a.insert(vec![1u32]);
        if let Some(v) = a.get_mut(h) {
            v.push(2);
        }
        assert_eq!(a.get(h), Some(&vec![1, 2]));
    }
}

//! Integer picosecond simulated time.
//!
//! All simulations in this workspace share a single time base: one tick is
//! one picosecond. At 25 Gbps a 512-byte packet serializes in exactly
//! 163,840 ps, and the circuit simulator's 60 Gbps bit period is T ≈ 16.67 ps
//! (represented as 16,667 fs by scaling where needed — see `baldur-tl`).
//!
//! [`Time`] is an absolute instant; [`Duration`] is a span. Both are
//! transparent `u64` newtypes so they are free to copy and totally ordered.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute simulated instant, in picoseconds since simulation start.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct Time(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct Duration(pub u64);

impl Time {
    /// The beginning of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "idle forever" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant `ps` picoseconds after simulation start.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates an instant `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates an instant `us` microseconds after simulation start.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier <= self, "since() across negative span");
        Duration(self.0 - earlier.0)
    }

    /// Saturating version of [`Time::since`]: returns zero if `earlier`
    /// is after `self`.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The index of the epoch containing this instant, given sorted
    /// (ascending) epoch boundary times in picoseconds: instants before
    /// the first boundary are epoch 0, instants at or after boundary `i`
    /// are epoch `i + 1`. Fault-epoch metrics bucket observations with
    /// this.
    #[inline]
    pub fn epoch_index(self, boundaries_ps: &[u64]) -> usize {
        boundaries_ps.partition_point(|&b| b <= self.0)
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Creates a span of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000)
    }

    /// Creates a span of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000_000)
    }

    /// Creates a span from fractional nanoseconds, rounding to the nearest
    /// picosecond.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        Duration((ns * 1e3).round() as u64)
    }

    /// The time needed to serialize `bytes` bytes onto a link running at
    /// `gbps` gigabits per second, rounded up to a whole picosecond.
    ///
    /// ```
    /// use baldur_sim::Duration;
    /// // The paper's 512 B packet at 25 Gbps: 163.84 ns.
    /// assert_eq!(Duration::serialization(512, 25.0), Duration::from_ps(163_840));
    /// ```
    pub fn serialization(bytes: u64, gbps: f64) -> Self {
        let bits = bytes as f64 * 8.0;
        Duration((bits / gbps * 1e3).ceil() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiplies the span by an integer factor, saturating at the maximum.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl From<u64> for Time {
    fn from(ps: u64) -> Self {
        Time(ps)
    }
}

impl From<u64> for Duration {
    fn from(ps: u64) -> Self {
        Duration(ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_ns(7).as_ps(), 7_000);
        assert_eq!(Time::from_us(3).as_ps(), 3_000_000);
        assert_eq!(Duration::from_ns(90).as_ps(), 90_000);
        assert_eq!(Duration::from_us(1).as_ns_f64(), 1_000.0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ns(10) + Duration::from_ns(5);
        assert_eq!(t, Time::from_ns(15));
        assert_eq!(t - Time::from_ns(10), Duration::from_ns(5));
        assert_eq!(Duration::from_ns(4) * 3, Duration::from_ns(12));
        assert_eq!(Duration::from_ns(12) / 4, Duration::from_ns(3));
    }

    #[test]
    fn serialization_delay_matches_paper_packet() {
        // 512 B at 25 Gbps is the paper's standard packet (Sec. V-A).
        assert_eq!(
            Duration::serialization(512, 25.0),
            Duration::from_ps(163_840)
        );
        // A 64 B ACK serializes in 20.48 ns.
        assert_eq!(Duration::serialization(64, 25.0), Duration::from_ps(20_480));
    }

    #[test]
    fn saturating_since_is_zero_backwards() {
        let a = Time::from_ns(5);
        let b = Time::from_ns(9);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_ns(4));
    }

    #[test]
    fn display_is_nanoseconds() {
        assert_eq!(format!("{}", Time::from_ps(1_500)), "1.500 ns");
        assert_eq!(format!("{}", Duration::from_ps(163_840)), "163.840 ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_ns).sum();
        assert_eq!(total, Duration::from_ns(10));
    }

    #[test]
    fn epoch_index_buckets_against_sorted_boundaries() {
        let bounds = [1_000, 5_000, 5_000, 9_000];
        assert_eq!(Time::from_ps(0).epoch_index(&bounds), 0);
        assert_eq!(Time::from_ps(999).epoch_index(&bounds), 0);
        assert_eq!(Time::from_ps(1_000).epoch_index(&bounds), 1);
        assert_eq!(Time::from_ps(5_000).epoch_index(&bounds), 3);
        assert_eq!(Time::from_ps(8_999).epoch_index(&bounds), 3);
        assert_eq!(Time::from_ps(9_000).epoch_index(&bounds), 4);
        assert_eq!(Time::MAX.epoch_index(&bounds), 4);
        assert_eq!(Time::from_ps(7).epoch_index(&[]), 0);
    }
}

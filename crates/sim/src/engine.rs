//! Deterministic event queue and simulation run loop.
//!
//! The kernel is intentionally minimal: a binary-heap future event list with
//! a FIFO tie-break sequence number (so same-timestamp events execute in
//! scheduling order, which keeps runs bit-reproducible), and a [`Simulation`]
//! driver that pops events and hands them to the [`Model`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::CalendarQueue;
use crate::time::{Duration, Time};

/// A simulation model: owns all mutable world state and interprets events.
///
/// The model is driven by [`Simulation::run`]; each popped event is passed to
/// [`Model::handle`] together with the current simulated time and a
/// [`Scheduler`] for enqueueing future events.
pub trait Model {
    /// The event vocabulary of this model.
    type Event;

    /// Processes one event at simulated instant `now`.
    fn handle(&mut self, now: Time, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Scheduled<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Queue<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Calendar(CalendarQueue<E>),
}

/// Pending-event population above which an auto-promoting scheduler
/// migrates its heap into a calendar queue. Below this the binary heap's
/// lower constant factors win; above it the calendar queue's O(1)
/// amortized enqueue/dequeue takes over (big network runs keep hundreds
/// of thousands of events in flight). Promotion is invisible to results:
/// both backends pop the exact same `(time, seq)` order.
pub const PROMOTE_PENDING: usize = 16_384;

impl<E> Queue<E> {
    fn len(&self) -> usize {
        match self {
            Queue::Heap(h) => h.len(),
            Queue::Calendar(c) => c.len(),
        }
    }

    fn push(&mut self, at: Time, seq: u64, event: E) {
        match self {
            Queue::Heap(h) => h.push(Scheduled { at, seq, event }),
            Queue::Calendar(c) => c.push(at, seq, event),
        }
    }

    fn peek_time(&self) -> Option<Time> {
        match self {
            Queue::Heap(h) => h.peek().map(|s| s.at),
            Queue::Calendar(c) => c.peek().map(|(t, _)| t),
        }
    }

    fn pop(&mut self) -> Option<(Time, u64, E)> {
        match self {
            Queue::Heap(h) => h.pop().map(|s| (s.at, s.seq, s.event)),
            Queue::Calendar(c) => c.pop(),
        }
    }
}

/// The future event list.
///
/// Events at the same timestamp are delivered in the order they were
/// scheduled, which makes simulations deterministic for a fixed seed.
/// Two backing structures are available: a binary heap (default) and a
/// calendar queue ([`Scheduler::new_calendar`]) that is faster for the
/// large, densely-timed event populations of big network runs. Both
/// deliver the exact same order.
pub struct Scheduler<E> {
    queue: Queue<E>,
    now: Time,
    seq: u64,
    executed: u64,
    /// Auto-promote the heap to a calendar queue past [`PROMOTE_PENDING`]
    /// pending events (set by [`Scheduler::new`]; the explicit-backend
    /// constructors pin their backend for differential tests and the
    /// scheduler microbenchmarks).
    auto_promote: bool,
    /// Peak simultaneous pending events over the scheduler's lifetime.
    peak_pending: usize,
    /// `(time, seq)` of the last popped event, for the `validate`-feature
    /// invariant checks (popped times never decrease; same-time pops obey
    /// FIFO order).
    #[cfg(feature = "validate")]
    last_pop: Option<(Time, u64)>,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero. Starts binary-heap backed
    /// and promotes itself to a calendar queue when the pending population
    /// crosses [`PROMOTE_PENDING`] — the right default at every scale,
    /// since both backends deliver identical pop order.
    pub fn new() -> Self {
        Scheduler {
            queue: Queue::Heap(BinaryHeap::new()),
            now: Time::ZERO,
            seq: 0,
            executed: 0,
            auto_promote: true,
            peak_pending: 0,
            #[cfg(feature = "validate")]
            last_pop: None,
        }
    }

    /// Creates an empty scheduler pinned to the binary heap (never
    /// promotes). For backend-differential tests and the `sched_heap`
    /// microbenchmark, which must measure the heap even past the
    /// promotion threshold.
    pub fn new_heap() -> Self {
        Scheduler {
            auto_promote: false,
            ..Scheduler::new()
        }
    }

    /// Creates an empty calendar-queue-backed scheduler.
    pub fn new_calendar() -> Self {
        Scheduler {
            queue: Queue::Calendar(CalendarQueue::new()),
            now: Time::ZERO,
            seq: 0,
            executed: 0,
            auto_promote: false,
            peak_pending: 0,
            #[cfg(feature = "validate")]
            last_pop: None,
        }
    }

    /// The current simulated time (the timestamp of the event being
    /// processed, or the last processed event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Peak simultaneous pending events over the scheduler's lifetime —
    /// the event-list high-water mark the `scaling` experiment reports.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Total events ever scheduled (the tie-break sequence counter).
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.seq
    }

    /// True when the event list is currently calendar-queue backed
    /// (either constructed that way or auto-promoted).
    pub fn calendar_backed(&self) -> bool {
        matches!(self.queue, Queue::Calendar(_))
    }

    /// Schedules `event` at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (strictly before the current time);
    /// causality violations are programming errors.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, self.seq, event);
        self.seq += 1;
        let depth = self.queue.len();
        if depth > self.peak_pending {
            self.peak_pending = depth;
        }
        if self.auto_promote && depth > PROMOTE_PENDING {
            self.promote();
        }
    }

    /// Drains the heap into a calendar queue, preserving every `(time,
    /// seq)` pair. Pop order is unchanged by construction — the calendar
    /// queue orders by the same key — so promotion never perturbs a run.
    fn promote(&mut self) {
        let Queue::Heap(heap) = &mut self.queue else {
            return;
        };
        let mut cal = CalendarQueue::new();
        for s in std::mem::take(heap) {
            cal.push(s.at, s.seq, s.event);
        }
        self.queue = Queue::Calendar(cal);
    }

    /// Schedules `event` after `delay` from the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (after all events already
    /// queued for this instant).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Pops the next event, returning its timestamp, tie-break sequence
    /// number, and payload, and advancing the clock.
    ///
    /// Exposing the sequence number lets differential tests (and the
    /// scheduler microbenchmarks) compare the *exact* delivery order of
    /// the two queue backends rather than just the timestamps.
    pub fn pop_scheduled(&mut self) -> Option<(Time, u64, E)> {
        let (at, seq, event) = self.queue.pop()?;
        #[cfg(feature = "validate")]
        {
            debug_assert!(
                at >= self.now,
                "popped event time regressed below the clock"
            );
            if let Some((last_at, last_seq)) = self.last_pop {
                debug_assert!(at >= last_at, "popped times must be non-decreasing");
                debug_assert!(
                    at > last_at || seq > last_seq,
                    "same-time events must pop in FIFO (scheduling) order"
                );
            }
            self.last_pop = Some((at, seq));
        }
        self.now = at;
        self.executed += 1;
        Some((at, seq, event))
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_scheduled().map(|(at, _seq, event)| (at, event))
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// Drives a [`Model`] until its event queue drains (or a horizon/budget is
/// reached).
pub struct Simulation<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
}

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The future event list drained.
    Drained,
    /// The time horizon was reached with events still pending.
    Horizon,
    /// The event-count budget was exhausted.
    Budget,
    /// The [`Simulation::run_until_observed`] observer asked to stop
    /// (e.g. a runtime oracle detected livelock — continuing would only
    /// spin to the horizon).
    Stopped,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation around `model` with an empty event queue.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            sched: Scheduler::new(),
        }
    }

    /// Like [`Simulation::new`] but with a calendar-queue event list.
    pub fn new_calendar(model: M) -> Self {
        Simulation {
            model,
            sched: Scheduler::new_calendar(),
        }
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Shared access to the scheduler (e.g. to read the clock).
    pub fn scheduler(&self) -> &Scheduler<M::Event> {
        &self.sched
    }

    /// Exclusive access to the scheduler (e.g. to seed initial events).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Simultaneous exclusive access to model and scheduler, for
    /// initialization code that must call model methods which themselves
    /// schedule events.
    pub fn split(&mut self) -> (&mut M, &mut Scheduler<M::Event>) {
        (&mut self.model, &mut self.sched)
    }

    /// Executes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((now, ev)) => {
                self.model.handle(now, ev, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains. Returns the final simulated time.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.sched.now()
    }

    /// Runs until the queue drains, `horizon` is passed, or `max_events`
    /// events have executed in this call.
    pub fn run_until(&mut self, horizon: Time, max_events: u64) -> StopReason {
        self.run_until_observed(horizon, max_events, u64::MAX, |_, _| true)
    }

    /// [`Simulation::run_until`] with a periodic observation hook: after
    /// every `every` events executed in this call, `observe` sees the
    /// model and the clock. Returning `false` stops the run
    /// ([`StopReason::Stopped`]).
    ///
    /// This is how release-mode runtime oracles (stuck-flow watermarks,
    /// invariant sweeps) get scheduled without an event-queue presence:
    /// the cadence is in executed events, not simulated time, so the
    /// hook is deterministic — the same run observes at the same points
    /// regardless of wall clock, thread count, or queue backend.
    pub fn run_until_observed(
        &mut self,
        horizon: Time,
        max_events: u64,
        every: u64,
        mut observe: impl FnMut(&mut M, Time) -> bool,
    ) -> StopReason {
        let mut budget = max_events;
        let every = every.max(1);
        let mut until_observe = every;
        loop {
            match self.sched.peek_time() {
                None => return StopReason::Drained,
                Some(t) if t > horizon => return StopReason::Horizon,
                Some(_) => {}
            }
            if budget == 0 {
                return StopReason::Budget;
            }
            budget -= 1;
            self.step();
            until_observe -= 1;
            if until_observe == 0 {
                until_observe = every;
                if !observe(&mut self.model, self.sched.now()) {
                    return StopReason::Stopped;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Time, ev: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now.as_ps(), ev));
            if ev == 1 {
                // Fan out two same-time events; FIFO order must hold.
                sched.schedule_now(10);
                sched.schedule_now(11);
                sched.schedule_in(Duration::from_ps(5), 2);
            }
        }
    }

    #[test]
    fn events_execute_in_time_then_fifo_order() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.scheduler_mut().schedule_at(Time::from_ps(100), 1);
        sim.run();
        assert_eq!(
            sim.model().log,
            vec![(100, 1), (100, 10), (100, 11), (105, 2)]
        );
    }

    #[test]
    fn run_until_respects_horizon() {
        struct Ticker;
        impl Model for Ticker {
            type Event = ();
            fn handle(&mut self, _n: Time, _e: (), s: &mut Scheduler<()>) {
                s.schedule_in(Duration::from_ns(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker);
        sim.scheduler_mut().schedule_at(Time::ZERO, ());
        let r = sim.run_until(Time::from_ns(10), u64::MAX);
        assert_eq!(r, StopReason::Horizon);
        assert!(sim.scheduler().now() <= Time::from_ns(10));
        assert_eq!(sim.scheduler().events_executed(), 11); // t=0..=10ns
    }

    #[test]
    fn run_until_respects_budget() {
        struct Ticker;
        impl Model for Ticker {
            type Event = ();
            fn handle(&mut self, _n: Time, _e: (), s: &mut Scheduler<()>) {
                s.schedule_in(Duration::from_ns(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker);
        sim.scheduler_mut().schedule_at(Time::ZERO, ());
        let r = sim.run_until(Time::MAX, 7);
        assert_eq!(r, StopReason::Budget);
        assert_eq!(sim.scheduler().events_executed(), 7);
    }

    #[test]
    fn observer_fires_on_cadence_and_can_stop() {
        struct Ticker;
        impl Model for Ticker {
            type Event = ();
            fn handle(&mut self, _n: Time, _e: (), s: &mut Scheduler<()>) {
                s.schedule_in(Duration::from_ns(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker);
        sim.scheduler_mut().schedule_at(Time::ZERO, ());
        let mut seen: Vec<u64> = Vec::new();
        let r = sim.run_until_observed(Time::MAX, u64::MAX, 3, |_, now| {
            seen.push(now.as_ps());
            seen.len() < 2
        });
        assert_eq!(r, StopReason::Stopped);
        // Observed after events 3 and 6 (t = 2 ns and 5 ns: the first
        // event runs at t=0).
        assert_eq!(sim.scheduler().events_executed(), 6);
        assert_eq!(seen, vec![2_000, 5_000]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sched: Scheduler<()> = Scheduler::new();
        sched.schedule_at(Time::from_ns(5), ());
        // Force time forward.
        sched.pop();
        sched.schedule_at(Time::from_ns(1), ());
    }

    #[test]
    fn auto_promotion_preserves_pop_order_and_counters() {
        let mut auto = Scheduler::<u64>::new();
        let mut heap = Scheduler::<u64>::new_heap();
        let n = (PROMOTE_PENDING + 1_000) as u64;
        // A colliding timestamp pattern so FIFO tie-breaks matter.
        for i in 0..n {
            let at = Time::from_ps((i * 7919) % 4_096);
            auto.schedule_at(at, i);
            heap.schedule_at(at, i);
        }
        assert!(auto.calendar_backed(), "population crossed the threshold");
        assert!(!heap.calendar_backed(), "pinned heap never promotes");
        assert_eq!(auto.peak_pending(), PROMOTE_PENDING + 1_000);
        assert_eq!(auto.events_scheduled(), n);
        loop {
            let a = auto.pop_scheduled();
            let h = heap.pop_scheduled();
            assert_eq!(a, h, "promotion changed delivery order");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn drained_queue_reports_drained() {
        struct Nop;
        impl Model for Nop {
            type Event = ();
            fn handle(&mut self, _n: Time, _e: (), _s: &mut Scheduler<()>) {}
        }
        let mut sim = Simulation::new(Nop);
        sim.scheduler_mut().schedule_at(Time::ZERO, ());
        assert_eq!(sim.run_until(Time::MAX, u64::MAX), StopReason::Drained);
        assert_eq!(sim.scheduler().pending(), 0);
    }
}

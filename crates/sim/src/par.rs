//! Work-stealing thread pool for independent simulation jobs.
//!
//! The reproduction's sweeps (one simulation per load point, topology, or
//! fault scenario) are embarrassingly parallel: every run is a pure
//! function of its `RunConfig`, so fanning runs across threads cannot
//! change any result — only the wall clock. This module provides the
//! fan-out: a std-only pool (the workspace is offline-vendored, so rayon
//! is unavailable) where each worker owns a deque of job indices and
//! steals from its neighbours when it runs dry.
//!
//! Determinism contract: [`par_map`] returns results **in submission
//! order** regardless of which worker executed which job, so downstream
//! CSV/JSON rendering is byte-identical at any thread count — including
//! the serial `threads == 1` path, which runs inline without spawning.
//! `baldur-lint` keeps wall-clock reads out of this crate; the pool never
//! consults a timer.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the worker count for sweeps
/// (`thread_count(0)` consults it; an explicit request wins over it).
pub const THREADS_ENV: &str = "BALDUR_THREADS";

/// Parses a `BALDUR_THREADS`-style value: a positive integer, with
/// surrounding whitespace tolerated. `None`, empty, zero, or garbage all
/// yield `None` (meaning "fall back to the machine's parallelism").
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    match value?.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Resolves the worker count for a sweep: an explicit nonzero `requested`
/// wins; otherwise the `BALDUR_THREADS` environment variable; otherwise
/// the machine's available parallelism (1 if unknown).
pub fn thread_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = parse_threads(std::env::var(THREADS_ENV).ok().as_deref()) {
        return n;
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// submission order.
///
/// Jobs are dealt round-robin into per-worker deques; a worker pops its
/// own jobs from the front and, when dry, steals from the *back* of a
/// neighbour's deque (classic Chase–Lev shape, mutex-based since the
/// workspace forbids `unsafe`). With `threads <= 1` (or a single item)
/// the map runs inline on the caller's thread — no pool, no overhead —
/// and produces the identical result vector.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope join panics after all other
/// workers finish).
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Deal job indices round-robin so early (often heavier) points spread
    // across workers; stealing rebalances whatever the deal got wrong.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots: Vec<Mutex<&mut Option<R>>> = out.iter_mut().map(Mutex::new).collect();

    thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let items = &items;
            let f = &f;
            scope.spawn(move || loop {
                // A poisoned lock means a sibling panicked mid-`f`; the
                // scope will propagate that panic, so recovering the data
                // here is safe and keeps the remaining workers draining.
                let mine = queues[w]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                let job = mine.or_else(|| {
                    (1..workers).find_map(|off| {
                        queues[(w + off) % workers]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop_back()
                    })
                });
                // No job anywhere: every queue was empty at inspection, and
                // jobs are never re-enqueued, so this worker is done.
                let Some(i) = job else { break };
                let r = f(&items[i]);
                **slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            });
        }
    });

    drop(slots);
    out.into_iter()
        .map(|r| match r {
            Some(v) => v,
            None => unreachable!("scope joined with a job still pending"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let items: Vec<u64> = (0..100).collect();
        let got = par_map(4, items.clone(), |&x| x * x);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(1, items.clone(), |&x| x.wrapping_mul(0x9E37).rotate_left(7));
        for threads in [2, 3, 8, 64] {
            let parallel = par_map(threads, items.clone(), |&x| {
                x.wrapping_mul(0x9E37).rotate_left(7)
            });
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map(16, vec![1u32, 2], |&x| x + 1), vec![2, 3]);
        assert_eq!(par_map(16, vec![5u32], |&x| x), vec![5]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(8, Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_job_costs_still_complete() {
        // Front-loaded heavy jobs force the later workers to steal.
        let items: Vec<u32> = (0..16).collect();
        let got = par_map(4, items, |&x| {
            let spins = if x < 2 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(1);
            }
            (x, acc)
        });
        let idx: Vec<u32> = got.iter().map(|&(x, _)| x).collect();
        assert_eq!(idx, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn thread_count_prefers_explicit_request() {
        assert_eq!(thread_count(3), 3);
        assert!(thread_count(0) >= 1);
    }
}

//! Work-stealing thread pool for independent simulation jobs.
//!
//! The reproduction's sweeps (one simulation per load point, topology, or
//! fault scenario) are embarrassingly parallel: every run is a pure
//! function of its `RunConfig`, so fanning runs across threads cannot
//! change any result — only the wall clock. This module provides the
//! fan-out: a std-only pool (the workspace is offline-vendored, so rayon
//! is unavailable) where each worker owns a deque of job indices and
//! steals from its neighbours when it runs dry.
//!
//! Determinism contract: [`par_map`] returns results **in submission
//! order** regardless of which worker executed which job, so downstream
//! CSV/JSON rendering is byte-identical at any thread count — including
//! the serial `threads == 1` path, which runs inline without spawning.
//! `baldur-lint` keeps wall-clock reads out of this crate; the pool never
//! consults a timer.
//!
//! Fault tolerance: [`par_map_isolated`] runs every job under
//! `catch_unwind`, so one panicking job becomes a [`JobSlot::Panicked`]
//! slot instead of tearing down its siblings. An optional failure budget
//! cancels the remaining queue once exceeded (the un-run jobs come back
//! as [`JobSlot::Skipped`]). Watchdog deadlines live a layer up, in
//! `baldur::supervise`, because this crate sits behind the lint wall that
//! bans wall-clock reads.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the worker count for sweeps
/// (`thread_count(0)` consults it; an explicit request wins over it).
pub const THREADS_ENV: &str = "BALDUR_THREADS";

/// Parses a `BALDUR_THREADS`-style value: a positive integer, with
/// surrounding whitespace tolerated. `None`, empty, zero, or garbage all
/// yield `None` (meaning "fall back to the machine's parallelism").
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    match value?.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Resolves the worker count for a sweep: an explicit nonzero `requested`
/// wins; otherwise the `BALDUR_THREADS` environment variable; otherwise
/// the machine's available parallelism (1 if unknown).
pub fn thread_count(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = parse_threads(std::env::var(THREADS_ENV).ok().as_deref()) {
        return n;
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One slot of [`par_map_isolated`]'s submission-ordered result vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSlot<R> {
    /// The job ran to completion.
    Done(R),
    /// The job panicked; the string is the panic payload (or a
    /// placeholder for non-string payloads).
    Panicked(String),
    /// The job never ran: the pool cancelled the remaining queue after
    /// the failure budget was exceeded.
    Skipped,
}

impl<R> JobSlot<R> {
    /// The completed result, if any.
    pub fn done(self) -> Option<R> {
        match self {
            JobSlot::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Renders a panic payload as a deterministic message. `&str` and
/// `String` payloads (everything `panic!` produces in this workspace)
/// pass through verbatim; anything else gets a fixed placeholder so
/// results stay byte-identical across runs and thread counts.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// submission order.
///
/// Jobs are dealt round-robin into per-worker deques; a worker pops its
/// own jobs from the front and, when dry, steals from the *back* of a
/// neighbour's deque (classic Chase–Lev shape, mutex-based since the
/// workspace forbids `unsafe`). With `threads <= 1` (or a single item)
/// the map runs inline on the caller's thread — no pool, no overhead —
/// and produces the identical result vector.
///
/// # Panics
///
/// Propagates a panic from `f` — but, unlike a raw scoped pool, only
/// after every sibling job has completed (jobs run isolated via
/// [`par_map_isolated`], so one bad job never discards its siblings'
/// work).
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (slots, _aborted) = par_map_isolated(threads, items, None, f);
    slots
        .into_iter()
        .map(|slot| match slot {
            JobSlot::Done(r) => r,
            JobSlot::Panicked(msg) => panic!("a parallel job panicked: {msg}"),
            JobSlot::Skipped => unreachable!("no failure budget, so no job is ever skipped"),
        })
        .collect()
}

/// [`par_map`] with per-job panic isolation and an optional failure
/// budget, returning one [`JobSlot`] per item in submission order plus an
/// `aborted` flag.
///
/// Each job runs under `catch_unwind` (safe here: jobs are pure functions
/// of their item, and a panicked job's slot is *only* ever read as
/// [`JobSlot::Panicked`], so no broken invariant can leak). A panicking
/// job therefore yields a structured slot instead of killing siblings.
///
/// `fail_budget` is the number of *tolerated* failures: `Some(b)` cancels
/// the remaining queue once strictly more than `b` jobs have panicked
/// (cancelled jobs come back [`JobSlot::Skipped`] and the returned flag
/// is `true`); `None` never cancels. Note that with `Some(_)` on a
/// multi-worker pool, *which* jobs are skipped depends on scheduling —
/// only the unlimited-budget mode is thread-count deterministic.
pub fn par_map_isolated<T, R, F>(
    threads: usize,
    items: Vec<T>,
    fail_budget: Option<usize>,
    f: F,
) -> (Vec<JobSlot<R>>, bool)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    let run_one = |item: &T| match catch_unwind(AssertUnwindSafe(|| f(item))) {
        Ok(r) => JobSlot::Done(r),
        Err(payload) => JobSlot::Panicked(panic_message(payload.as_ref())),
    };

    if workers <= 1 {
        // Serial path: run inline, in order, honouring the budget exactly
        // like the pool does (failures counted as they occur).
        let mut out = Vec::with_capacity(n);
        let mut failures = 0usize;
        let mut aborted = false;
        for item in &items {
            if aborted {
                out.push(JobSlot::Skipped);
                continue;
            }
            let slot = run_one(item);
            if matches!(slot, JobSlot::Panicked(_)) {
                failures += 1;
                aborted = fail_budget.is_some_and(|b| failures > b);
            }
            out.push(slot);
        }
        return (out, aborted);
    }

    // Deal job indices round-robin so early (often heavier) points spread
    // across workers; stealing rebalances whatever the deal got wrong.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let mut out: Vec<Option<JobSlot<R>>> = (0..n).map(|_| None).collect();
    let slots: Vec<Mutex<&mut Option<JobSlot<R>>>> = out.iter_mut().map(Mutex::new).collect();
    let failures = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let items = &items;
            let run_one = &run_one;
            let failures = &failures;
            let abort = &abort;
            scope.spawn(move || loop {
                // Stop dealing new work once the budget tripped; whatever
                // is left in the queues becomes `Skipped` after the join.
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                // Locks cannot be poisoned here: `run_one` catches every
                // job panic, so no thread ever unwinds while holding one.
                // `into_inner` recovery is kept as a cheap belt-and-braces.
                let mine = queues[w]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                let job = mine.or_else(|| {
                    (1..workers).find_map(|off| {
                        queues[(w + off) % workers]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop_back()
                    })
                });
                // No job anywhere: every queue was empty at inspection, and
                // jobs are never re-enqueued, so this worker is done.
                let Some(i) = job else { break };
                let slot = run_one(&items[i]);
                if matches!(slot, JobSlot::Panicked(_)) {
                    let seen = failures.fetch_add(1, Ordering::Relaxed) + 1;
                    if fail_budget.is_some_and(|b| seen > b) {
                        abort.store(true, Ordering::Relaxed);
                    }
                }
                **slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(slot);
            });
        }
    });

    drop(slots);
    let aborted = abort.load(Ordering::Relaxed);
    let out = out
        .into_iter()
        .map(|slot| match slot {
            Some(s) => s,
            // Left in a queue when the pool cancelled: never ran.
            None => JobSlot::Skipped,
        })
        .collect();
    (out, aborted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let items: Vec<u64> = (0..100).collect();
        let got = par_map(4, items.clone(), |&x| x * x);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(1, items.clone(), |&x| x.wrapping_mul(0x9E37).rotate_left(7));
        for threads in [2, 3, 8, 64] {
            let parallel = par_map(threads, items.clone(), |&x| {
                x.wrapping_mul(0x9E37).rotate_left(7)
            });
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map(16, vec![1u32, 2], |&x| x + 1), vec![2, 3]);
        assert_eq!(par_map(16, vec![5u32], |&x| x), vec![5]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(8, Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_job_costs_still_complete() {
        // Front-loaded heavy jobs force the later workers to steal.
        let items: Vec<u32> = (0..16).collect();
        let got = par_map(4, items, |&x| {
            let spins = if x < 2 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(1);
            }
            (x, acc)
        });
        let idx: Vec<u32> = got.iter().map(|&(x, _)| x).collect();
        assert_eq!(idx, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn thread_count_prefers_explicit_request() {
        assert_eq!(thread_count(3), 3);
        assert!(thread_count(0) >= 1);
    }

    /// Runs `body` with the default panic hook silenced, so expected
    /// panics don't spray backtraces over the test output.
    fn quietly<R>(body: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = body();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn isolated_panics_become_slots_not_pool_teardown() {
        let items: Vec<u32> = (0..40).collect();
        let run = |threads| {
            let (slots, aborted) = par_map_isolated(threads, items.clone(), None, |&x| {
                if x % 7 == 3 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert!(!aborted, "unlimited budget never aborts");
            slots
        };
        let serial = quietly(|| run(1));
        for (i, slot) in serial.iter().enumerate() {
            let x = i as u32;
            if x % 7 == 3 {
                assert_eq!(*slot, JobSlot::Panicked(format!("boom at {x}")));
            } else {
                assert_eq!(*slot, JobSlot::Done(x * 2));
            }
        }
        for threads in [2, 8] {
            let parallel = quietly(|| run(threads));
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn failure_budget_cancels_remaining_queue() {
        // Budget 1: the second failure trips the abort; with one worker
        // the skip set is deterministic (everything after item 11).
        let (slots, aborted) = quietly(|| {
            par_map_isolated(1, (0u32..20).collect(), Some(1), |&x| {
                if x == 4 || x == 11 {
                    panic!("bad {x}");
                }
                x
            })
        });
        assert!(aborted);
        assert_eq!(slots[4], JobSlot::Panicked("bad 4".into()));
        assert_eq!(slots[11], JobSlot::Panicked("bad 11".into()));
        assert!(slots[12..].iter().all(|s| *s == JobSlot::Skipped));
        assert_eq!(slots[5], JobSlot::Done(5));
    }

    #[test]
    fn par_map_propagates_panics_after_siblings_finish() {
        let done = std::sync::atomic::AtomicUsize::new(0);
        let caught = quietly(|| {
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                par_map(4, (0u32..16).collect(), |&x| {
                    if x == 5 {
                        panic!("job 5 exploded");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    x
                })
            }))
        });
        let msg = panic_message(caught.expect_err("must propagate").as_ref());
        assert!(msg.contains("job 5 exploded"), "{msg}");
        assert_eq!(
            done.load(Ordering::Relaxed),
            15,
            "all sibling jobs completed before the panic propagated"
        );
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let p = quietly(|| std::panic::catch_unwind(|| panic!("plain")).expect_err("panics"));
        assert_eq!(panic_message(p.as_ref()), "plain");
        let p = quietly(|| {
            let n = 7;
            std::panic::catch_unwind(move || panic!("formatted {n}")).expect_err("panics")
        });
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
        let p = quietly(|| {
            std::panic::catch_unwind(|| std::panic::panic_any(42u32)).expect_err("panics")
        });
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}

//! A calendar queue (Brown 1988) — the classic O(1)-amortized future
//! event list for discrete-event simulation.
//!
//! Events hash into day buckets by timestamp; a dequeue scans from the
//! current bucket within the current "year". The queue resizes itself
//! (doubling/halving buckets, re-estimating the bucket width from a
//! sample of inter-event gaps) to keep ~1 event per bucket. Ties are
//! broken by sequence number, so it is a drop-in, determinism-preserving
//! replacement for the binary heap in [`crate::engine::Scheduler`]
//! (select it with `Scheduler::new_calendar`).

use crate::time::Time;

/// An entry: `(time, seq)` orders the queue; `E` is the payload.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// A calendar queue over `(Time, seq)`-ordered events.
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one bucket (picoseconds).
    width: u64,
    /// Index of the bucket the next dequeue starts scanning at.
    cursor: usize,
    /// Start time of the cursor bucket's current year window.
    cursor_start: u64,
    len: usize,
    /// Resize thresholds.
    grow_at: usize,
    shrink_at: usize,
}

impl<E> CalendarQueue<E> {
    /// An empty queue with a small initial geometry.
    pub fn new() -> Self {
        Self::with_geometry(16, 1_000)
    }

    /// An empty queue with explicit bucket count (a power of two) and
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two or `width` is zero.
    pub fn with_geometry(buckets: usize, width: u64) -> Self {
        assert!(buckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(width > 0, "bucket width must be positive");
        CalendarQueue {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            width,
            cursor: 0,
            cursor_start: 0,
            len: 0,
            grow_at: buckets * 2,
            shrink_at: buckets / 8,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, at: u64) -> usize {
        // Mask in u64 *before* narrowing: the masked value is < the bucket
        // count (a usize), so the cast can never truncate — even on a
        // 32-bit host where `at / width` alone would not fit.
        let wheel = (at / self.width) & (self.buckets.len() as u64 - 1);
        wheel as usize
    }

    /// Enqueues an event.
    pub fn push(&mut self, at: Time, seq: u64, event: E) {
        let at = at.as_ps();
        // Keep the scan anchor valid: never let an insertion land before
        // the cursor's notion of "now".
        if self.len == 0 || at < self.cursor_start {
            self.cursor_start = at - at % self.width;
            self.cursor = self.bucket_of(at);
        }
        let b = self.bucket_of(at);
        // Insert sorted descending so pop from the tail is the minimum.
        let bucket = &mut self.buckets[b];
        let pos = bucket
            .binary_search_by(|e| (at, seq).cmp(&(e.at, e.seq)))
            .unwrap_or_else(|p| p);
        bucket.insert(pos, Entry { at, seq, event });
        self.len += 1;
        if self.len > self.grow_at {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// The `(time, seq)` of the earliest event.
    pub fn peek(&self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        // Fast path: scan one year from the cursor.
        let n = self.buckets.len();
        let mut start = self.cursor_start;
        let mut idx = self.cursor;
        for _ in 0..n {
            let year_end = start + self.width;
            if let Some(e) = self.buckets[idx].last() {
                if e.at < year_end {
                    return Some((Time::from_ps(e.at), e.seq));
                }
            }
            idx = (idx + 1) & (n - 1);
            start = year_end;
        }
        // Sparse case: direct minimum search.
        self.buckets
            .iter()
            .filter_map(|b| b.last())
            .min_by_key(|e| (e.at, e.seq))
            .map(|e| (Time::from_ps(e.at), e.seq))
    }

    /// Dequeues the earliest event.
    pub fn pop(&mut self) -> Option<(Time, u64, E)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        loop {
            let mut start = self.cursor_start;
            let mut idx = self.cursor;
            for _ in 0..n {
                let year_end = start + self.width;
                let hit = self.buckets[idx]
                    .last()
                    .map(|e| e.at < year_end)
                    .unwrap_or(false);
                // `hit` proved `last()` was Some, so the pop succeeds; an
                // impossible miss just advances the scan instead of
                // panicking.
                if let Some(e) = if hit { self.buckets[idx].pop() } else { None } {
                    self.len -= 1;
                    self.cursor = idx;
                    self.cursor_start = start;
                    if self.len < self.shrink_at && self.buckets.len() > 16 {
                        self.resize(self.buckets.len() / 2);
                    }
                    return Some((Time::from_ps(e.at), e.seq, e.event));
                }
                idx = (idx + 1) & (n - 1);
                start = year_end;
            }
            // Nothing within a year of the cursor: jump the cursor to the
            // global minimum's window and retry (sparse queue). `len > 0`
            // was checked on entry, so a minimum exists; an empty queue
            // (impossible) would just report exhaustion.
            let min_at = self
                .buckets
                .iter()
                .filter_map(|b| b.last())
                .map(|e| e.at)
                .min()?;
            self.cursor_start = min_at - min_at % self.width;
            self.cursor = self.bucket_of(min_at);
        }
    }

    fn resize(&mut self, new_buckets: usize) {
        let new_width = self.estimate_width();
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        let min_at = entries.iter().map(|e| e.at).min().unwrap_or(0);
        self.buckets = (0..new_buckets).map(|_| Vec::new()).collect();
        self.width = new_width;
        self.grow_at = new_buckets * 2;
        self.shrink_at = new_buckets / 8;
        self.cursor_start = min_at - min_at % self.width;
        self.cursor = self.bucket_of(min_at);
        let count = entries.len();
        for e in entries {
            let b = self.bucket_of(e.at);
            let bucket = &mut self.buckets[b];
            let pos = bucket
                .binary_search_by(|x| (e.at, e.seq).cmp(&(x.at, x.seq)))
                .unwrap_or_else(|p| p);
            bucket.insert(pos, e);
        }
        debug_assert_eq!(self.len, count);
    }

    /// Estimates a bucket width from the spread of queued timestamps.
    fn estimate_width(&self) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for b in &self.buckets {
            for e in b {
                lo = lo.min(e.at);
                hi = hi.max(e.at);
            }
        }
        if self.len < 2 || hi <= lo {
            return self.width;
        }
        // Aim for ~1 event per bucket over the occupied span.
        ((hi - lo) / self.len as u64).clamp(1, u64::MAX / 4)
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_ps(50), 1, "b");
        q.push(Time::from_ps(10), 2, "a");
        q.push(Time::from_ps(50), 0, "c");
        q.push(Time::from_ps(10_000), 3, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["a", "c", "b", "d"]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(Time::from_ps(i * 37 % 500), i, i);
        }
        while let Some((t, s)) = q.peek() {
            let (pt, ps, _) = q.pop().expect("non-empty");
            assert_eq!((t, s), (pt, ps));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn survives_resizes_with_mixed_scales() {
        let mut q = CalendarQueue::with_geometry(16, 10);
        // Mix ps-scale and ms-scale events to force geometry churn.
        let mut expect = Vec::new();
        for i in 0..2_000u64 {
            let t = if i % 3 == 0 { i } else { i * 1_000_000 };
            q.push(Time::from_ps(t), i, (t, i));
            expect.push((t, i));
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some((_, _, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut last = 0u64;
        let mut pending = 0usize;
        let mut x: u64 = 0x12345;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if pending == 0 || !x.is_multiple_of(3) {
                // Push an event at or after the last popped time.
                let t = last + x % 1_000;
                q.push(Time::from_ps(t), seq, t);
                seq += 1;
                pending += 1;
            } else {
                let (t, _, _) = q.pop().expect("pending > 0");
                assert!(t.as_ps() >= last, "{} < {last}", t.as_ps());
                last = t.as_ps();
                pending -= 1;
            }
        }
    }
}

//! Quick wall-clock sanity check: runs the paper lineup at 1,024 nodes and
//! prints elapsed time plus headline metrics per network.

use baldur::prelude::*;

fn main() {
    for (name, net) in NetworkKind::paper_lineup(1024) {
        let t0 = std::time::Instant::now();
        let cfg = RunConfig::new(
            1024,
            net,
            Workload::Synthetic {
                pattern: Pattern::RandomPermutation,
                load: 0.7,
                packets_per_node: 200,
            },
        );
        let r = baldur::run(&cfg);
        println!(
            "{name}: {:?} avg {:.0}ns p99 {:.0}ns dr {:.4}",
            t0.elapsed(),
            r.avg_ns,
            r.p99_ns,
            r.delivery_ratio()
        );
    }
}

//! Packet-level simulator throughput for all network models.

use baldur::prelude::*;
use baldur_bench::perf::Group;

fn run_one(net: NetworkKind) -> LatencyReport {
    let cfg = RunConfig::new(
        64,
        net,
        Workload::Synthetic {
            pattern: Pattern::RandomPermutation,
            load: 0.5,
            packets_per_node: 50,
        },
    );
    baldur::run(&cfg)
}

fn main() {
    let mut g = Group::new("network");
    g.sample_size(10);
    for (name, net) in NetworkKind::paper_lineup(64) {
        g.bench_function(&format!("{name}_64n_50p"), || {
            let r = run_one(net.clone());
            assert!(r.delivered > 0);
        });
    }
    g.bench_function("droptool_worst_case_8k", || {
        baldur::net::droptool::worst_case(8_192, 4, Pattern::RandomPermutation, 1)
    });
}

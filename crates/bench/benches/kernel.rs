//! Microbenchmarks of the discrete-event kernel.

use baldur::sim::{Duration, Model, Scheduler, Simulation, Time};
use baldur_bench::perf::Group;

struct Ring {
    hops: u64,
    left: u64,
}

impl Model for Ring {
    type Event = u32;
    fn handle(&mut self, _now: Time, ev: u32, sched: &mut Scheduler<u32>) {
        self.hops += 1;
        if self.left > 0 {
            self.left -= 1;
            sched.schedule_in(Duration::from_ns(1), (ev + 1) % 64);
        }
    }
}

fn main() {
    let mut g = Group::new("kernel");
    let events = 100_000u64;
    g.bench_function("event_chain_100k", || {
        let mut sim = Simulation::new(Ring {
            hops: 0,
            left: events,
        });
        sim.scheduler_mut().schedule_at(Time::ZERO, 0);
        sim.run();
        assert_eq!(sim.model().hops, events + 1);
    });
    g.bench_function("fan_out_calendar_10k", || {
        let mut sim = Simulation::new_calendar(Ring { hops: 0, left: 0 });
        for i in 0..10_000u64 {
            sim.scheduler_mut()
                .schedule_at(Time::from_ps(i * 37 % 100_000), (i % 64) as u32);
        }
        sim.run();
    });
    g.bench_function("fan_out_heap_10k", || {
        let mut sim = Simulation::new(Ring { hops: 0, left: 0 });
        for i in 0..10_000u64 {
            sim.scheduler_mut()
                .schedule_at(Time::from_ps(i * 37 % 100_000), (i % 64) as u32);
        }
        sim.run();
    });
}

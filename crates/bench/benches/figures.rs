//! End-to-end figure regeneration at test scale — `cargo bench` runs the
//! same code paths the harness binaries use, so figure generation itself
//! is perf-tracked.

use baldur::experiments::{self, EvalConfig};
use baldur_bench::perf::Group;

fn main() {
    let mut g = Group::new("figures");
    g.sample_size(10);
    let cfg = EvalConfig::tiny();
    g.bench_function("table_v_tiny", || experiments::table_v(&cfg));
    g.bench_function("figure6_tiny_one_load", || {
        experiments::figure6(&cfg, &[0.3])
    });
    g.bench_function("figure8_power_sweep", experiments::figure8);
    g.bench_function("figure10_cost_sweep", experiments::figure10);
    g.bench_function("figure5_circuit", experiments::figure5);
    g.bench_function("reliability_100k", || {
        experiments::reliability(100_000, 7).expect("no faults injected here")
    });
}

//! End-to-end figure regeneration at test scale — `cargo bench` runs the
//! same code paths the harness binaries use, so figure generation itself
//! is perf-tracked.

use baldur::experiments::{self, EvalConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let cfg = EvalConfig::tiny();
    g.bench_function("table_v_tiny", |b| {
        b.iter(|| experiments::table_v(&cfg))
    });
    g.bench_function("figure6_tiny_one_load", |b| {
        b.iter(|| experiments::figure6(&cfg, &[0.3]))
    });
    g.bench_function("figure8_power_sweep", |b| {
        b.iter(experiments::figure8)
    });
    g.bench_function("figure10_cost_sweep", |b| {
        b.iter(experiments::figure10)
    });
    g.bench_function("figure5_circuit", |b| {
        b.iter(experiments::figure5)
    });
    g.bench_function("reliability_100k", |b| {
        b.iter(|| experiments::reliability(100_000, 7))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

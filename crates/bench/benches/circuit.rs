//! Microbenchmarks of the gate-level circuit simulator and the 2x2 switch.

use baldur::phy::length_code::LengthCode;
use baldur::phy::packet_wave::assemble;
use baldur::tl::netlist::{CircuitSim, Netlist, RunOutcome};
use baldur::tl::switch::{build_switch, SwitchParams};
use baldur_bench::perf::Group;

fn main() {
    let mut g = Group::new("circuit");
    let t = baldur::phy::waveform::BIT_PERIOD_FS;
    g.bench_function("switch_one_packet", || {
        let code = LengthCode::paper();
        let mut n = Netlist::new();
        let sw = build_switch(&mut n, SwitchParams::paper());
        let mut sim = CircuitSim::new(n);
        sim.probe(sw.outputs[0]);
        let pw = assemble(&code, &[false, true], b"BENCHMARK", 10 * t);
        sim.drive(sw.inputs[0], &pw.wave);
        let out = sim.run(pw.end + 3_000_000);
        assert!(matches!(out, RunOutcome::Settled { .. }));
        sim.events_executed()
    });
    g.bench_function("switch_contention", || {
        let code = LengthCode::paper();
        let mut n = Netlist::new();
        let sw = build_switch(&mut n, SwitchParams::paper());
        let mut sim = CircuitSim::new(n);
        let p0 = assemble(&code, &[false, true], b"AA", 10 * t);
        let p1 = assemble(&code, &[false, false], b"BB", 12 * t);
        sim.drive(sw.inputs[0], &p0.wave);
        sim.drive(sw.inputs[1], &p1.wave);
        let out = sim.run(p0.end.max(p1.end) + 3_000_000);
        assert!(matches!(out, RunOutcome::Settled { .. }));
    });
}

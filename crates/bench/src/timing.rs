//! Minimal `std::time::Instant` benchmark harness.
//!
//! The build environment has no `criterion`, so the `benches/` targets use
//! this plain timing loop instead: a fixed warmup, a fixed sample count,
//! and a median/min/mean report per benchmark. Wall-clock use is confined
//! to this crate — the determinism wall (`baldur-lint`) forbids it in the
//! result-producing crates, and benchmarks never feed simulation results.

use std::time::Instant;

/// A named benchmark group printing one line per measured function.
pub struct Group {
    name: String,
    samples: usize,
    warmup: usize,
}

impl Group {
    /// Creates a group with default sample counts (taken from
    /// `BALDUR_BENCH_SAMPLES`, default 10, minimum 3).
    pub fn new(name: &str) -> Self {
        let samples = std::env::var("BALDUR_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10usize)
            .max(3);
        Group {
            name: name.to_string(),
            samples,
            warmup: 1,
        }
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Times `f` and prints `group/name: median (min .. mean)`. The
    /// closure's return value is consumed with [`std::hint::black_box`] so
    /// the work is not optimized away.
    pub fn bench_function<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Self {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times_ns.push(start.elapsed().as_nanos() as f64);
        }
        times_ns.sort_by(f64::total_cmp);
        let median = times_ns[times_ns.len() / 2];
        let min = times_ns[0];
        let mean = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
        println!(
            "{}/{name}: {} (min {} .. mean {}) over {} samples",
            self.name,
            crate::fmt_ns(median),
            crate::fmt_ns(min),
            crate::fmt_ns(mean),
            self.samples
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut g = Group::new("test");
        let mut calls = 0u32;
        g.sample_size(3).bench_function("noop", || {
            calls += 1;
            calls
        });
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }
}

//! Back-compat shim: the timing harness moved to [`crate::perf`], the
//! one module the repo-wide wall-clock lint exempts. The `benches/`
//! targets keep importing `baldur_bench::timing::Group` unchanged.

pub use crate::perf::Group;

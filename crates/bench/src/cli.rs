//! Shared CLI surface for the bench harness: flag parsing, the usage
//! text, the supervision-policy and sweep builders, and the process
//! epilogue/exit helpers. Everything that may terminate the process
//! lives here (see `allowlist.txt`); `runner.rs` stays exit-free.

use std::collections::HashMap;
use std::time::Duration;

use baldur::experiments::EvalConfig;
use baldur::supervise::Policy;
use baldur::sweep::{Sweep, DEFAULT_CACHE_DIR};

/// Renders the shared flag reference for usage errors.
pub fn usage() -> String {
    "common flags:\n\
     --nodes N            active server nodes\n\
     --packets N          packets per node (open-loop runs)\n\
     --rounds N           ping-pong rounds\n\
     --seed N             master seed\n\
     --threads N          worker threads (0 = all cores)\n\
     --json PATH          also write structured results as JSON\n\
     --cache-dir DIR      run-cache directory (default results/cache)\n\
     --no-cache           recompute every run\n\
     --resume             replay journal-confirmed jobs after a crash\n\
     --job-timeout SECS   per-attempt watchdog deadline (default off)\n\
     --timeout-retries N  extra attempts for a timed-out job (default 2)\n\
     --fail-budget N      tolerated failures before aborting the sweep\n\
     --paper              full paper scale (slow)\n\
     --csv PATH           also write the experiment's CSV table\n\
     --set axis=VALUES    override a declared experiment axis\n\
     --list               list every registered experiment and exit\n\
     --describe           print this experiment's JSON descriptor and exit"
        .to_string()
}

/// Reports a usage error on stderr and exits with code 2 (the
/// conventional bad-invocation code, distinct from exit 1 = sweep
/// aborted). Bench binaries are exempt from the library-side
/// `process-exit` lint precisely for this path.
pub fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage());
    std::process::exit(2);
}

/// Minimal `--key value` argument parser (plus boolean `--flag`s).
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments. An argument that is not
    /// `--key [value]` is a usage error (exit 2), not a panic.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let Some(key) = argv[i].strip_prefix("--") else {
                usage_error(&format!("unexpected argument `{}`", argv[i]));
            };
            let key = key.to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                map.insert(key, argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key);
                i += 1;
            }
        }
        Args { map, flags }
    }

    /// True if `--name` was passed as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String value of `--name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Parsed value of `--name`, or `default`. A value that does not
    /// parse is a usage error (exit 2), not a panic.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| usage_error(&format!("--{name}: `{v}` did not parse: {e:?}"))),
            None => default,
        }
    }

    /// Parses `--name` as a comma-separated list of floats (e.g.
    /// `--loads 0.1,0.3,0.5`), or returns `default`. A malformed entry
    /// is a usage error (exit 2) naming the offending piece.
    pub fn get_f64_list(&self, name: &str, default: &[f64]) -> Vec<f64> {
        match self.get(name) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .map(|piece| {
                    piece.trim().parse::<f64>().unwrap_or_else(|_| {
                        usage_error(&format!(
                            "--{name}: `{piece}` is not a number (expected e.g. 0.1,0.3,0.5)"
                        ))
                    })
                })
                .collect(),
        }
    }

    /// Builds an [`EvalConfig`] from the common flags.
    pub fn eval_config(&self) -> EvalConfig {
        let base = if self.flag("paper") {
            EvalConfig::paper()
        } else {
            EvalConfig::quick()
        };
        EvalConfig {
            nodes: self.get_or("nodes", base.nodes),
            packets_per_node: self.get_or("packets", base.packets_per_node),
            pingpong_rounds: self.get_or("rounds", base.pingpong_rounds),
            seed: self.get_or("seed", base.seed),
            threads: self.get_or("threads", base.threads),
        }
    }

    /// Builds the supervision [`Policy`] from `--job-timeout` (seconds),
    /// `--timeout-retries`, and `--fail-budget`.
    pub fn policy(&self) -> Policy {
        let job_timeout = self.get("job-timeout").map(|raw| {
            let secs: f64 = raw.parse().unwrap_or_else(|_| {
                usage_error(&format!(
                    "--job-timeout: `{raw}` is not a number of seconds"
                ))
            });
            if !(secs > 0.0 && secs.is_finite()) {
                usage_error(&format!(
                    "--job-timeout: `{raw}` must be a positive deadline"
                ));
            }
            Duration::from_secs_f64(secs)
        });
        Policy {
            job_timeout,
            timeout_retries: self.get_or("timeout-retries", Policy::default().timeout_retries),
            fail_budget: self.get("fail-budget").map(|raw| {
                raw.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--fail-budget: `{raw}` is not a failure count"))
                })
            }),
        }
    }

    /// Builds the [`Sweep`] runner for this invocation: cached into
    /// `--cache-dir` (default [`DEFAULT_CACHE_DIR`]) unless `--no-cache`
    /// was passed; worker count follows `--threads` / `BALDUR_THREADS`;
    /// supervision follows `--job-timeout` / `--timeout-retries` /
    /// `--fail-budget`; `--resume` replays the completion journal.
    pub fn sweep(&self, cfg: &EvalConfig) -> Sweep {
        let sw = Sweep::new(cfg.threads)
            .with_policy(self.policy())
            .with_resume(self.flag("resume"));
        if self.flag("no-cache") {
            sw
        } else {
            sw.with_cache_dir(self.get("cache-dir").unwrap_or(DEFAULT_CACHE_DIR))
        }
    }

    /// Writes `value` as JSON to the `--json` path, if given.
    ///
    /// # Panics
    ///
    /// Panics if serialization or the write fails.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = self.get("json") {
            let s = serde_json::to_string_pretty(value).expect("serialize results");
            std::fs::write(path, s).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints the per-sweep wall-clock and cache-hit counters to stderr, so
/// result tables on stdout stay clean and diffable.
pub fn print_sweep_summary(sw: &Sweep) {
    eprint!("\n{}", sw.summary());
}

/// The standard harness epilogue: sweep summary, then the per-job
/// failure status table (if any job failed), then — exactly when a
/// failure budget aborted a sweep — exit 1. Partial failures under an
/// unlimited budget report but exit 0: every completed row was already
/// rendered, and reruns replay them from the cache.
pub fn finish(sw: &Sweep) {
    print_sweep_summary(sw);
    if let Some(table) = sw.status_table() {
        eprint!("\n{table}");
    }
    if sw.aborted() {
        std::process::exit(1);
    }
}

/// Unwraps a library-side experiment result, or renders the failure
/// (plus the sweep's status table, which names the job that sank it)
/// and exits 1. For the aggregate experiments whose output is
/// meaningless with a job missing — ablation pairs, reliability tables.
pub fn or_die<T, E: std::fmt::Display>(sw: &Sweep, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            print_sweep_summary(sw);
            if let Some(table) = sw.status_table() {
                eprint!("\n{table}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_flags_are_permissive() {
        let args = Args::default();
        let p = args.policy();
        assert_eq!(p, Policy::default());
        assert_eq!(args.get_f64_list("loads", &[0.1, 0.9]), vec![0.1, 0.9]);
    }
}

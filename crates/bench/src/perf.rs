//! The wall-clock side of the perf subsystem.
//!
//! This module is the **only** place in the repository allowed to read
//! `std::time::Instant` (the repo-wide determinism lint enforces it).
//! The measurement engine itself lives in `baldur::experiments::perf`,
//! clock-free; this module supplies the monotonic nanosecond source via
//! [`baldur::experiments::install_wall_clock`], validates the
//! `BALDUR_BENCH_SAMPLES` override (a malformed or zero value is a
//! usage error, exit 2 — not a silent clamp), and hosts the [`Group`]
//! micro-harness the `benches/` targets use.

use std::sync::OnceLock;
use std::time::Instant;

use baldur::experiments::{WallStats, MIN_SAMPLES};

/// Default timed samples per benchmark when `BALDUR_BENCH_SAMPLES` is
/// unset and no `--samples`/`sample_size` override applies.
pub const DEFAULT_SAMPLES: usize = 10;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call (the process epoch).
///
/// This is the function pointer handed to the clock-free measurement
/// engine; only deltas are ever meaningful.
pub fn monotonic_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Peak resident-set size of this process in bytes: the `VmHWM` line of
/// `/proc/self/status`, kilobytes scaled up. Zero when the file is
/// missing or malformed (non-Linux, stripped procfs) — memory reporting
/// is advisory, exactly like the wall clock.
///
/// Lives here with the other OS reads: the clock-free core calls this
/// through the probe installed by [`install_for_registry`].
pub fn peak_rss_bytes_os() -> u64 {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").unwrap_or_default())
}

/// Extracts `VmHWM:  <n> kB` from a `/proc/self/status` body, in bytes.
pub fn parse_vm_hwm(status: &str) -> u64 {
    for line in status.lines() {
        let Some(rest) = line.strip_prefix("VmHWM:") else {
            continue;
        };
        let kb: u64 = rest
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .unwrap_or(0);
        return kb.saturating_mul(1024);
    }
    0
}

/// Parses a sample-count override (`BALDUR_BENCH_SAMPLES` or an
/// explicit harness value).
///
/// - `None` → [`DEFAULT_SAMPLES`];
/// - non-numeric → `Err` (usage error at the caller);
/// - `0` → `Err` — zero samples would measure nothing, and the old
///   harness silently clamping it to 3 hid exactly the misconfiguration
///   the variable exists to express;
/// - `1`/`2` → clamped up to [`MIN_SAMPLES`] (documented: a median of
///   fewer than three samples is noise, but the intent is clear).
pub fn parse_samples(raw: Option<&str>) -> Result<usize, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_SAMPLES);
    };
    let raw = raw.trim();
    let n: usize = raw
        .parse()
        .map_err(|_| format!("BALDUR_BENCH_SAMPLES: `{raw}` is not an unsigned integer"))?;
    if n == 0 {
        return Err(
            "BALDUR_BENCH_SAMPLES: 0 would measure nothing (use >= 1; values below 3 clamp to 3)"
                .to_string(),
        );
    }
    Ok(n.max(MIN_SAMPLES))
}

/// Reads and validates `BALDUR_BENCH_SAMPLES` from the environment.
/// `Ok(None)` when unset, `Ok(Some(n))` when valid, `Err` when set but
/// malformed or zero.
pub fn samples_from_env() -> Result<Option<usize>, String> {
    match std::env::var("BALDUR_BENCH_SAMPLES") {
        Ok(v) => parse_samples(Some(&v)).map(Some),
        Err(_) => Ok(None),
    }
}

/// Arms the clock-free measurement engine for a bench-binary run:
/// installs [`monotonic_ns`] as the wall-clock source and forwards a
/// validated `BALDUR_BENCH_SAMPLES` override. A malformed override is a
/// usage error (exit 2) — before any work runs.
pub fn install_for_registry() {
    baldur::experiments::install_wall_clock(monotonic_ns);
    baldur::experiments::install_memory_probe(peak_rss_bytes_os);
    match samples_from_env() {
        Ok(Some(n)) => baldur::experiments::override_samples(n),
        Ok(None) => {}
        Err(msg) => crate::cli::usage_error(&msg),
    }
}

/// A named benchmark group printing one line per measured function.
///
/// The `benches/` targets use this plain harness (the build environment
/// has no `criterion`): a fixed warmup, `samples` timed runs, and a
/// robust median/min/MAD report with outlier rejection (shared with the
/// registry's `perf` experiment via [`WallStats`]).
pub struct Group {
    name: String,
    samples: usize,
    warmup: usize,
}

impl Group {
    /// Creates a group. The sample count comes from
    /// `BALDUR_BENCH_SAMPLES` when set (malformed or zero values are a
    /// usage error, exit 2), else [`DEFAULT_SAMPLES`].
    pub fn new(name: &str) -> Self {
        let samples = match samples_from_env() {
            Ok(n) => n.unwrap_or(DEFAULT_SAMPLES),
            Err(msg) => crate::cli::usage_error(&msg),
        };
        Group {
            name: name.to_string(),
            samples,
            warmup: 1,
        }
    }

    /// Overrides the per-benchmark sample count (clamped to
    /// [`MIN_SAMPLES`]). The environment override wins: an explicit
    /// `BALDUR_BENCH_SAMPLES` is the operator speaking.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        match samples_from_env() {
            Ok(Some(_)) => {} // operator override outranks the harness default
            Ok(None) => self.samples = samples.max(MIN_SAMPLES),
            Err(msg) => crate::cli::usage_error(&msg),
        }
        self
    }

    /// Times `f` and prints `group/name: median (min .., mad ..)`. The
    /// closure's return value is consumed with [`std::hint::black_box`]
    /// so the work is not optimized away.
    pub fn bench_function<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Self {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = monotonic_ns();
            std::hint::black_box(f());
            times_ns.push(monotonic_ns().saturating_sub(start) as f64);
        }
        let stats = WallStats::from_samples(&times_ns);
        println!(
            "{}/{name}: {} (min {} .. mad {}) over {} samples ({} rejected)",
            self.name,
            crate::fmt_ns(stats.median_ns),
            crate::fmt_ns(stats.min_ns),
            crate::fmt_ns(stats.mad_ns),
            stats.samples,
            stats.rejected
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut g = Group {
            name: "test".to_string(),
            samples: DEFAULT_SAMPLES,
            warmup: 1,
        };
        let mut calls = 0u32;
        g.sample_size(3).bench_function("noop", || {
            calls += 1;
            calls
        });
        // 1 warmup + 3 samples (no env override in the test harness).
        assert_eq!(calls, 4);
    }

    #[test]
    fn monotonic_ns_is_nondecreasing() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn parse_vm_hwm_reads_kilobytes() {
        let status = "Name:\tperf\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nThreads:\t8\n";
        assert_eq!(parse_vm_hwm(status), 123_456 * 1024);
        assert_eq!(parse_vm_hwm("Name:\tperf\n"), 0);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), 0);
    }

    #[test]
    fn peak_rss_probe_is_positive_on_linux() {
        // The test process has touched memory; /proc is present on the
        // CI image. Elsewhere the probe degrades to zero by contract.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes_os() > 0);
        }
    }

    #[test]
    fn parse_samples_default_when_unset() {
        assert_eq!(parse_samples(None), Ok(DEFAULT_SAMPLES));
    }

    #[test]
    fn parse_samples_rejects_zero() {
        let err = parse_samples(Some("0")).unwrap_err();
        assert!(err.contains("measure nothing"), "{err}");
    }

    #[test]
    fn parse_samples_rejects_garbage() {
        assert!(parse_samples(Some("many")).is_err());
        assert!(parse_samples(Some("-3")).is_err());
        assert!(parse_samples(Some("")).is_err());
    }

    #[test]
    fn parse_samples_clamps_tiny_counts_up() {
        assert_eq!(parse_samples(Some("1")), Ok(MIN_SAMPLES));
        assert_eq!(parse_samples(Some("2")), Ok(MIN_SAMPLES));
        assert_eq!(parse_samples(Some("3")), Ok(3));
        assert_eq!(parse_samples(Some(" 25 ")), Ok(25));
    }
}

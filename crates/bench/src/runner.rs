//! The generic experiment runner: every bench binary is a one-line call
//! into [`registry_main`] naming its spec, and `all_figures` is
//! [`all_figures_main`] iterating the whole registry.
//!
//! Control flow per invocation:
//!
//! 1. parse the shared flags ([`Args`]),
//! 2. resolve the spec from `baldur::registry`,
//! 3. merge axis overrides (`--<axis> VALUES` sugar, then `--set
//!    axis=VALUES`), enabled flags, and the selected mode,
//! 4. build the supervised [`Sweep`] and run the spec's hook,
//! 5. emit console output, CSV/JSON/auxiliary files, and the standard
//!    sweep epilogue.
//!
//! Parameter errors exit 2 (usage); job failures exit 1 via the shared
//! epilogue. This module deliberately contains no `process::exit` and no
//! `unwrap`/`expect` — termination is delegated to `cli`, which carries
//! the lint allowances.

use std::fs;
use std::path::Path;

use baldur::error::BaldurError;
use baldur::registry::{self, ExperimentSpec, Output, Params, RunHook};
use baldur::sweep::Sweep;

use crate::cli::{finish, or_die, usage_error, Args};

/// Writes `contents` to `path`, creating parent directories as needed,
/// and reports the write on stderr (stdout stays clean and diffable).
fn write_file(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("create {}: {e}", parent.display()));
        }
    }
    fs::write(path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Applies `--<axis> VALUES` sugar and `--set axis=VALUES` overrides to
/// `params`. `--set` wins over the sugar form; a malformed or unknown
/// override is a usage error (exit 2).
fn apply_overrides(args: &Args, spec: &ExperimentSpec, params: &mut Params) {
    for axis in spec.axes {
        if let Some(v) = args.get(axis.name) {
            if let Err(e) = params.set(spec, axis.name, v) {
                usage_error(&e.to_string());
            }
        }
    }
    if let Some(raw) = args.get("set") {
        let Some((axis, value)) = raw.split_once('=') else {
            usage_error(&format!("--set: `{raw}` is not of the form axis=VALUES"));
        };
        if let Err(e) = params.set(spec, axis.trim(), value) {
            usage_error(&e.to_string());
        }
    }
    for flag in spec.flags {
        if args.flag(flag.name) {
            if let Err(e) = params.enable(spec, flag.name) {
                usage_error(&e.to_string());
            }
        }
    }
}

/// Selects the hook to run: the first [`Mode`](registry::Mode) whose
/// flag was passed, falling back to the spec's default hook. The default
/// hook is what `all_figures` runs and what the default CSV/JSON paths
/// apply to.
fn select_hook(args: &Args, spec: &ExperimentSpec) -> (RunHook, bool) {
    for mode in spec.modes {
        if args.flag(mode.flag) {
            return (mode.run, false);
        }
    }
    (spec.run, true)
}

/// Runs `hook`, mapping a parameter error to a usage exit (2) and any
/// other failure to the standard sweep-abort exit (1).
fn run_checked(sw: &Sweep, params: &Params, hook: RunHook) -> Output {
    match hook(sw, params) {
        Ok(out) => out,
        Err(e @ BaldurError::InvalidParam { .. }) => usage_error(&e.to_string()),
        Err(e) => or_die(sw, Err::<Output, BaldurError>(e)),
    }
}

/// The entire main body of a single-experiment bench binary.
///
/// # Panics
///
/// Panics when `name` is not registered (a build-time wiring bug, caught
/// by the registry completeness test) or when writing an output file
/// fails.
pub fn registry_main(name: &str) {
    crate::perf::install_for_registry();
    let args = Args::parse();
    if args.flag("list") {
        print!("{}", registry::list_table());
        return;
    }
    let spec = registry::get(name)
        .unwrap_or_else(|| panic!("bench binary names unregistered experiment `{name}`"));
    if args.flag("describe") {
        let doc = serde_json::to_string_pretty(&registry::describe(spec))
            .unwrap_or_else(|e| panic!("serialize descriptor: {e:?}"));
        println!("{doc}");
        return;
    }
    let cfg = args.eval_config();
    let mut params = Params::for_spec(spec, cfg);
    apply_overrides(&args, spec, &mut params);
    let (hook, is_default_hook) = select_hook(&args, spec);
    let sw = args.sweep(&cfg);
    let out = run_checked(&sw, &params, hook);
    print!("{}", out.console);
    let csv_path = args.get("csv").or(if is_default_hook {
        spec.csv_default
    } else {
        None
    });
    if let (Some(path), Some(csv)) = (csv_path, &out.csv) {
        write_file(Path::new(path), csv);
    }
    let json_path = args.get("json").or(if is_default_hook {
        spec.json_default
    } else {
        None
    });
    if let (Some(path), Some(json)) = (json_path, &out.json) {
        write_file(Path::new(path), json);
    }
    for (path, contents) in &out.files {
        write_file(Path::new(path), contents);
    }
    finish(&sw);
}

/// The entire main body of `all_figures`: runs every registered spec's
/// default hook (with its declared `all_figures` overrides) on one
/// shared sweep and writes `<out>/<name>.{csv,json}`, auxiliary files,
/// and gnuplot scripts. Console tables are discarded — this binary's
/// product is the results directory.
///
/// # Panics
///
/// Panics when an output file cannot be written.
pub fn all_figures_main() {
    crate::perf::install_for_registry();
    let args = Args::parse();
    if args.flag("list") {
        print!("{}", registry::list_table());
        return;
    }
    let cfg = args.eval_config();
    let dir_name = args.get("out").unwrap_or("results").to_string();
    let dir = Path::new(&dir_name);
    fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));

    let sw = args.sweep(&cfg);
    eprintln!(
        "running the full figure set at {} nodes ({} worker threads)...",
        cfg.nodes,
        sw.threads()
    );
    for spec in registry::all() {
        let mut params = Params::for_spec(spec, cfg);
        for (axis, value) in (spec.all_figures)(&cfg) {
            // Registry-authored overrides; a failure here is a wiring
            // bug, not a user error.
            if let Err(e) = params.set(spec, axis, &value) {
                panic!("spec `{}` all_figures overrides: {e}", spec.name);
            }
        }
        let out = or_die(&sw, (spec.run)(&sw, &params));
        if let Some(csv) = &out.csv {
            write_file(&dir.join(format!("{}.csv", spec.name)), csv);
        }
        if let Some(json) = &out.json {
            write_file(&dir.join(format!("{}.json", spec.name)), json);
        }
        for (path, contents) in &out.files {
            write_file(&dir.join(path), contents);
        }
        if let Some((gp_name, gp)) = spec.gnuplot {
            write_file(&dir.join(gp_name), gp);
        }
    }
    finish(&sw);
    eprintln!("done: {}", dir.display());
}

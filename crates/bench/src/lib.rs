//! Shared helpers for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. Common flags:
//!
//! * `--nodes N` — active server nodes (default: quick-config 256),
//! * `--packets N` — packets per node for open-loop runs,
//! * `--rounds N` — ping-pong rounds,
//! * `--seed N` — master seed,
//! * `--threads N` — worker threads (default: `BALDUR_THREADS`, then
//!   all cores),
//! * `--json PATH` — also write the structured results as JSON,
//! * `--cache-dir DIR` — run-cache directory (default `results/cache`),
//! * `--no-cache` — recompute every run, bypassing the cache,
//! * `--paper` — use the paper's full scale (1,024 nodes × 10,000
//!   packets; slow).

use std::collections::HashMap;

use baldur::experiments::EvalConfig;
use baldur::sweep::{Sweep, DEFAULT_CACHE_DIR};

pub mod timing;

/// Minimal `--key value` argument parser (plus boolean `--flag`s).
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics on an argument that is not `--key [value]`.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected argument {}", argv[i]))
                .to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                map.insert(key, argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(key);
                i += 1;
            }
        }
        Args { map, flags }
    }

    /// True if `--name` was passed as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String value of `--name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Parsed value of `--name`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.get(name) {
            Some(v) => v.parse().unwrap_or_else(|e| panic!("--{name}: {e:?}")),
            None => default,
        }
    }

    /// Builds an [`EvalConfig`] from the common flags.
    pub fn eval_config(&self) -> EvalConfig {
        let base = if self.flag("paper") {
            EvalConfig::paper()
        } else {
            EvalConfig::quick()
        };
        EvalConfig {
            nodes: self.get_or("nodes", base.nodes),
            packets_per_node: self.get_or("packets", base.packets_per_node),
            pingpong_rounds: self.get_or("rounds", base.pingpong_rounds),
            seed: self.get_or("seed", base.seed),
            threads: self.get_or("threads", base.threads),
        }
    }

    /// Builds the [`Sweep`] runner for this invocation: cached into
    /// `--cache-dir` (default [`DEFAULT_CACHE_DIR`]) unless `--no-cache`
    /// was passed; worker count follows `--threads` / `BALDUR_THREADS`.
    pub fn sweep(&self, cfg: &EvalConfig) -> Sweep {
        let sw = Sweep::new(cfg.threads);
        if self.flag("no-cache") {
            sw
        } else {
            sw.with_cache_dir(self.get("cache-dir").unwrap_or(DEFAULT_CACHE_DIR))
        }
    }

    /// Writes `value` as JSON to the `--json` path, if given.
    ///
    /// # Panics
    ///
    /// Panics if serialization or the write fails.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = self.get("json") {
            let s = serde_json::to_string_pretty(value).expect("serialize results");
            std::fs::write(path, s).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// Formats a nanosecond value the way the paper's figures read.
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "-".into()
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints the per-sweep wall-clock and cache-hit counters to stderr, so
/// result tables on stdout stay clean and diffable.
pub fn print_sweep_summary(sw: &Sweep) {
    eprint!("\n{}", sw.summary());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(250.0), "250.0 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}

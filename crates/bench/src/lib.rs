//! The figure/table harness: one registry-driven runner behind every
//! binary in `src/bin/`.
//!
//! Each binary regenerates one table or figure of the paper by calling
//! [`registry_main`] with its experiment's registry name; `all_figures`
//! calls [`all_figures_main`]. Experiment-specific knobs are declared as
//! axes/flags/modes on the spec in `baldur::registry` and surface
//! automatically as `--<axis> VALUES`, `--<flag>`, `--set axis=VALUES`,
//! `--list`, and `--describe`. Common flags:
//!
//! * `--nodes N` — active server nodes (default: quick-config 256),
//! * `--packets N` — packets per node for open-loop runs,
//! * `--rounds N` — ping-pong rounds,
//! * `--seed N` — master seed,
//! * `--threads N` — worker threads (default: `BALDUR_THREADS`, then
//!   all cores),
//! * `--csv PATH` / `--json PATH` — also write the structured results,
//! * `--cache-dir DIR` — run-cache directory (default `results/cache`),
//! * `--no-cache` — recompute every run, bypassing the cache,
//! * `--resume` — replay jobs the completion journal confirms finished
//!   (crash recovery after a killed run),
//! * `--job-timeout SECS` — watchdog deadline per job attempt (default
//!   off); timed-out jobs are retried with jittered backoff, then
//!   quarantined,
//! * `--timeout-retries N` — extra attempts granted to a timed-out job
//!   (default 2),
//! * `--fail-budget N` — tolerated job failures per sweep before the
//!   remaining jobs are cancelled and the binary exits nonzero
//!   (default: unlimited),
//! * `--paper` — use the paper's full scale (1,024 nodes × 10,000
//!   packets; slow).
//!
//! Malformed flags and bad axis overrides produce a usage message on
//! stderr and exit code 2; job failures produce a per-job status table
//! on stderr and exit code 1 *only* when a failure budget was exhausted
//! (otherwise the partial tables render and the binary exits 0, matching
//! the sweep's drop-failed-rows semantics).

pub mod cli;
pub mod perf;
pub mod runner;

pub use baldur::registry::fmt_ns;
pub use cli::{finish, header, or_die, print_sweep_summary, usage, usage_error, Args};
pub use runner::{all_figures_main, registry_main};

//! Sec. IV-E: retransmission-buffer sizing at 0.7 load.

use baldur::experiments::buffer_sizing_on;
use baldur_bench::{finish, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let sw = args.sweep(&cfg);
    let rows = buffer_sizing_on(&sw, &cfg);
    header(&format!(
        "Retransmission-buffer high-water mark ({} nodes, load 0.7)",
        cfg.nodes
    ));
    for (pattern, bytes) in &rows {
        println!(
            "{pattern:>20}: {:>9} bytes ({:.1} KB)",
            bytes,
            *bytes as f64 / 1024.0
        );
    }
    println!("(paper: 536 KB sufficient; 1 MB provisioned)");
    args.maybe_write_json(&rows);
    finish(&sw);
}

//! Sec. IV-E: retransmission-buffer sizing at 0.7 load.

fn main() {
    baldur_bench::registry_main("buffers")
}

//! Figure 6: average and tail latency versus input load, four synthetic
//! patterns x five networks.

use baldur::experiments::figure6_on;
use baldur_bench::{finish, fmt_ns, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let loads = args.get_f64_list("loads", &[0.1, 0.3, 0.5, 0.7, 0.9]);
    let sw = args.sweep(&cfg);
    let rows = figure6_on(&sw, &cfg, &loads);
    for pattern in [
        "random_permutation",
        "transpose",
        "bisection",
        "group_permutation",
    ] {
        header(&format!(
            "Figure 6: {pattern} ({} nodes, {} pkts/node)",
            cfg.nodes, cfg.packets_per_node
        ));
        println!(
            "{:>14} | {}",
            "network",
            loads
                .iter()
                .map(|l| format!("{l:>22.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for net in ["baldur", "electrical_mb", "dragonfly", "fattree", "ideal"] {
            let cells: Vec<String> = loads
                .iter()
                .map(|&l| {
                    // A missing cell means that job failed and was
                    // dropped by the sweep; render a hole, not a panic.
                    match rows
                        .iter()
                        .find(|r| r.pattern == pattern && r.network == net && r.load == l)
                    {
                        Some(r) => format!(
                            "{:>10}/{:>11}",
                            fmt_ns(r.report.avg_ns),
                            fmt_ns(r.report.p99_ns)
                        ),
                        None => format!("{:>10}/{:>11}", "-", "-"),
                    }
                })
                .collect();
            println!("{net:>14} | {}", cells.join(" "));
        }
        println!("(cells are avg/p99 latency)");
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, baldur::csv::fig6(&rows)).expect("write CSV");
        eprintln!("wrote {path}");
    }
    args.maybe_write_json(&rows);
    finish(&sw);
}

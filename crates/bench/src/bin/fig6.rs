//! Figure 6: average and tail latency versus input load, four synthetic
//! patterns x five networks.

fn main() {
    baldur_bench::registry_main("fig6")
}

//! Hot-path microbenchmarks: exact work counters, wall-clock
//! statistics, and the `BENCH_8.json` perf-trajectory artifact.

fn main() {
    baldur_bench::registry_main("perf")
}

//! Fault injection and degradation curves.
//!
//! Default mode sweeps the failed-element fraction (0–20%) across Baldur
//! and the electrical baselines and writes `results/faults.csv` plus a
//! JSON summary — the kill sets nest, so goodput degrades monotonically
//! in the fraction. Extra modes:
//!
//! * `--smoke` — CI gate: a small topology at 5% failures, run twice,
//!   asserting packet conservation (delivered + abandoned = generated)
//!   and byte-identical CSVs across the two runs; exits nonzero on any
//!   violation.
//! * `--diagnose` — the Sec. IV-F demo: one dead switch, path rotation
//!   routing around it, then deterministic test-mode probing to isolate
//!   it.
//! * `--fractions a,b,c` — override the swept fractions.

use baldur::experiments::{degradation, degradation_on, DegradationRow, EvalConfig};
use baldur::net::baldur_net::simulate_with_faults;
use baldur::net::diagnosis::locate_faulty_switch;
use baldur::net::driver::Driver;
use baldur::prelude::*;
use baldur::topo::multibutterfly::MultiButterfly;
use baldur_bench::{finish, fmt_ns, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    if args.flag("diagnose") {
        diagnose(&args, &cfg);
        return;
    }
    if args.flag("smoke") {
        smoke(&cfg);
        return;
    }
    sweep(&args, &cfg);
}

fn fractions(args: &Args) -> Vec<f64> {
    args.get_f64_list("fractions", &[0.0, 0.025, 0.05, 0.10, 0.15, 0.20])
}

fn print_rows(rows: &[DegradationRow]) {
    let mut networks: Vec<&str> = rows.iter().map(|r| r.network.as_str()).collect();
    networks.dedup();
    println!(
        "{:>14} | {:>8} | {:>8} | {:>10} | {:>10} | {:>9} | {:>9}",
        "network", "fraction", "goodput", "avg", "p99", "abandoned", "retx"
    );
    for net in networks {
        for r in rows.iter().filter(|r| r.network == net) {
            println!(
                "{:>14} | {:>8.3} | {:>7.2}% | {:>10} | {:>10} | {:>9} | {:>9}",
                r.network,
                r.fraction,
                r.report.delivery_ratio() * 100.0,
                fmt_ns(r.report.avg_ns),
                fmt_ns(r.report.p99_ns),
                r.report.abandoned,
                r.report.retransmissions
            );
        }
    }
}

fn sweep(args: &Args, cfg: &EvalConfig) {
    let fracs = fractions(args);
    header(&format!(
        "Degradation curves: failed-element fraction sweep ({} nodes, {} pkts/node)",
        cfg.nodes, cfg.packets_per_node
    ));
    let sw = args.sweep(cfg);
    let rows = degradation_on(&sw, cfg, &fracs);
    print_rows(&rows);
    std::fs::create_dir_all("results").expect("create results/");
    let csv_path = args.get("csv").unwrap_or("results/faults.csv");
    std::fs::write(csv_path, baldur::csv::faults(&rows)).expect("write CSV");
    eprintln!("wrote {csv_path}");
    let json_path = args.get("json").unwrap_or("results/faults.json");
    let s = serde_json::to_string_pretty(&rows).expect("serialize results");
    std::fs::write(json_path, s).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    eprintln!("wrote {json_path}");
    finish(&sw);
}

/// CI gate: small topology, 5% failures, fixed seed; conservation and
/// run-to-run determinism must hold exactly.
fn smoke(cfg: &EvalConfig) {
    let small = EvalConfig {
        nodes: cfg.nodes.min(64),
        packets_per_node: cfg.packets_per_node.min(40),
        ..*cfg
    };
    let fracs = [0.0, 0.05];
    header(&format!(
        "Fault smoke: {} nodes, {} pkts/node, 5% failures, seed {}",
        small.nodes, small.packets_per_node, small.seed
    ));
    let first = degradation(&small, &fracs);
    let second = degradation(&small, &fracs);
    let csv_a = baldur::csv::faults(&first);
    let csv_b = baldur::csv::faults(&second);
    let mut failed = false;
    if csv_a != csv_b {
        eprintln!("FAIL: same-seed runs are not byte-identical");
        failed = true;
    }
    for r in &first {
        let accounted = r.report.delivered + r.report.abandoned;
        if accounted != r.report.generated {
            eprintln!(
                "FAIL: {} at fraction {}: delivered {} + abandoned {} != generated {}",
                r.network, r.fraction, r.report.delivered, r.report.abandoned, r.report.generated
            );
            failed = true;
        }
        if r.fraction <= 0.0 && r.report.abandoned != 0 {
            eprintln!(
                "FAIL: {} abandoned {} packets with no faults injected",
                r.network, r.report.abandoned
            );
            failed = true;
        }
    }
    print_rows(&first);
    if failed {
        std::process::exit(1);
    }
    println!("fault smoke OK: conservation + determinism hold");
}

/// The original Sec. IV-F demo: dead switch, rotation, diagnosis.
fn diagnose(args: &Args, cfg: &EvalConfig) {
    let nodes = cfg.nodes.next_power_of_two();
    let stages = nodes.trailing_zeros();
    let fault = (stages / 2, nodes / 4); // somewhere mid-network
    let params = BaldurParams {
        path_rotation: true,
        ..BaldurParams::paper_for(u64::from(nodes))
    };

    header(&format!(
        "Fault tolerance: dead switch at stage {} index {} ({} nodes)",
        fault.0, fault.1, nodes
    ));
    for (label, faults) in [("healthy", vec![]), ("faulty", vec![fault])] {
        let d = Driver::open_loop(
            nodes,
            Pattern::RandomPermutation,
            0.5,
            cfg.packets_per_node,
            &LinkParams::paper(),
            cfg.seed,
        );
        let r = simulate_with_faults(
            nodes,
            params,
            LinkParams::paper(),
            d,
            cfg.seed,
            None,
            &faults,
        );
        println!(
            "{label:>8}: delivered {:>6.2}% | avg {:>10} | retransmissions {:>7} | drops {:>7}",
            r.delivery_ratio() * 100.0,
            fmt_ns(r.avg_ns),
            r.retransmissions,
            r.drop_attempts
        );
    }

    header("Diagnosis: isolating the dead switch with test-mode probes");
    let topo = MultiButterfly::new(nodes, params.multiplicity, cfg.seed);
    let result = locate_faulty_switch(&topo, &|loc| loc == fault, cfg.seed, 100_000);
    match result.suspect {
        Some(loc) => println!(
            "isolated switch (stage {}, index {}) after {} probes — {}",
            loc.0,
            loc.1,
            result.probes_used,
            if loc == fault { "CORRECT" } else { "WRONG" }
        ),
        None => println!(
            "not isolated within budget ({} candidates left)",
            result.candidates_left
        ),
    }
    args.maybe_write_json(&result);
}

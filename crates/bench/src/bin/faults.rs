//! Sec. IV-F in action: inject a dead switch, watch the network keep
//! delivering (with the path-rotation extension), then isolate the fault
//! with deterministic test-mode probing.

use baldur::net::baldur_net::simulate_with_faults;
use baldur::net::diagnosis::locate_faulty_switch;
use baldur::net::driver::Driver;
use baldur::prelude::*;
use baldur::topo::multibutterfly::MultiButterfly;
use baldur_bench::{fmt_ns, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let nodes = cfg.nodes.next_power_of_two();
    let stages = nodes.trailing_zeros();
    let fault = (stages / 2, nodes / 4); // somewhere mid-network
    let params = BaldurParams {
        path_rotation: true,
        ..BaldurParams::paper_for(u64::from(nodes))
    };

    header(&format!(
        "Fault tolerance: dead switch at stage {} index {} ({} nodes)",
        fault.0, fault.1, nodes
    ));
    for (label, faults) in [("healthy", vec![]), ("faulty", vec![fault])] {
        let d = Driver::open_loop(
            nodes,
            Pattern::RandomPermutation,
            0.5,
            cfg.packets_per_node,
            &LinkParams::paper(),
            cfg.seed,
        );
        let r = simulate_with_faults(
            nodes,
            params,
            LinkParams::paper(),
            d,
            cfg.seed,
            None,
            &faults,
        );
        println!(
            "{label:>8}: delivered {:>6.2}% | avg {:>10} | retransmissions {:>7} | drops {:>7}",
            r.delivery_ratio() * 100.0,
            fmt_ns(r.avg_ns),
            r.retransmissions,
            r.drop_attempts
        );
    }

    header("Diagnosis: isolating the dead switch with test-mode probes");
    let topo = MultiButterfly::new(nodes, params.multiplicity, cfg.seed);
    let result = locate_faulty_switch(&topo, &|loc| loc == fault, cfg.seed, 100_000);
    match result.suspect {
        Some(loc) => println!(
            "isolated switch (stage {}, index {}) after {} probes — {}",
            loc.0,
            loc.1,
            result.probes_used,
            if loc == fault { "CORRECT" } else { "WRONG" }
        ),
        None => println!(
            "not isolated within budget ({} candidates left)",
            result.candidates_left
        ),
    }
    args.maybe_write_json(&result);
}

//! Fault injection: degradation curves (default), `--smoke` CI gate, and
//! the `--diagnose` dead-switch demo.

fn main() {
    baldur_bench::registry_main("faults")
}

//! Saturation sweep: accepted versus offered load per network.

fn main() {
    baldur_bench::registry_main("saturation")
}

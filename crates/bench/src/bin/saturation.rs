//! Offered versus accepted load (the saturation companion to Figure 6).

use baldur::experiments::saturation_on;
use baldur_bench::{finish, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let sw = args.sweep(&cfg);
    let rows = saturation_on(&sw, &cfg, &loads);
    header(&format!(
        "Saturation: accepted load vs offered (uniform random, {} nodes)",
        cfg.nodes
    ));
    print!("{:>14}", "network");
    for l in loads {
        print!("{l:>7.1}");
    }
    println!();
    for net in ["baldur", "electrical_mb", "dragonfly", "fattree", "ideal"] {
        print!("{net:>14}");
        for &l in &loads {
            // A missing cell means that job failed and was dropped by
            // the sweep; render a hole, not a panic.
            match rows.iter().find(|r| r.network == net && r.offered == l) {
                Some(r) => print!("{:>7.2}", r.accepted),
                None => print!("{:>7}", "-"),
            }
        }
        println!();
    }
    println!("(a network saturates where accepted stops tracking offered)");
    if let Some(path) = args.get("csv") {
        std::fs::write(path, baldur::csv::saturation(&rows)).expect("write CSV");
        eprintln!("wrote {path}");
    }
    args.maybe_write_json(&rows);
    finish(&sw);
}

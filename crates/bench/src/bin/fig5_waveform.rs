//! Figure 5: the 2x2 switch waveform, reproduced at gate level.

fn main() {
    baldur_bench::registry_main("fig5")
}

//! Figure 5: the 2x2 switch waveform, reproduced at gate level.
//!
//! Prints an ASCII timing diagram and (with `--vcd PATH`) writes a VCD
//! file for a waveform viewer.

use baldur::experiments::figure5;
use baldur_bench::{header, Args};

fn main() {
    let args = Args::parse();
    let f = figure5();
    header("Figure 5: switch simulation waveform (routing bit 0 -> output 0)");
    print!("{}", f.ascii);
    println!("\npacket exited on output port {}", f.output_port);
    if let Some(path) = args.get("vcd") {
        std::fs::write(path, &f.vcd).expect("write VCD");
        eprintln!("wrote {path}");
    }
    args.maybe_write_json(&f.output_port);
}

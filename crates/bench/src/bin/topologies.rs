//! Staged-topology comparison: the paper's isomorphism claim plus the
//! value of randomization.

fn main() {
    baldur_bench::registry_main("topologies")
}

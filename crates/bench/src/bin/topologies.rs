//! Staged-topology comparison: the paper's isomorphism claim ("we expect
//! Baldur to achieve similar results with other multi-stage topologies")
//! plus the value of randomization.

use baldur::experiments::topology_comparison_on;
use baldur_bench::{finish, fmt_ns, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let sw = args.sweep(&cfg);
    let rows = topology_comparison_on(&sw, &cfg);
    header(&format!(
        "Baldur on three staged topologies ({} nodes, load 0.6)",
        cfg.nodes
    ));
    println!(
        "{:>18} | {:>16} | {:>10} | {:>10} | {:>8}",
        "topology", "pattern", "avg", "p99", "drop %"
    );
    for r in &rows {
        println!(
            "{:>18} | {:>16} | {:>10} | {:>10} | {:>8.3}",
            r.topology,
            r.pattern,
            fmt_ns(r.report.avg_ns),
            fmt_ns(r.report.p99_ns),
            r.report.drop_rate * 100.0
        );
    }
    println!("(uniform traffic: all three are near-identical — the paper's");
    println!(" isomorphism claim; transpose: only randomized wiring survives)");
    args.maybe_write_json(&rows);
    finish(&sw);
}

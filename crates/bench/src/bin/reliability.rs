//! Sec. IV-F: timing-jitter reliability analysis.

fn main() {
    baldur_bench::registry_main("reliability")
}

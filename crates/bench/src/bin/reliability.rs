//! Sec. IV-F: timing-jitter reliability analysis.

use baldur::experiments::reliability_on;
use baldur_bench::{finish, header, or_die, Args};

fn main() {
    let args = Args::parse();
    let samples = args.get_or("samples", 2_000_000u64);
    let sw = args.sweep(&args.eval_config());
    let r = or_die(&sw, reliability_on(&sw, samples, args.get_or("seed", 7u64)));
    header("Sec. IV-F reliability (jitter N(0, 1.53 ps^2), margin 0.42T)");
    println!("sigma                 {:>10.3} ps", r.sigma_ps);
    println!(
        "margin                {:>10.3} ps ({:.2} sigma)",
        r.margin_ps, r.margin_sigmas
    );
    println!(
        "analytic P(error)     {:>10.2e}  (paper: ~1e-9)",
        r.analytic_error_probability
    );
    println!("\nMonte Carlo validation ({samples} samples):");
    println!("threshold | measured   | analytic");
    for (thr, mc, an) in &r.monte_carlo {
        println!("{thr:>8.1}s | {mc:>10.3e} | {an:>10.3e}");
    }
    args.maybe_write_json(&r);
    finish(&sw);
}

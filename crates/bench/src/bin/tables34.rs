//! Tables III/IV + the Sec. IV-B encoding-overhead analysis.

fn main() {
    baldur_bench::registry_main("tables34")
}

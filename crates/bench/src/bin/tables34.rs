//! Tables III/IV + the Sec. IV-B encoding-overhead analysis.

use baldur::phy::overhead::length_code_overhead;
use baldur::tl::device::{TlDevice, TlGate};
use baldur_bench::header;

fn main() {
    header("Table III: TL device parameters");
    let d = TlDevice::PAPER;
    println!(
        "junction capacitance     {:>8.1} fF",
        d.junction_capacitance_ff
    );
    println!(
        "recombination lifetime   {:>8.1} ps",
        d.recombination_lifetime_ps
    );
    println!("photon lifetime          {:>8.2} ps", d.photon_lifetime_ps);
    println!("wavelength               {:>8.0} nm", d.wavelength_nm);
    println!(
        "threshold current        {:>8.1} mA",
        d.threshold_current_ma
    );
    println!("bias current             {:>8.1} mA", d.bias_current_ma);

    header("Table IV: TL gate figures of merit");
    let g = TlGate::PAPER;
    println!(
        "area {:>5.0} um^2 | rise/fall {:>4.1} ps | delay {:>5.2} ps | power {:>6.3} mW | {:>3.0} Gbps | {:.2} fJ/bit",
        g.area_um2, g.rise_fall_ps, g.delay_ps, g.power_mw, g.data_rate_gbps,
        g.energy_per_bit_fj()
    );

    header("Sec. IV-B: length-code bandwidth overhead");
    for (bits, payload) in [(8u64, 512u64), (10, 512), (20, 512), (8, 64)] {
        let o = length_code_overhead(bits, payload);
        println!(
            "{bits:>3} routing bits + {payload:>4} B payload -> {:>6.3}% overhead",
            o.fraction * 100.0
        );
    }
    println!("(paper quotes ~0.34% for 8 routing bits + 512 B)");
}

//! Sec. IV-E: the worst-case simultaneous-injection drop tool.
//!
//! `--big` extends the sweep to 1M+ nodes (the paper's exascale check).

use baldur::experiments::droptool_study_on;
use baldur_bench::{finish, header, Args};

fn main() {
    let args = Args::parse();
    let seed = args.get_or("seed", 0xBA1Du64);
    let mut scales: Vec<u32> = vec![256, 1_024, 8_192, 65_536];
    if args.flag("big") {
        scales.push(1 << 20);
    }
    let sw = args.sweep(&args.eval_config());
    let (rows, required) = droptool_study_on(&sw, &scales, seed);
    header("Worst-case burst drop rate (%)");
    println!(
        "{:>9} | {:>18} | m=1    m=2    m=3    m=4    m=5",
        "nodes", "pattern"
    );
    let mut by_key: std::collections::BTreeMap<(u32, String), Vec<f64>> = Default::default();
    for r in &rows {
        by_key
            .entry((r.nodes, r.pattern.clone()))
            .or_default()
            .push(r.drop_rate * 100.0);
    }
    for ((nodes, pattern), drops) in &by_key {
        let cells: Vec<String> = drops.iter().map(|d| format!("{d:>6.2}")).collect();
        println!("{nodes:>9} | {pattern:>18} | {}", cells.join(" "));
    }
    header("Required multiplicity for <1% worst-case burst drops");
    for (nodes, m) in &required {
        println!("{nodes:>9} nodes -> m = {m}");
    }
    println!("(paper: m=4 at 1K, m=5 sufficient for >1M)");
    args.maybe_write_json(&rows);
    finish(&sw);
}

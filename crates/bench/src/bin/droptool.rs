//! Sec. IV-E: the worst-case simultaneous-injection drop tool.

fn main() {
    baldur_bench::registry_main("droptool")
}

//! Overload storms: incast/hotcast at 0.5x-4x load with admission
//! control, delivery deadlines, and a graceful-degradation gate
//! (default), plus the `--smoke` CI gate.

fn main() {
    baldur_bench::registry_main("overload")
}

//! Table V: drop rate and hardware cost versus path multiplicity.

fn main() {
    baldur_bench::registry_main("table5")
}

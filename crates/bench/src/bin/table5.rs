//! Table V: gates, latency, and drop rate versus path multiplicity.

use baldur::experiments::table_v_on;
use baldur_bench::{finish, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let sw = args.sweep(&cfg);
    let rows = table_v_on(&sw, &cfg);
    header(&format!(
        "Table V (transpose @ 0.7 load, {} nodes, {} pkts/node)",
        cfg.nodes, cfg.packets_per_node
    ));
    println!("multiplicity | gates | latency (ns) | drop % (paper @1K) | drop % (measured)");
    for r in &rows {
        println!(
            "{:>12} | {:>5} | {:>12.2} | {:>18.2} | {:>17.3}",
            r.multiplicity, r.gates, r.latency_ns, r.paper_drop_pct, r.measured_drop_pct
        );
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, baldur::csv::table5(&rows)).expect("write CSV");
        eprintln!("wrote {path}");
    }
    args.maybe_write_json(&rows);
    finish(&sw);
}

//! Sec. IV-G: cabinets, PCBs, interposers under fiber-pitch and power
//! constraints.

use baldur::cost::packaging_for;
use baldur_bench::{header, Args};

fn main() {
    let args = Args::parse();
    header("Sec. IV-G packaging");
    println!(
        "{:>10} | m | stages | {:>11} | {:>7} | fiber-lim | power-lim | cabinets | TL area",
        "nodes", "interposers", "pcbs"
    );
    let mut rows = Vec::new();
    for nodes in [1_024u64, 16_384, 131_072, 1 << 20] {
        let p = packaging_for(nodes);
        println!(
            "{:>10} | {} | {:>6} | {:>11} | {:>7} | {:>9} | {:>9} | {:>8} | {:>6.2}%",
            p.nodes,
            p.multiplicity,
            p.stages,
            p.interposers,
            p.pcbs,
            p.cabinets_fiber_limited,
            p.cabinets_power_limited,
            p.cabinets(),
            p.tl_area_fraction * 100.0
        );
        rows.push(p);
    }
    println!("(paper: 1 cabinet at 1K; 752 at 1M with fiber pitch binding, 176 power-only)");
    args.maybe_write_json(&rows);
}

//! Sec. IV-G: cabinets, PCBs, interposers under fiber-pitch and power
//! constraints.

fn main() {
    baldur_bench::registry_main("packaging")
}

//! Figure 10: per-node network cost versus scale.

fn main() {
    baldur_bench::registry_main("fig10")
}

//! Figure 10: Baldur cost per server node versus scale.

use baldur::cost::components::{FATTREE_2560_COST_PER_NODE, OCS_COST_PER_NODE};
use baldur::experiments::figure10_on;
use baldur_bench::{finish, header, Args};

fn main() {
    let args = Args::parse();
    let sw = args.sweep(&args.eval_config());
    let rows = figure10_on(&sw);
    header("Figure 10: cost per node (USD)");
    println!(
        "{:>10} | {:>12} {:>8} {:>8} {:>8} {:>8} | {:>9} | dominant",
        "scale", "interposers", "fibers", "faus", "rfecs", "xcvrs", "total"
    );
    for r in &rows {
        let b = &r.breakdown;
        println!(
            "{:>10} | {:>12.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} | {:>9.0} | {}",
            r.label,
            b.interposers,
            b.fibers,
            b.faus,
            b.rfecs,
            b.transceivers,
            b.total(),
            b.dominant()
        );
    }
    println!(
        "(anchors: paper Baldur ~523 USD/node at 1K-2K; fat-tree {FATTREE_2560_COST_PER_NODE:.0}; OCS {OCS_COST_PER_NODE:.0})"
    );
    if let Some(path) = args.get("csv") {
        std::fs::write(path, baldur::csv::fig10(&rows)).expect("write CSV");
        eprintln!("wrote {path}");
    }
    args.maybe_write_json(&rows);
    finish(&sw);
}

//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **Wiring randomization** — the expansion property (Sec. IV-E): the
//!    randomized multi-butterfly versus a structured dilated butterfly
//!    under the adversarial transpose permutation.
//! 2. **Binary exponential backoff** — retransmission throttling under a
//!    hotspot.
//!
//! (The third design knob, path multiplicity, is Table V: `--bin table5`.)

use baldur::experiments::{backoff_ablation_on, wiring_ablation_on};
use baldur_bench::{finish, fmt_ns, header, or_die, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let sw = args.sweep(&cfg);

    let w = or_die(&sw, wiring_ablation_on(&sw, &cfg));
    header(&format!(
        "Ablation 1: wiring randomization ({} nodes, {}, load 0.7)",
        cfg.nodes, w.pattern
    ));
    println!("{:>22} | {:>12} | {:>12}", "", "randomized", "dilated");
    println!(
        "{:>22} | {:>11.2}% | {:>11.2}%",
        "worst-case burst drop",
        w.randomized_burst_drop * 100.0,
        w.dilated_burst_drop * 100.0
    );
    println!(
        "{:>22} | {:>11.3}% | {:>11.3}%",
        "steady-state drop",
        w.randomized.drop_rate * 100.0,
        w.dilated.drop_rate * 100.0
    );
    println!(
        "{:>22} | {:>12} | {:>12}",
        "avg latency",
        fmt_ns(w.randomized.avg_ns),
        fmt_ns(w.dilated.avg_ns)
    );
    println!(
        "{:>22} | {:>12} | {:>12}",
        "p99 latency",
        fmt_ns(w.randomized.p99_ns),
        fmt_ns(w.dilated.p99_ns)
    );
    println!("(expansion via randomization is what defuses structured permutations)");

    let b = or_die(&sw, backoff_ablation_on(&sw, &cfg));
    header(&format!(
        "Ablation 2: binary exponential backoff (m=2, transpose @ 0.9, {} nodes)",
        cfg.nodes
    ));
    println!("{:>22} | {:>12} | {:>12}", "", "with BEB", "without");
    println!(
        "{:>22} | {:>12} | {:>12}",
        "retransmissions", b.with_backoff.retransmissions, b.without_backoff.retransmissions
    );
    println!(
        "{:>22} | {:>11.2}% | {:>11.2}%",
        "traversal drop rate",
        b.with_backoff.drop_rate * 100.0,
        b.without_backoff.drop_rate * 100.0
    );
    println!(
        "{:>22} | {:>12} | {:>12}",
        "avg latency",
        fmt_ns(b.with_backoff.avg_ns),
        fmt_ns(b.without_backoff.avg_ns)
    );
    println!(
        "{:>22} | {:>12} | {:>12}",
        "delivered", b.with_backoff.delivered, b.without_backoff.delivered
    );

    args.maybe_write_json(&(w, b));
    finish(&sw);
}

//! Design-choice ablations: wiring randomization and binary exponential
//! backoff.

fn main() {
    baldur_bench::registry_main("ablation")
}

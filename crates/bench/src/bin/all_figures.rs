//! One-shot reproduction: runs every table/figure experiment at the
//! configured scale and writes a results directory with JSON + CSV (and
//! gnuplot scripts for the CSV figures).
//!
//! ```sh
//! cargo run --release -p baldur-bench --bin all_figures -- --out results --nodes 256
//! ```

use std::fs;
use std::path::Path;

use baldur::experiments;
use baldur_bench::{finish, or_die, Args};

fn write(path: &Path, contents: &str) {
    fs::write(path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

fn json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) {
    let s = serde_json::to_string_pretty(value).expect("serialize");
    write(&dir.join(format!("{name}.json")), &s);
}

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let dir_name = args.get("out").unwrap_or("results").to_string();
    let dir = Path::new(&dir_name);
    fs::create_dir_all(dir).expect("create output directory");

    let sw = args.sweep(&cfg);
    eprintln!(
        "running the full figure set at {} nodes ({} worker threads)...",
        cfg.nodes,
        sw.threads()
    );

    let t5 = experiments::table_v_on(&sw, &cfg);
    json(dir, "table5", &t5);
    write(&dir.join("table5.csv"), &baldur::csv::table5(&t5));

    let loads = [0.1, 0.3, 0.5, 0.7, 0.9];
    let f6 = experiments::figure6_on(&sw, &cfg, &loads);
    json(dir, "fig6", &f6);
    write(&dir.join("fig6.csv"), &baldur::csv::fig6(&f6));

    let f7 = experiments::figure7_on(&sw, &cfg);
    json(dir, "fig7", &f7);
    write(&dir.join("fig7.csv"), &baldur::csv::fig7(&f7));

    let f8 = experiments::figure8_on(&sw);
    json(dir, "fig8", &f8);
    write(&dir.join("fig8.csv"), &baldur::csv::fig8(&f8));

    let f9 = experiments::figure9_on(&sw);
    json(dir, "fig9", &f9);

    let f10 = experiments::figure10_on(&sw);
    json(dir, "fig10", &f10);
    write(&dir.join("fig10.csv"), &baldur::csv::fig10(&f10));

    let sat = experiments::saturation_on(&sw, &cfg, &loads);
    json(dir, "saturation", &sat);
    write(&dir.join("saturation.csv"), &baldur::csv::saturation(&sat));

    let (drops, required) = experiments::droptool_study_on(&sw, &[256, 1_024, 8_192], cfg.seed);
    json(dir, "droptool", &(drops, required));

    json(
        dir,
        "reliability",
        &or_die(&sw, experiments::reliability_on(&sw, 500_000, cfg.seed)),
    );
    json(dir, "awgr", &experiments::awgr_comparison());
    json(dir, "buffers", &experiments::buffer_sizing_on(&sw, &cfg));
    json(
        dir,
        "wiring_ablation",
        &or_die(&sw, experiments::wiring_ablation_on(&sw, &cfg)),
    );
    json(
        dir,
        "topologies",
        &experiments::topology_comparison_on(&sw, &cfg),
    );

    let fig5 = experiments::figure5();
    write(&dir.join("fig5.vcd"), &fig5.vcd);

    // Gnuplot scripts for the CSV-backed figures.
    write(&dir.join("fig6.gp"), FIG6_GP);
    write(&dir.join("fig8.gp"), FIG8_GP);
    write(&dir.join("saturation.gp"), SAT_GP);

    finish(&sw);
    eprintln!("done: {}", dir.display());
}

const FIG6_GP: &str = r#"# gnuplot -e "pattern='random_permutation'" fig6.gp
set datafile separator ','
set logscale y
set xlabel 'input load'
set ylabel 'average latency (ns)'
set key outside
if (!exists("pattern")) pattern = 'random_permutation'
set title sprintf('Figure 6: %s', pattern)
plot for [net in "baldur electrical_mb dragonfly fattree ideal"] \
  '< grep -E "^'.pattern.','.net.'," fig6.csv' using 3:4 with linespoints title net
"#;

const FIG8_GP: &str = r#"set datafile separator ','
set logscale y
set ylabel 'power per node (W)'
set style data histogram
set style fill solid
set title 'Figure 8: power per node vs scale'
plot for [net in "baldur electrical_mb dragonfly fattree"] \
  '< grep ",'.net.'," fig8.csv' using 8:xtic(1) title net
"#;

const SAT_GP: &str = r#"set datafile separator ','
set xlabel 'offered load'
set ylabel 'accepted load'
set key left top
set title 'Saturation: accepted vs offered'
plot for [net in "baldur electrical_mb dragonfly fattree ideal"] \
  '< grep "^'.net.'," saturation.csv' using 2:3 with linespoints title net, x with lines dt 2 title 'ideal slope'
"#;

//! One-shot reproduction: runs every registered experiment at the
//! configured scale (`--out DIR`, default `results`) and writes the
//! results directory with JSON + CSV and gnuplot scripts.

fn main() {
    baldur_bench::all_figures_main()
}

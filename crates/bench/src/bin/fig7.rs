//! Figure 7: normalized latency for hotspot, ping-pong, and HPC traces.

use baldur::experiments::{fig7_geomeans, figure7_on, normalize_fig7};
use baldur_bench::{finish, fmt_ns, header, Args};

fn main() {
    let args = Args::parse();
    let cfg = args.eval_config();
    let sw = args.sweep(&cfg);
    let rows = figure7_on(&sw, &cfg);
    let workloads = [
        "hotspot",
        "ping_pong1",
        "ping_pong2",
        "AMG",
        "CR",
        "FB",
        "MG",
    ];
    header(&format!("Figure 7: absolute latency ({} nodes)", cfg.nodes));
    println!(
        "{:>12} | {:>14} | {:>12} | {:>12}",
        "workload", "network", "avg", "p99"
    );
    for w in &workloads {
        for r in rows.iter().filter(|r| r.workload == *w) {
            println!(
                "{:>12} | {:>14} | {:>12} | {:>12}",
                r.workload,
                r.network,
                fmt_ns(r.report.avg_ns),
                fmt_ns(r.report.p99_ns)
            );
        }
    }
    header("Figure 7: normalized to Baldur (avg / p99)");
    let norm = normalize_fig7(&rows);
    for w in &workloads {
        for (wl, net, a, p) in norm.iter().filter(|r| r.0 == *w) {
            println!("{wl:>12} | {net:>14} | {a:>8.2}x | {p:>8.2}x");
        }
    }
    header("Geomean normalized latency per network (paper Sec. V-B)");
    for (net, a, p) in fig7_geomeans(&rows) {
        println!("{net:>14} | avg {a:>7.2}x | p99 {p:>7.2}x");
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, baldur::csv::fig7(&rows)).expect("write CSV");
        eprintln!("wrote {path}");
    }
    args.maybe_write_json(&rows);
    finish(&sw);
}

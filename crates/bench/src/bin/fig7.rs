//! Figure 7: application benchmarks, absolute and normalized to Baldur.

fn main() {
    baldur_bench::registry_main("fig7")
}

//! Figure 8: power per server node versus network scale.

fn main() {
    baldur_bench::registry_main("fig8")
}

//! Figure 8: power per server node versus network scale.

use baldur::experiments::figure8_on;
use baldur::power::NetworkPower;
use baldur_bench::{finish, header, Args};

fn main() {
    let args = Args::parse();
    let sw = args.sweep(&args.eval_config());
    let sweep = figure8_on(&sw);
    header("Figure 8: power per node (W)");
    println!(
        "{:>10} | {:>10} {:>14} {:>10} {:>10} | min..max improvement",
        "scale", "baldur", "electrical_mb", "dragonfly", "fattree"
    );
    for p in &sweep {
        let b = p.total_w(NetworkPower::Baldur);
        let mb = p.total_w(NetworkPower::ElectricalMultiButterfly);
        let df = p.total_w(NetworkPower::Dragonfly);
        let ft = p.total_w(NetworkPower::FatTree);
        let imps = [mb / b, df / b, ft / b];
        let lo = imps.iter().cloned().fold(f64::MAX, f64::min);
        let hi = imps.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:>10} | {b:>10.2} {mb:>14.1} {df:>10.1} {ft:>10.1} | {lo:.1}x .. {hi:.1}x",
            p.label
        );
    }
    println!("(paper: 3.2x-26.4x at 1K-2K, 14.6x-31.0x at 1M-1.4M)");
    header("Component breakdown at 1K-2K and 1M-1.4M");
    for idx in [0, sweep.len() - 1] {
        let p = &sweep[idx];
        println!("-- {}", p.label);
        for (n, size, b) in &p.entries {
            println!(
                "{:>14} ({:>9} nodes): xcvr {:>6.2} serdes {:>6.2} buf {:>7.2} switch {:>8.2} = {:>8.2} W",
                n.name(), size, b.transceivers_w, b.serdes_w, b.buffers_w, b.switching_w,
                b.total_w()
            );
        }
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, baldur::csv::fig8(&sweep)).expect("write CSV");
        eprintln!("wrote {path}");
    }
    args.maybe_write_json(&sweep);
    finish(&sw);
}

//! Sec. VII: Baldur versus an AWGR optical-packet-switching network at 32
//! nodes.

fn main() {
    baldur_bench::registry_main("awgr")
}

//! Sec. VII: Baldur versus an AWGR optical-packet-switching network at 32
//! nodes.

use baldur::experiments::awgr_comparison;
use baldur_bench::{header, Args};

fn main() {
    let args = Args::parse();
    let c = awgr_comparison();
    header("Sec. VII: Baldur (m=3) vs 32-radix AWGR, 32 nodes");
    println!("power  (excl. common node xcvr/serdes):");
    println!(
        "  baldur {:>6.2} W/node   awgr {:>6.2} W/node   ({:.1}x)",
        c.baldur_w,
        c.awgr_w,
        c.awgr_w / c.baldur_w
    );
    println!("per-hop processing latency:");
    println!(
        "  baldur {:>6.2} ns       awgr {:>6.1} ns      ({:.0}x)",
        c.baldur_latency_ns,
        c.awgr_latency_ns,
        c.awgr_latency_ns / c.baldur_latency_ns
    );
    println!("(paper: 0.7 W vs 4.2 W; 90 ns electrical header processing)");
    args.maybe_write_json(&c);
}

//! Chaos convergence: seeded fault/repair schedules (default), `--smoke`
//! CI gate, and the `--shrink-demo` plan minimizer.

fn main() {
    baldur_bench::registry_main("chaos")
}

//! Figure 9: sensitivity of the power comparison to component scenarios.

fn main() {
    baldur_bench::registry_main("fig9")
}

//! Figure 9: sensitivity of the 1M-scale power comparison to switch-power
//! modelling error.

use baldur::experiments::figure9_on;
use baldur_bench::{finish, header, Args};

fn main() {
    let args = Args::parse();
    let sw = args.sweep(&args.eval_config());
    let rows = figure9_on(&sw);
    header("Figure 9: switch-power sensitivity at the 1M-1.4M scale");
    for row in &rows {
        println!("-- {}", row.scenario);
        for (net, w, imp) in &row.entries {
            if net == "baldur" {
                println!("{net:>14}: {w:>8.1} W/node");
            } else {
                println!("{net:>14}: {w:>8.1} W/node   Baldur wins {imp:>5.1}x");
            }
        }
    }
    println!("(paper pessimistic case: 5.1x / 8.2x / 14.7x vs dragonfly / fat-tree / MB)");
    args.maybe_write_json(&rows);
    finish(&sw);
}

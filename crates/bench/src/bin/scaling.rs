//! Kernel scaling curves: wall-clock, events/sec, peak RSS, and model
//! state bytes from 1K toward 1M Baldur endpoints.

fn main() {
    baldur_bench::registry_main("scaling")
}

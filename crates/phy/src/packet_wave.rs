//! Full-packet waveform assembly (Figure 3's packet format).
//!
//! A Baldur packet on the wire is: length-coded routing bits (one per
//! network stage), then the 8b/10b-coded remainder (destination tail,
//! payload, CRC — everything the switches do not inspect) at one bit per T.

use serde::{Deserialize, Serialize};

use crate::eightbtenb::Encoder;
use crate::length_code::LengthCode;
use crate::waveform::{Fs, Waveform};

/// Assembled description of one on-the-wire packet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketWave {
    /// The routing bits, most-significant (first-stage) first.
    pub routing_bits: Vec<bool>,
    /// The payload bytes fed to the 8b/10b encoder.
    pub payload: Vec<u8>,
    /// The assembled waveform.
    pub wave: Waveform,
    /// Instant where the payload region begins.
    pub payload_start: Fs,
    /// Instant of the final falling edge.
    pub end: Fs,
}

/// Assembles a packet waveform starting at `start`.
///
/// Routing bits are length-coded; payload bytes are 8b/10b coded NRZ-OOK at
/// one bit per T. A dark guard of one slot separates header from payload so
/// that the header decoder's prefix scan terminates cleanly.
///
/// # Panics
///
/// Panics if `routing_bits` is empty — every Baldur packet routes through at
/// least one stage.
pub fn assemble(code: &LengthCode, routing_bits: &[bool], payload: &[u8], start: Fs) -> PacketWave {
    assert!(!routing_bits.is_empty(), "a packet needs routing bits");
    let t = code.bit_period;
    let mut pulses = code.encode_pulses(routing_bits, start);
    let payload_start = start + code.duration(routing_bits.len());

    // 8b/10b payload: emit maximal runs of ones as single pulses.
    let mut enc = Encoder::new();
    let bits = enc.encode_bits(payload);
    let mut cursor = payload_start;
    let mut run_start: Option<Fs> = None;
    for &b in &bits {
        match (b, run_start) {
            (true, None) => run_start = Some(cursor),
            (false, Some(s)) => {
                pulses.push((s, cursor));
                run_start = None;
            }
            _ => {}
        }
        cursor += t;
    }
    if let Some(s) = run_start {
        pulses.push((s, cursor));
    }
    let wave = Waveform::from_pulses(pulses);
    let end = wave.end();
    PacketWave {
        routing_bits: routing_bits.to_vec(),
        payload: payload.to_vec(),
        wave,
        payload_start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eightbtenb::max_run_length;
    use crate::waveform::BIT_PERIOD_FS;

    const T: Fs = BIT_PERIOD_FS;

    #[test]
    fn header_decodes_back() {
        let code = LengthCode::paper();
        let bits = vec![true, false, true, true, false];
        let pw = assemble(&code, &bits, b"hello world", 0);
        let (decoded, next) = code.decode_prefix(&pw.wave, T / 10);
        // All five routing bits recovered before payload confuses the scan.
        assert!(decoded.len() >= bits.len(), "decoded {decoded:?}");
        assert_eq!(&decoded[..bits.len()], &bits[..]);
        assert!(next >= pw.payload_start || decoded.len() == bits.len());
    }

    #[test]
    fn payload_region_never_dark_longer_than_5t() {
        let code = LengthCode::paper();
        let pw = assemble(&code, &[false], &[0u8; 64], 0);
        // Sample the payload region at T/2 granularity and measure dark runs.
        let samples = pw.wave.sample(pw.payload_start, pw.end, T / 2);
        let dark_run = samples
            .split(|&lit| lit)
            .map(|run| run.len())
            .max()
            .unwrap_or(0);
        // <=5 bit periods of darkness = <=10 half-period samples.
        assert!(dark_run <= 10, "dark run of {dark_run} half-periods");
    }

    #[test]
    fn empty_payload_is_header_only() {
        let code = LengthCode::paper();
        let pw = assemble(&code, &[true, true], &[], 10 * T);
        assert_eq!(pw.end, 10 * T + code.slot() + code.pulse_len(true));
    }

    #[test]
    #[should_panic(expected = "routing bits")]
    fn empty_header_panics() {
        assemble(&LengthCode::paper(), &[], b"x", 0);
    }

    #[test]
    fn payload_bits_match_encoder() {
        let code = LengthCode::paper();
        let payload = b"\x00\xff\x55";
        let pw = assemble(&code, &[true], payload, 0);
        let mut enc = Encoder::new();
        let bits = enc.encode_bits(payload);
        assert!(max_run_length(&bits) <= 5);
        for (i, &b) in bits.iter().enumerate() {
            let t_mid = pw.payload_start + i as Fs * T + T / 2;
            assert_eq!(pw.wave.level_at(t_mid), b, "bit {i}");
        }
    }
}

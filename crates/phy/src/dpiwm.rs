//! General Digital Pulse Interval and Width Modulation (DPIWM).
//!
//! The paper derives its routing-bit code as "a variant of the Digital
//! Pulse Interval Width Modulation (DPIWM) scheme \[45\], \[46\]". This module
//! implements the general scheme so the relationship is explicit: a DPIWM
//! symbol carries `width_bits` of data in the *length of the light pulse*
//! and `interval_bits` in the *length of the following dark gap*, each
//! quantized in bit periods.
//!
//! Baldur's [`crate::length_code::LengthCode`] is the degenerate instance
//! with one width bit (pulse 1T or 2T) and zero interval bits, padded so
//! every slot is exactly 3T — the padding is what lets a clock-less
//! receiver predict slot boundaries.

use serde::{Deserialize, Serialize};

use crate::waveform::{Fs, Waveform, BIT_PERIOD_FS};

/// A DPIWM code configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dpiwm {
    /// Data bits carried by the pulse width (pulse = (value+1)·T).
    pub width_bits: u32,
    /// Data bits carried by the gap length (gap = (value+1)·T).
    pub interval_bits: u32,
    /// Bit period T in femtoseconds.
    pub bit_period: Fs,
}

impl Dpiwm {
    /// A code with the given sub-symbol sizes at 60 Gbps.
    ///
    /// # Panics
    ///
    /// Panics unless `width_bits ≥ 1` and both fields are ≤ 4 (longer
    /// symbols defeat the purpose of the modulation).
    pub fn new(width_bits: u32, interval_bits: u32) -> Self {
        assert!(
            (1..=4).contains(&width_bits) && interval_bits <= 4,
            "width_bits in 1..=4, interval_bits in 0..=4"
        );
        Dpiwm {
            width_bits,
            interval_bits,
            bit_period: BIT_PERIOD_FS,
        }
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(&self) -> u32 {
        self.width_bits + self.interval_bits
    }

    /// The number of symbol values.
    pub fn alphabet(&self) -> u32 {
        1 << self.bits_per_symbol()
    }

    /// Worst-case slot length in bit periods (max pulse + max gap + the
    /// mandatory 1T minimum gap when no interval bits are carried).
    pub fn max_slot_periods(&self) -> u64 {
        let max_pulse = 1u64 << self.width_bits;
        let max_gap = if self.interval_bits == 0 {
            1
        } else {
            1 << self.interval_bits
        };
        max_pulse + max_gap
    }

    fn split(&self, symbol: u32) -> (u64, u64) {
        assert!(symbol < self.alphabet(), "symbol out of range");
        let w = u64::from(symbol >> self.interval_bits) + 1;
        let g = if self.interval_bits == 0 {
            1
        } else {
            u64::from(symbol & ((1 << self.interval_bits) - 1)) + 1
        };
        (w, g)
    }

    /// Encodes `symbols` starting at `start`, returning the waveform and
    /// the instant just past the frame. A 1T terminator pulse closes the
    /// frame so the final symbol's gap is measurable.
    ///
    /// # Panics
    ///
    /// Panics if any symbol is outside the alphabet.
    pub fn encode(&self, symbols: &[u32], start: Fs) -> (Waveform, Fs) {
        let t = self.bit_period;
        let mut pulses = Vec::with_capacity(symbols.len() + 1);
        let mut cursor = start;
        for &sym in symbols {
            let (w, g) = self.split(sym);
            pulses.push((cursor, cursor + w * t));
            cursor += (w + g) * t;
        }
        // Frame terminator.
        pulses.push((cursor, cursor + t));
        cursor += t;
        (Waveform::from_pulses(pulses), cursor)
    }

    /// Decodes every symbol in a frame produced by [`Dpiwm::encode`] by
    /// measuring pulse and gap lengths (rounding to the nearest bit
    /// period). The final pulse is the frame terminator and carries no
    /// data.
    pub fn decode(&self, wave: &Waveform) -> Vec<u32> {
        let t = self.bit_period as f64;
        let pulses: Vec<(Fs, Fs)> = wave.pulses().filter(|&(_, e)| e != Fs::MAX).collect();
        if pulses.len() < 2 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(pulses.len() - 1);
        for (i, &(s, e)) in pulses[..pulses.len() - 1].iter().enumerate() {
            let w_periods = ((e - s) as f64 / t).round() as u64;
            let w_val = (w_periods.saturating_sub(1)).min((1 << self.width_bits) - 1) as u32;
            let g_val = if self.interval_bits == 0 {
                0
            } else {
                let (ns, _) = pulses[i + 1];
                let g_periods = ((ns - e) as f64 / t).round() as u64;
                (g_periods.saturating_sub(1)).min((1 << self.interval_bits) - 1) as u32
            };
            out.push((w_val << self.interval_bits) | g_val);
        }
        out
    }

    /// Mean symbol length in bit periods over a uniform source — the
    /// bandwidth-efficiency figure of merit.
    pub fn mean_slot_periods(&self) -> f64 {
        let mean_pulse = (1.0 + f64::from(1u32 << self.width_bits)) / 2.0;
        let mean_gap = if self.interval_bits == 0 {
            1.0
        } else {
            (1.0 + f64::from(1u32 << self.interval_bits)) / 2.0
        };
        mean_pulse + mean_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_symbols() {
        for (w, i) in [(1, 0), (1, 1), (2, 2), (3, 1), (4, 4)] {
            let c = Dpiwm::new(w, i);
            let symbols: Vec<u32> = (0..c.alphabet()).collect();
            let (wave, _) = c.encode(&symbols, 0);
            assert_eq!(c.decode(&wave), symbols, "w={w} i={i}");
        }
    }

    #[test]
    fn baldur_code_is_the_w1_i0_instance() {
        // Baldur: "0" = 2T pulse, "1" = 1T pulse, fixed 3T slot.
        let c = Dpiwm::new(1, 0);
        // Symbol 1 = long pulse (2T) = Baldur's logic 0;
        // symbol 0 = short pulse (1T) = Baldur's logic 1.
        let (wave, _) = c.encode(&[1, 0], 0);
        let pulses: Vec<_> = wave.pulses().collect();
        let t = BIT_PERIOD_FS;
        assert_eq!(pulses.len(), 3, "two symbols plus the terminator");
        assert_eq!(pulses[0].1 - pulses[0].0, 2 * t);
        assert_eq!(pulses[1].1 - pulses[1].0, t);
        // Baldur pads every slot to the worst case: max 3T per symbol.
        assert_eq!(c.max_slot_periods(), 3);
    }

    #[test]
    fn interval_bits_raise_efficiency() {
        // Carrying bits in the gap buys bandwidth: bits per mean period
        // improves from w1i0 to w1i1.
        let plain = Dpiwm::new(1, 0);
        let combined = Dpiwm::new(1, 1);
        let eff = |c: &Dpiwm| f64::from(c.bits_per_symbol()) / c.mean_slot_periods();
        assert!(eff(&combined) > eff(&plain));
    }

    #[test]
    fn decode_survives_moderate_jitter() {
        let c = Dpiwm::new(2, 1);
        let symbols = vec![5, 0, 7, 2, 3];
        let (wave, _) = c.encode(&symbols, 10 * BIT_PERIOD_FS);
        // Shift every transition by up to 0.2T (rounding must absorb it).
        let jittered: Vec<Fs> = wave
            .transitions()
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let j = (i as i64 % 5 - 2) * (BIT_PERIOD_FS as i64 / 10);
                (t as i64 + j) as Fs
            })
            .collect();
        let jw = Waveform::from_transitions(jittered);
        assert_eq!(c.decode(&jw), symbols);
    }

    #[test]
    #[should_panic(expected = "symbol out of range")]
    fn oversize_symbol_rejected() {
        Dpiwm::new(1, 0).encode(&[2], 0);
    }
}

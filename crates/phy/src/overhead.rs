//! Bandwidth-overhead analysis of the length-based code (paper Sec. IV-B).
//!
//! The paper states that with 8 routing bits and a 512-byte remainder the
//! length-based scheme adds ≈0.34% overhead compared to coding the whole
//! packet with 8b/10b. The comparison: the `k` routing bits occupy `3kT`
//! when length-coded, versus `10·⌈k/8⌉·T` if they had been carried as
//! ordinary 8b/10b payload octets.

use serde::{Deserialize, Serialize};

/// Result of the overhead computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overhead {
    /// Bit periods spent on the packet with length-coded routing bits.
    pub length_coded_periods: u64,
    /// Bit periods for an all-8b/10b packet carrying the same information.
    pub all_8b10b_periods: u64,
    /// Fractional overhead: `length_coded / all_8b10b - 1`.
    pub fraction: f64,
}

/// Computes the overhead of length-coding `routing_bits` routing bits on a
/// packet with `payload_bytes` bytes of 8b/10b payload.
///
/// # Panics
///
/// Panics if `routing_bits` is zero.
pub fn length_code_overhead(routing_bits: u64, payload_bytes: u64) -> Overhead {
    assert!(routing_bits > 0, "need at least one routing bit");
    let payload_periods = payload_bytes * 10; // 8b/10b: 10T per byte
    let header_octets = routing_bits.div_ceil(8);
    let all_8b10b = payload_periods + header_octets * 10;
    let length_coded = payload_periods + routing_bits * 3;
    Overhead {
        length_coded_periods: length_coded,
        all_8b10b_periods: all_8b10b,
        fraction: length_coded as f64 / all_8b10b as f64 - 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_sub_half_percent() {
        // 8 routing bits (a 256-switch-per-stage class network) + 512 B.
        let o = length_code_overhead(8, 512);
        assert_eq!(o.all_8b10b_periods, 5_130);
        assert_eq!(o.length_coded_periods, 5_144);
        // Paper reports 0.34%; our accounting of the same scheme gives
        // 0.27% — same order, comfortably "very minimal".
        assert!(o.fraction > 0.0 && o.fraction < 0.005, "{}", o.fraction);
    }

    #[test]
    fn overhead_grows_with_stages_but_stays_small_at_1m_nodes() {
        // A 2^20-node Baldur has 20 routing bits.
        let o = length_code_overhead(20, 512);
        assert!(o.fraction < 0.01, "{}", o.fraction);
    }

    #[test]
    fn tiny_payload_shows_the_cost() {
        let o = length_code_overhead(8, 8);
        assert!(o.fraction > 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one routing bit")]
    fn zero_routing_bits_panics() {
        length_code_overhead(0, 512);
    }
}

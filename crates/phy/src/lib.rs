//! Physical-layer encodings for the Baldur reproduction.
//!
//! Baldur packets (paper Sec. IV-B, Figure 3) carry two differently-encoded
//! regions:
//!
//! * **Routing bits** use a clock-less, length-based code (a variant of
//!   Digital Pulse Interval Width Modulation): logic `0` is light for two
//!   bit periods (2T), logic `1` is light for one bit period (T), and each
//!   routing bit plus its dark "gap period" occupies exactly 3T. The 2x2 TL
//!   switch decodes the *first* routing bit on the fly and masks it off.
//! * **Payload bits** use conventional 8b/10b, whose bounded run length
//!   (at most five consecutive zeros) lets the switch's line activity
//!   detector declare end-of-packet after >6T of darkness.
//!
//! This crate implements both codes plus the piecewise-constant optical
//! [`waveform::Waveform`] representation shared with the circuit simulator
//! in `baldur-tl`, and the bandwidth-overhead analysis backing the paper's
//! "0.34% overhead" claim.

pub mod dpiwm;
pub mod eightbtenb;
pub mod length_code;
pub mod overhead;
pub mod packet_wave;
pub mod waveform;

pub use length_code::LengthCode;
pub use waveform::Waveform;

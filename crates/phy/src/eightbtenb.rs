//! A complete 8b/10b encoder/decoder (Widmer–Franaszek).
//!
//! Baldur assumes the non-routing portion of every packet is 8b/10b coded
//! (paper Sec. IV-C): the code's bounded run length — never more than five
//! identical bits in a row — is what lets the line activity detector treat
//! more than 6T of darkness as end-of-packet. This module implements the
//! real code (5b/6b + 3b/4b sub-blocks, running disparity, alternate A7
//! encoding, control characters) so that property can be *tested* rather
//! than assumed.
//!
//! # Example
//!
//! ```
//! use baldur_phy::eightbtenb::{Decoder, Encoder};
//!
//! let mut enc = Encoder::new();
//! let codes: Vec<_> = b"baldur".iter().map(|&b| enc.encode_data(b)).collect();
//! let mut dec = Decoder::new();
//! let bytes: Result<Vec<u8>, _> = codes
//!     .iter()
//!     .map(|c| dec.decode(*c).map(|s| s.byte()))
//!     .collect();
//! assert_eq!(bytes.unwrap(), b"baldur");
//! ```

use core::fmt;

/// Running disparity: the sign of the cumulative ones-minus-zeros balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disparity {
    /// More zeros than ones transmitted so far (RD−).
    Negative,
    /// More ones than zeros transmitted so far (RD+).
    Positive,
}

impl Disparity {
    fn flip(self) -> Self {
        match self {
            Disparity::Negative => Disparity::Positive,
            Disparity::Positive => Disparity::Negative,
        }
    }
}

/// A 10-bit code group. Bit 9 is `a` (transmitted first), bit 0 is `j`
/// (transmitted last).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code10(pub u16);

impl Code10 {
    /// The bits in transmission order (`a` first).
    pub fn bits(self) -> [bool; 10] {
        let mut out = [false; 10];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (self.0 >> (9 - i)) & 1 == 1;
        }
        out
    }

    /// Number of one bits in the group.
    pub fn ones(self) -> u32 {
        (self.0 & 0x3FF).count_ones()
    }
}

impl fmt::Display for Code10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.bits() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// A decoded symbol: either a data octet or a control (K) character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// A data octet (D.x.y).
    Data(u8),
    /// A control character (K.x.y), stored as its octet value.
    Control(u8),
}

impl Symbol {
    /// The raw octet regardless of data/control.
    pub fn byte(self) -> u8 {
        match self {
            Symbol::Data(b) | Symbol::Control(b) => b,
        }
    }

    /// True for control characters.
    pub fn is_control(self) -> bool {
        matches!(self, Symbol::Control(_))
    }
}

/// Errors returned by [`Decoder::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The 6-bit sub-block is not a valid 5b/6b code.
    InvalidSixBit(u8),
    /// The 4-bit sub-block is not a valid 3b/4b code.
    InvalidFourBit(u8),
    /// The code group is valid in isolation but illegal at the current
    /// running disparity.
    DisparityViolation,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidSixBit(v) => write!(f, "invalid 5b/6b sub-block {v:06b}"),
            DecodeError::InvalidFourBit(v) => write!(f, "invalid 3b/4b sub-block {v:04b}"),
            DecodeError::DisparityViolation => write!(f, "running disparity violation"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// 5b/6b table, RD− column, indexed by the low five bits (EDCBA) of the
/// octet. Values are `abcdei` with `a` as bit 5.
const FIVE_SIX_NEG: [u8; 32] = [
    0b100111, // D.00
    0b011101, // D.01
    0b101101, // D.02
    0b110001, // D.03
    0b110101, // D.04
    0b101001, // D.05
    0b011001, // D.06
    0b111000, // D.07
    0b111001, // D.08
    0b100101, // D.09
    0b010101, // D.10
    0b110100, // D.11
    0b001101, // D.12
    0b101100, // D.13
    0b011100, // D.14
    0b010111, // D.15
    0b011011, // D.16
    0b100011, // D.17
    0b010011, // D.18
    0b110010, // D.19
    0b001011, // D.20
    0b101010, // D.21
    0b011010, // D.22
    0b111010, // D.23
    0b110011, // D.24
    0b100110, // D.25
    0b010110, // D.26
    0b110110, // D.27
    0b001110, // D.28
    0b101110, // D.29
    0b011110, // D.30
    0b101011, // D.31
];

/// 3b/4b table for data, RD− column, indexed by the high three bits (HGF).
/// Values are `fghj` with `f` as bit 3. Index 7 is the *primary* (P7)
/// encoding; the alternate (A7) is handled in the encoder.
const THREE_FOUR_NEG: [u8; 8] = [
    0b1011, // D.x.0
    0b1001, // D.x.1
    0b0101, // D.x.2
    0b1100, // D.x.3
    0b1101, // D.x.4
    0b1010, // D.x.5
    0b0110, // D.x.6
    0b1110, // D.x.7 (P7)
];

const A7_NEG: u8 = 0b0111;

/// 5b/6b for K.28, RD−.
const K28_SIX_NEG: u8 = 0b001111;

/// 3b/4b table for control characters, RD− column.
const K_THREE_FOUR_NEG: [u8; 8] = [
    0b1011, // K.x.0
    0b0110, // K.x.1
    0b1010, // K.x.2
    0b1100, // K.x.3
    0b1101, // K.x.4
    0b0101, // K.x.5
    0b1001, // K.x.6
    0b0111, // K.x.7
];

/// The valid control characters: K.28.0–K.28.7, K.23.7, K.27.7, K.29.7,
/// K.30.7 — expressed as octets (HGF‖EDCBA).
pub const VALID_CONTROL: [u8; 12] = [
    0x1C, 0x3C, 0x5C, 0x7C, 0x9C, 0xBC, 0xDC, 0xFC, // K.28.0..7
    0xF7, 0xFB, 0xFD, 0xFE, // K.23.7 K.27.7 K.29.7 K.30.7
];

/// The comma character K.28.5, used as a packet delimiter in our tests.
pub const K28_5: u8 = 0xBC;

const fn six_disparity(code: u8) -> i8 {
    (code & 0x3F).count_ones() as i8 * 2 - 6
}

const fn four_disparity(code: u8) -> i8 {
    (code & 0x0F).count_ones() as i8 * 2 - 4
}

const fn complement6(code: u8) -> u8 {
    !code & 0x3F
}

const fn complement4(code: u8) -> u8 {
    !code & 0x0F
}

// ---------------------------------------------------------------------------
// Table-driven fast path.
//
// `encode_data` and `decode` are the hottest per-symbol operations in the
// repo (every simulated packet body flows through them), and the original
// implementations recomputed the sub-block selection — including linear
// scans of the 5b/6b and 3b/4b tables on decode — on every call. Since a
// stateful codec step is a pure function of (running disparity, input),
// the whole step is precomputed here into compile-time tables: 2×256
// entries for the encoder, 2×1024 for the decoder (~9 KiB total). The
// const builders below replicate the branchy reference implementations,
// which are retained as `encode_data_baseline`/`decode_baseline` — they
// serve as the perf baseline for BENCH_8.json deltas and as the oracle
// for the exhaustive equivalence tests in this module.

/// One precomputed encoder step: the emitted group and the RD it leaves.
#[derive(Clone, Copy)]
struct EncEntry {
    code: u16,
    rd_pos: bool,
}

/// One precomputed decoder step. `sym` packs the outcome: the high nibble
/// tags the variant ([`DEC_DATA`] &c.), the low byte carries the payload
/// (octet or offending sub-block). `rd_pos` is the RD after the step —
/// equal to the input RD for error entries, which never advance state.
#[derive(Clone, Copy)]
struct DecEntry {
    sym: u16,
    rd_pos: bool,
}

const DEC_DATA: u16 = 0x000;
const DEC_CTRL: u16 = 0x100;
const DEC_BAD6: u16 = 0x200;
const DEC_BAD4: u16 = 0x300;
const DEC_RDVIOL: u16 = 0x400;

/// RD stepping shared by the const builders: applies one sub-block's
/// disparity `d` to the current RD. Returns 0 (RD−), 1 (RD+), or −1 for
/// a running-disparity violation.
const fn rd_after(d: i8, rd_pos: bool) -> i8 {
    if d == 0 {
        rd_pos as i8
    } else if d == 2 && !rd_pos {
        1
    } else if d == -2 && rd_pos {
        0
    } else {
        -1
    }
}

/// Const replica of [`Encoder::encode_data_baseline`]: `(RD, byte)` →
/// `(code, RD′)`, with RD as a bool (`true` = RD+).
const fn encode_data_step(rd_pos: bool, byte: u8) -> (u16, bool) {
    let x = (byte & 0x1F) as usize; // EDCBA
    let y = (byte >> 5) as usize; // HGF

    let six_neg = FIVE_SIX_NEG[x];
    let six = if six_disparity(six_neg) == 0 {
        // Balanced, but D.07 alternates by rule.
        if x == 7 && rd_pos {
            complement6(six_neg)
        } else {
            six_neg
        }
    } else if rd_pos {
        complement6(six_neg)
    } else {
        six_neg
    };
    let mut rd = rd_pos;
    if six_disparity(six) != 0 {
        rd = !rd;
    }

    // 3b/4b sub-block; pick A7 where P7 would create a run of five.
    let four = if y == 7 {
        let use_a7 = if rd {
            x == 11 || x == 13 || x == 14
        } else {
            x == 17 || x == 18 || x == 20
        };
        let neg = if use_a7 { A7_NEG } else { THREE_FOUR_NEG[7] };
        if rd {
            complement4(neg)
        } else {
            neg
        }
    } else {
        let neg = THREE_FOUR_NEG[y];
        if four_disparity(neg) == 0 {
            // D.x.3 (1100) alternates: transmitted as 0011 at RD+.
            if y == 3 && rd {
                complement4(neg)
            } else {
                neg
            }
        } else if rd {
            complement4(neg)
        } else {
            neg
        }
    };
    if four_disparity(four) != 0 {
        rd = !rd;
    }
    (((six as u16) << 4) | four as u16, rd)
}

/// Const replica of the reference 5b/6b reverse scan ([`decode_six`]);
/// −1 for an unrecognized block.
const fn decode_six_step(six: u8) -> i16 {
    let mut x = 0;
    while x < 32 {
        let neg = FIVE_SIX_NEG[x];
        if six == neg {
            return x as i16;
        }
        if (six_disparity(neg) != 0 || x == 7) && six == complement6(neg) {
            return x as i16;
        }
        x += 1;
    }
    -1
}

/// Const replica of [`decode_four`]; −1 for an unrecognized block.
const fn decode_four_step(four: u8) -> i16 {
    if four == A7_NEG || four == complement4(A7_NEG) {
        return 7;
    }
    let mut y = 0;
    while y < 8 {
        let neg = THREE_FOUR_NEG[y];
        if four == neg {
            return y as i16;
        }
        if (four_disparity(neg) != 0 || y == 3) && four == complement4(neg) {
            return y as i16;
        }
        y += 1;
    }
    -1
}

/// Const replica of [`decode_k_four`]; −1 for an unrecognized block.
const fn decode_k_four_step(four: u8, rd_mid_pos: bool) -> i16 {
    let mut y = 0;
    while y < 8 {
        let neg = K_THREE_FOUR_NEG[y];
        let expected = if rd_mid_pos { complement4(neg) } else { neg };
        if four == expected {
            return y as i16;
        }
        y += 1;
    }
    -1
}

/// Const replica of [`Decoder::decode_baseline`], preserving its exact
/// error precedence (invalid 6b → 6b disparity → invalid 4b → 4b
/// disparity) so the equivalence test can compare all 2×1024 cells.
const fn decode_step(rd_pos: bool, code: u16) -> DecEntry {
    let six = ((code >> 4) & 0x3F) as u8;
    let four = (code & 0x0F) as u8;

    let is_k28 = six == K28_SIX_NEG || six == complement6(K28_SIX_NEG);
    let data_x = decode_six_step(six);
    if !is_k28 && data_x < 0 {
        return DecEntry {
            sym: DEC_BAD6 | six as u16,
            rd_pos,
        };
    }

    let rd_mid = rd_after(six_disparity(six), rd_pos);
    if rd_mid < 0 {
        return DecEntry {
            sym: DEC_RDVIOL,
            rd_pos,
        };
    }
    let rd_mid_pos = rd_mid == 1;
    let rd_fin = rd_after(four_disparity(four), rd_mid_pos);

    if is_k28 {
        let y = decode_k_four_step(four, rd_mid_pos);
        if y < 0 {
            return DecEntry {
                sym: DEC_BAD4 | four as u16,
                rd_pos,
            };
        }
        if rd_fin < 0 {
            return DecEntry {
                sym: DEC_RDVIOL,
                rd_pos,
            };
        }
        return DecEntry {
            sym: DEC_CTRL | ((y as u16) << 5) | 28,
            rd_pos: rd_fin == 1,
        };
    }

    let x = data_x as u16;
    if (x == 23 || x == 27 || x == 29 || x == 30) && (four == A7_NEG || four == complement4(A7_NEG))
    {
        if rd_fin < 0 {
            return DecEntry {
                sym: DEC_RDVIOL,
                rd_pos,
            };
        }
        return DecEntry {
            sym: DEC_CTRL | (7 << 5) | x,
            rd_pos: rd_fin == 1,
        };
    }
    let y = decode_four_step(four);
    if y < 0 {
        return DecEntry {
            sym: DEC_BAD4 | four as u16,
            rd_pos,
        };
    }
    if rd_fin < 0 {
        return DecEntry {
            sym: DEC_RDVIOL,
            rd_pos,
        };
    }
    DecEntry {
        sym: DEC_DATA | ((y as u16) << 5) | x,
        rd_pos: rd_fin == 1,
    }
}

const fn build_enc_lut() -> [[EncEntry; 256]; 2] {
    let mut t = [[EncEntry {
        code: 0,
        rd_pos: false,
    }; 256]; 2];
    let mut rd = 0;
    while rd < 2 {
        let mut b = 0;
        while b < 256 {
            let (code, rd_pos) = encode_data_step(rd == 1, b as u8);
            t[rd][b] = EncEntry { code, rd_pos };
            b += 1;
        }
        rd += 1;
    }
    t
}

const fn build_dec_lut() -> [[DecEntry; 1024]; 2] {
    let mut t = [[DecEntry {
        sym: 0,
        rd_pos: false,
    }; 1024]; 2];
    let mut rd = 0;
    while rd < 2 {
        let mut c = 0;
        while c < 1024 {
            t[rd][c] = decode_step(rd == 1, c as u16);
            c += 1;
        }
        rd += 1;
    }
    t
}

/// Indexed `[RD][byte]`; RD− is row 0.
static ENC_LUT: [[EncEntry; 256]; 2] = build_enc_lut();

/// Indexed `[RD][code & 0x3FF]`; RD− is row 0.
static DEC_LUT: [[DecEntry; 1024]; 2] = build_dec_lut();

/// Stateful 8b/10b encoder tracking running disparity.
#[derive(Debug, Clone)]
pub struct Encoder {
    rd: Disparity,
}

impl Encoder {
    /// A fresh encoder starting at RD− (the standard initial state).
    pub fn new() -> Self {
        Encoder {
            rd: Disparity::Negative,
        }
    }

    /// Current running disparity.
    pub fn disparity(&self) -> Disparity {
        self.rd
    }

    /// Encodes a data octet (D.x.y).
    ///
    /// One lookup into a compile-time `(RD, byte)` table; see the module
    /// notes on the table-driven fast path. Exhaustively equivalent to
    /// [`Encoder::encode_data_baseline`].
    #[inline]
    pub fn encode_data(&mut self, byte: u8) -> Code10 {
        let e = &ENC_LUT[(self.rd == Disparity::Positive) as usize][byte as usize];
        self.rd = if e.rd_pos {
            Disparity::Positive
        } else {
            Disparity::Negative
        };
        Code10(e.code)
    }

    /// The pre-LUT reference encoder, retained verbatim: the perf
    /// baseline for the BENCH_8.json before/after delta and the oracle
    /// for the table-equivalence test.
    pub fn encode_data_baseline(&mut self, byte: u8) -> Code10 {
        let x = (byte & 0x1F) as usize; // EDCBA
        let y = (byte >> 5) as usize; // HGF

        // 5b/6b sub-block.
        let six_neg = FIVE_SIX_NEG[x];
        let six = match (six_disparity(six_neg), self.rd) {
            (0, _) => {
                // Balanced, but D.07 alternates by rule.
                if x == 7 && self.rd == Disparity::Positive {
                    complement6(six_neg)
                } else {
                    six_neg
                }
            }
            (_, Disparity::Negative) => six_neg,
            (_, Disparity::Positive) => complement6(six_neg),
        };
        let mut rd = self.rd;
        if six_disparity(six) != 0 {
            rd = rd.flip();
        }

        // 3b/4b sub-block; pick A7 where P7 would create a run of five.
        let four = if y == 7 {
            let use_a7 = match rd {
                Disparity::Negative => matches!(x, 17 | 18 | 20),
                Disparity::Positive => matches!(x, 11 | 13 | 14),
            };
            let neg = if use_a7 { A7_NEG } else { THREE_FOUR_NEG[7] };
            match rd {
                Disparity::Negative => neg,
                Disparity::Positive => complement4(neg),
            }
        } else {
            let neg = THREE_FOUR_NEG[y];
            match (four_disparity(neg), rd) {
                (0, _) => {
                    // D.x.3 (1100) alternates: transmitted as 0011 at RD+.
                    if y == 3 && rd == Disparity::Positive {
                        complement4(neg)
                    } else {
                        neg
                    }
                }
                (_, Disparity::Negative) => neg,
                (_, Disparity::Positive) => complement4(neg),
            }
        };
        if four_disparity(four) != 0 {
            rd = rd.flip();
        }
        self.rd = rd;
        Code10(((six as u16) << 4) | four as u16)
    }

    /// Encodes a control character (K.x.y).
    ///
    /// # Panics
    ///
    /// Panics if `byte` is not one of [`VALID_CONTROL`].
    pub fn encode_control(&mut self, byte: u8) -> Code10 {
        assert!(
            VALID_CONTROL.contains(&byte),
            "invalid control character {byte:#04x}"
        );
        let x = (byte & 0x1F) as usize;
        let y = (byte >> 5) as usize;

        let six_neg = if x == 28 {
            K28_SIX_NEG
        } else {
            FIVE_SIX_NEG[x]
        };
        let six = match (six_disparity(six_neg), self.rd) {
            (0, _) => six_neg,
            (_, Disparity::Negative) => six_neg,
            (_, Disparity::Positive) => complement6(six_neg),
        };
        let mut rd = self.rd;
        if six_disparity(six) != 0 {
            rd = rd.flip();
        }

        let four_neg = K_THREE_FOUR_NEG[y];
        let four = match (four_disparity(four_neg), rd) {
            (0, _) => match rd {
                // Control 3b/4b alternates even when balanced (by table).
                Disparity::Negative => four_neg,
                Disparity::Positive => complement4(four_neg),
            },
            (_, Disparity::Negative) => four_neg,
            (_, Disparity::Positive) => complement4(four_neg),
        };
        if four_disparity(four) != 0 {
            rd = rd.flip();
        }
        self.rd = rd;
        Code10(((six as u16) << 4) | four as u16)
    }

    /// Encodes a byte slice into a flat bit stream in transmission order.
    pub fn encode_bits(&mut self, bytes: &[u8]) -> Vec<bool> {
        let mut out = Vec::with_capacity(bytes.len() * 10);
        for &b in bytes {
            out.extend_from_slice(&self.encode_data(b).bits());
        }
        out
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

/// Stateful 8b/10b decoder tracking running disparity.
#[derive(Debug, Clone)]
pub struct Decoder {
    rd: Disparity,
}

impl Decoder {
    /// A fresh decoder starting at RD−.
    pub fn new() -> Self {
        Decoder {
            rd: Disparity::Negative,
        }
    }

    /// Decodes one 10-bit code group.
    ///
    /// One lookup into a compile-time `(RD, code)` table; see the module
    /// notes on the table-driven fast path. Exhaustively equivalent to
    /// [`Decoder::decode_baseline`], including error precedence. Errors
    /// leave the running disparity unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for invalid sub-blocks or running-disparity
    /// violations.
    #[inline]
    pub fn decode(&mut self, code: Code10) -> Result<Symbol, DecodeError> {
        let e = &DEC_LUT[(self.rd == Disparity::Positive) as usize][(code.0 & 0x3FF) as usize];
        // Error entries carry the incoming RD, so the unconditional store
        // preserves "errors never advance state".
        self.rd = if e.rd_pos {
            Disparity::Positive
        } else {
            Disparity::Negative
        };
        match e.sym & 0xF00 {
            DEC_DATA => Ok(Symbol::Data(e.sym as u8)),
            DEC_CTRL => Ok(Symbol::Control(e.sym as u8)),
            DEC_BAD6 => Err(DecodeError::InvalidSixBit(e.sym as u8)),
            DEC_BAD4 => Err(DecodeError::InvalidFourBit(e.sym as u8)),
            _ => Err(DecodeError::DisparityViolation),
        }
    }

    /// The pre-LUT reference decoder, retained verbatim: the perf
    /// baseline for the BENCH_8.json before/after delta and the oracle
    /// for the table-equivalence test.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for invalid sub-blocks or running-disparity
    /// violations.
    pub fn decode_baseline(&mut self, code: Code10) -> Result<Symbol, DecodeError> {
        let six = ((code.0 >> 4) & 0x3F) as u8;
        let four = (code.0 & 0x0F) as u8;

        // Recognize the 6b block first (unknown block = InvalidSixBit, even
        // when its disparity is also impossible).
        let is_k28 = six == K28_SIX_NEG || six == complement6(K28_SIX_NEG);
        let data_x = decode_six(six);
        if !is_k28 && data_x.is_none() {
            return Err(DecodeError::InvalidSixBit(six));
        }

        // Validate the 6b block against the current disparity and compute
        // the mid-group disparity, needed to disambiguate control 4b codes.
        let d6 = six_disparity(six);
        let rd_mid = match (d6, self.rd) {
            (0, rd) => rd,
            (2, Disparity::Negative) => Disparity::Positive,
            (-2, Disparity::Positive) => Disparity::Negative,
            _ => return Err(DecodeError::DisparityViolation),
        };

        if is_k28 {
            let y = decode_k_four(four, rd_mid).ok_or(DecodeError::InvalidFourBit(four))?;
            self.advance(six, four)?;
            return Ok(Symbol::Control((y << 5) | 28));
        }

        let x = data_x.expect("checked above");
        // K.x.7 with A7-looking 4b block on Kx in {23,27,29,30}: those share
        // D.x codes; distinguish by the 4b block being the A7 form where P7
        // would be legal (i.e. where data would never use A7).
        if matches!(x, 23 | 27 | 29 | 30) && (four == A7_NEG || four == complement4(A7_NEG)) {
            let data_would_use_a7 = false; // A7 for data only at x=17,18,20 / 11,13,14
            if !data_would_use_a7 {
                self.advance(six, four)?;
                return Ok(Symbol::Control((7 << 5) | x));
            }
        }
        let y = decode_four(four, x).ok_or(DecodeError::InvalidFourBit(four))?;
        self.advance(six, four)?;
        Ok(Symbol::Data((y << 5) | x))
    }

    fn advance(&mut self, six: u8, four: u8) -> Result<(), DecodeError> {
        // Disparity must stay in {-1, +1} after *each* sub-block, not just
        // at group boundaries; an RD+ sub-block arriving at RD+ is an error
        // even if the following sub-block would cancel it.
        let rd_mid = match (six_disparity(six), self.rd) {
            (0, rd) => rd,
            (2, Disparity::Negative) => Disparity::Positive,
            (-2, Disparity::Positive) => Disparity::Negative,
            _ => return Err(DecodeError::DisparityViolation),
        };
        self.rd = match (four_disparity(four), rd_mid) {
            (0, rd) => rd,
            (2, Disparity::Negative) => Disparity::Positive,
            (-2, Disparity::Positive) => Disparity::Negative,
            _ => return Err(DecodeError::DisparityViolation),
        };
        Ok(())
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

fn decode_six(six: u8) -> Option<u8> {
    for (x, &neg) in FIVE_SIX_NEG.iter().enumerate() {
        if six == neg {
            return Some(x as u8);
        }
        if (six_disparity(neg) != 0 || x == 7) && six == complement6(neg) {
            return Some(x as u8);
        }
    }
    None
}

fn decode_four(four: u8, _x: u8) -> Option<u8> {
    // A7 in either polarity decodes to y=7.
    if four == A7_NEG || four == complement4(A7_NEG) {
        return Some(7);
    }
    for (y, &neg) in THREE_FOUR_NEG.iter().enumerate() {
        if four == neg {
            return Some(y as u8);
        }
        if (four_disparity(neg) != 0 || y == 3) && four == complement4(neg) {
            return Some(y as u8);
        }
    }
    None
}

fn decode_k_four(four: u8, rd_mid: Disparity) -> Option<u8> {
    // Control 3b/4b codes always track the column for the current
    // disparity, and the columns are mutual complements, so the mid-group
    // disparity disambiguates pairs like K.x.2 (1010 at RD-) vs K.x.5
    // (1010 at RD+).
    for (y, &neg) in K_THREE_FOUR_NEG.iter().enumerate() {
        let expected = match rd_mid {
            Disparity::Negative => neg,
            Disparity::Positive => complement4(neg),
        };
        if four == expected {
            return Some(y as u8);
        }
    }
    None
}

/// Longest run of identical bits in `bits`.
pub fn max_run_length(bits: &[bool]) -> usize {
    let mut best = 0;
    let mut cur = 0;
    let mut last = None;
    for &b in bits {
        if Some(b) == last {
            cur += 1;
        } else {
            cur = 1;
            last = Some(b);
        }
        best = best.max(cur);
    }
    best
}

#[cfg(test)]
// Binary literals below group as 6b_4b to mirror the abcdei/fghj split of
// the 8b/10b code, not as equal-width digit groups.
#[allow(clippy::unusual_byte_groupings)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        let mut enc = Encoder::new();
        // D.00.0 at RD-: 100111 0100 per the standard (D.x.0 flips after
        // the unbalanced 6b block makes RD positive).
        let c = enc.encode_data(0x00);
        assert_eq!(format!("{c}"), "1001110100");
        // After one unbalanced-then-rebalanced group RD is back to -.
        assert_eq!(enc.disparity(), Disparity::Negative);
    }

    #[test]
    fn k28_5_is_the_comma() {
        let mut enc = Encoder::new();
        let c = enc.encode_control(K28_5);
        // RD-: 001111 1010
        assert_eq!(format!("{c}"), "0011111010");
        let c2 = enc.encode_control(K28_5);
        // RD+: 110000 0101
        assert_eq!(format!("{c2}"), "1100000101");
    }

    #[test]
    fn round_trip_all_bytes_both_disparities() {
        for first in 0u16..=255 {
            let mut enc = Encoder::new();
            let mut dec = Decoder::new();
            // Prefix toggles disparity state; 0x0B (D.11.0) is unbalanced.
            {
                let &prefix = &0x0Bu8;
                let c = enc.encode_data(prefix);
                assert_eq!(dec.decode(c), Ok(Symbol::Data(prefix)));
            }
            let c = enc.encode_data(first as u8);
            assert_eq!(
                dec.decode(c),
                Ok(Symbol::Data(first as u8)),
                "byte {first:#x}"
            );
        }
    }

    #[test]
    fn round_trip_controls() {
        for &k in &VALID_CONTROL {
            let mut enc = Encoder::new();
            let mut dec = Decoder::new();
            let c = enc.encode_control(k);
            assert_eq!(dec.decode(c), Ok(Symbol::Control(k)), "K {k:#04x}");
            let c2 = enc.encode_control(k);
            assert_eq!(dec.decode(c2), Ok(Symbol::Control(k)), "K {k:#04x} RD+");
        }
    }

    #[test]
    fn disparity_stays_bounded_and_runs_short() {
        let mut enc = Encoder::new();
        let mut bits = Vec::new();
        let mut x: u32 = 0x1234_5678;
        for _ in 0..4096 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            bits.extend_from_slice(&enc.encode_data((x >> 24) as u8).bits());
        }
        // The defining property Baldur depends on: <= 5 consecutive equal
        // bits, so >6T of darkness unambiguously means end-of-packet.
        assert!(max_run_length(&bits) <= 5, "run {}", max_run_length(&bits));
        // Each 10b group is within +-1 cumulative disparity at boundaries.
        let mut rd = 0i32;
        for chunk in bits.chunks(10) {
            let ones = chunk.iter().filter(|&&b| b).count() as i32;
            rd += ones * 2 - 10;
            assert!(rd == 0 || rd.abs() == 2, "rd {rd}");
        }
    }

    #[test]
    fn invalid_code_rejected() {
        let mut dec = Decoder::new();
        // 000000 is not a valid 6b block.
        assert_eq!(
            dec.decode(Code10(0b000000_0100)),
            Err(DecodeError::InvalidSixBit(0))
        );
    }

    #[test]
    fn disparity_violation_detected() {
        let mut dec = Decoder::new();
        // D.00 RD+ form (011000 1011): at RD- its total disparity is -2,
        // which would push RD below -1.
        let rd_plus_d0 = Code10(0b011000_1011);
        assert_eq!(dec.decode(rd_plus_d0), Err(DecodeError::DisparityViolation));
    }

    #[test]
    #[should_panic(expected = "invalid control character")]
    fn bad_control_panics() {
        Encoder::new().encode_control(0x00);
    }

    #[test]
    fn lut_encoder_matches_baseline_exhaustively() {
        // Every (running disparity, byte) cell of the compile-time
        // encoder table must agree with the retained reference
        // implementation — same code group, same exit disparity.
        for rd in [Disparity::Negative, Disparity::Positive] {
            for byte in 0u16..=255 {
                let byte = byte as u8;
                let mut fast = Encoder { rd };
                let mut slow = Encoder { rd };
                assert_eq!(
                    fast.encode_data(byte),
                    slow.encode_data_baseline(byte),
                    "{rd:?} D{byte:#04x}"
                );
                assert_eq!(fast.disparity(), slow.disparity(), "{rd:?} D{byte:#04x}");
            }
        }
    }

    #[test]
    fn lut_decoder_matches_baseline_exhaustively() {
        // All 2×1024 decoder cells: identical Ok/Err outcome (including
        // which error, with the reference's precedence) and identical
        // exit disparity — errors must leave RD untouched in both.
        for rd in [Disparity::Negative, Disparity::Positive] {
            for code in 0u16..1024 {
                let mut fast = Decoder { rd };
                let mut slow = Decoder { rd };
                assert_eq!(
                    fast.decode(Code10(code)),
                    slow.decode_baseline(Code10(code)),
                    "{rd:?} {code:#05x}"
                );
                assert_eq!(fast.rd, slow.rd, "{rd:?} {code:#05x}");
            }
        }
    }

    #[test]
    fn max_run_length_works() {
        assert_eq!(max_run_length(&[]), 0);
        assert_eq!(max_run_length(&[true]), 1);
        assert_eq!(max_run_length(&[true, true, false, false, false, true]), 3);
    }
}

//! Piecewise-constant binary optical waveforms.
//!
//! A [`Waveform`] is the shared signal representation between the encoders
//! in this crate and the gate-level circuit simulator in `baldur-tl`: a
//! sorted list of transition instants, with the signal dark (logic 0) before
//! the first transition.
//!
//! The time unit here is deliberately *not* [`baldur_sim::Time`]'s
//! picosecond: the circuit layer works at a 60 Gbps bit period of
//! T ≈ 16.67 ps, so waveform timestamps are in **femtosecond** ticks
//! ([`Fs`]), which keeps T exactly representable (`T = 16_667 fs`).

use serde::{Deserialize, Serialize};

/// Femtosecond tick used by the circuit layer.
pub type Fs = u64;

/// The 60 Gbps bit period T in femtoseconds (paper Table IV data rate).
pub const BIT_PERIOD_FS: Fs = 16_667;

/// A piecewise-constant binary waveform.
///
/// Invariants: transition times are strictly increasing, and each transition
/// flips the level. The level before the first transition is `false` (dark).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Waveform {
    transitions: Vec<Fs>,
}

impl Waveform {
    /// The always-dark waveform.
    pub fn dark() -> Self {
        Waveform {
            transitions: Vec::new(),
        }
    }

    /// Builds a waveform from `(start, end)` light pulses.
    ///
    /// # Panics
    ///
    /// Panics if pulses are unordered, overlapping, or empty.
    pub fn from_pulses<I: IntoIterator<Item = (Fs, Fs)>>(pulses: I) -> Self {
        let mut transitions = Vec::new();
        let mut last_end: Option<Fs> = None;
        for (start, end) in pulses {
            assert!(start < end, "empty or inverted pulse");
            if let Some(le) = last_end {
                assert!(start > le, "pulses must be separated and ordered");
            }
            transitions.push(start);
            transitions.push(end);
            last_end = Some(end);
        }
        Waveform { transitions }
    }

    /// Builds a waveform directly from a transition list.
    ///
    /// # Panics
    ///
    /// Panics if `transitions` is not strictly increasing.
    pub fn from_transitions(transitions: Vec<Fs>) -> Self {
        for w in transitions.windows(2) {
            assert!(w[0] < w[1], "transitions must be strictly increasing");
        }
        Waveform { transitions }
    }

    /// The transition instants, strictly increasing. Odd count means the
    /// waveform ends high.
    pub fn transitions(&self) -> &[Fs] {
        &self.transitions
    }

    /// The signal level at instant `t` (transitions take effect *at* their
    /// timestamp).
    pub fn level_at(&self, t: Fs) -> bool {
        // Number of transitions at or before t decides the level.
        let n = self.transitions.partition_point(|&x| x <= t);
        n % 2 == 1
    }

    /// Iterates `(start, end)` light pulses. A trailing unterminated pulse
    /// is reported with `end == Fs::MAX`.
    pub fn pulses(&self) -> impl Iterator<Item = (Fs, Fs)> + '_ {
        let n = self.transitions.len();
        (0..n).step_by(2).map(move |i| {
            let start = self.transitions[i];
            let end = if i + 1 < n {
                self.transitions[i + 1]
            } else {
                Fs::MAX
            };
            (start, end)
        })
    }

    /// The instant of the last transition, or 0 for the dark waveform.
    pub fn end(&self) -> Fs {
        self.transitions.last().copied().unwrap_or(0)
    }

    /// True if the waveform never lights up.
    pub fn is_dark(&self) -> bool {
        self.transitions.is_empty()
    }

    /// A copy delayed by `delay` (waveguide delay element).
    pub fn delayed(&self, delay: Fs) -> Waveform {
        Waveform {
            transitions: self.transitions.iter().map(|&t| t + delay).collect(),
        }
    }

    /// Samples the waveform every `step` from `from` (inclusive) to `to`
    /// (exclusive), for plotting/assertions.
    pub fn sample(&self, from: Fs, to: Fs, step: Fs) -> Vec<bool> {
        assert!(step > 0, "step must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push(self.level_at(t));
            t += step;
        }
        out
    }

    /// Total lit time within `[0, horizon)`.
    pub fn lit_time(&self, horizon: Fs) -> Fs {
        let mut total = 0;
        for (s, e) in self.pulses() {
            if s >= horizon {
                break;
            }
            total += e.min(horizon) - s;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_follows_pulses() {
        let w = Waveform::from_pulses([(10, 20), (30, 35)]);
        assert!(!w.level_at(0));
        assert!(!w.level_at(9));
        assert!(w.level_at(10));
        assert!(w.level_at(19));
        assert!(!w.level_at(20));
        assert!(w.level_at(30));
        assert!(!w.level_at(35));
        assert_eq!(w.end(), 35);
    }

    #[test]
    fn pulses_round_trip() {
        let w = Waveform::from_pulses([(1, 2), (5, 9)]);
        let ps: Vec<_> = w.pulses().collect();
        assert_eq!(ps, vec![(1, 2), (5, 9)]);
    }

    #[test]
    fn unterminated_pulse_is_open() {
        let w = Waveform::from_transitions(vec![7]);
        let ps: Vec<_> = w.pulses().collect();
        assert_eq!(ps, vec![(7, Fs::MAX)]);
        assert!(w.level_at(1_000_000));
    }

    #[test]
    fn delayed_shifts_everything() {
        let w = Waveform::from_pulses([(10, 20)]).delayed(5);
        assert_eq!(w.transitions(), &[15, 25]);
    }

    #[test]
    fn lit_time_clips_at_horizon() {
        let w = Waveform::from_pulses([(0, 10), (20, 40)]);
        assert_eq!(w.lit_time(25), 15);
        assert_eq!(w.lit_time(100), 30);
    }

    #[test]
    #[should_panic(expected = "separated and ordered")]
    fn overlapping_pulses_panic() {
        Waveform::from_pulses([(0, 10), (10, 20)]);
    }

    #[test]
    fn sampling() {
        let w = Waveform::from_pulses([(2, 4)]);
        assert_eq!(
            w.sample(0, 6, 1),
            vec![false, false, true, true, false, false]
        );
    }
}

//! The clock-less, length-based routing-bit code (paper Sec. IV-B, Fig. 3).
//!
//! Each routing bit occupies a fixed 3T slot: logic `0` is light for 2T
//! followed by 1T of darkness; logic `1` is light for 1T followed by 2T of
//! darkness. Because every slot is exactly 3T, a receiver that knows only T
//! (not the transmitter's clock phase) can decode by *measuring pulse
//! lengths* — which is precisely what the TL switch's line activity detector
//! does by delaying the input 1.3T and sampling at the falling edge.

use serde::{Deserialize, Serialize};

use crate::waveform::{Fs, Waveform, BIT_PERIOD_FS};

/// Parameters of the length-based code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LengthCode {
    /// The bit period T in femtoseconds.
    pub bit_period: Fs,
}

impl LengthCode {
    /// The paper's 60 Gbps code (T ≈ 16.67 ps).
    pub fn paper() -> Self {
        LengthCode {
            bit_period: BIT_PERIOD_FS,
        }
    }

    /// A code with an explicit bit period (useful for timing-margin tests).
    ///
    /// # Panics
    ///
    /// Panics if `bit_period` is zero.
    pub fn with_bit_period(bit_period: Fs) -> Self {
        assert!(bit_period > 0, "bit period must be positive");
        LengthCode { bit_period }
    }

    /// Slot length: 3T per routing bit.
    pub fn slot(&self) -> Fs {
        3 * self.bit_period
    }

    /// Light duration for a bit: 2T for `0`, 1T for `1`.
    pub fn pulse_len(&self, bit: bool) -> Fs {
        if bit {
            self.bit_period
        } else {
            2 * self.bit_period
        }
    }

    /// Encodes `bits` starting at `start`, returning the pulse list.
    pub fn encode_pulses(&self, bits: &[bool], start: Fs) -> Vec<(Fs, Fs)> {
        let mut pulses = Vec::with_capacity(bits.len());
        let mut t = start;
        for &bit in bits {
            pulses.push((t, t + self.pulse_len(bit)));
            t += self.slot();
        }
        pulses
    }

    /// Encodes `bits` into a waveform starting at `start`.
    pub fn encode(&self, bits: &[bool], start: Fs) -> Waveform {
        Waveform::from_pulses(self.encode_pulses(bits, start))
    }

    /// Total duration of `n` encoded routing bits (n slots).
    pub fn duration(&self, n: usize) -> Fs {
        n as Fs * self.slot()
    }

    /// Decodes the routing bits at the *front* of `wave`, stopping at the
    /// first pulse that does not look like a routing bit (within
    /// `tolerance` femtoseconds of 1T or 2T of light).
    ///
    /// Returns the decoded bits and the slot-aligned instant just past the
    /// last decoded bit (where the remaining payload begins).
    pub fn decode_prefix(&self, wave: &Waveform, tolerance: Fs) -> (Vec<bool>, Fs) {
        let mut bits = Vec::new();
        let mut expected_start = match wave.transitions().first() {
            Some(&t) => t,
            None => return (bits, 0),
        };
        for (s, e) in wave.pulses() {
            if e == Fs::MAX {
                break;
            }
            // Must begin on the expected slot boundary (loose check).
            if s.abs_diff(expected_start) > tolerance {
                break;
            }
            let len = e - s;
            if len.abs_diff(self.pulse_len(true)) <= tolerance {
                bits.push(true);
            } else if len.abs_diff(self.pulse_len(false)) <= tolerance {
                bits.push(false);
            } else {
                break;
            }
            expected_start += self.slot();
        }
        (bits, expected_start)
    }

    /// Decodes exactly the first routing bit the way the switch does
    /// (paper Fig. 3): delay the signal by `theta` (1.3T in the design) and
    /// sample the delayed signal at the falling edge of the first pulse.
    /// A high sample means the pulse was 2T long, i.e. logic `0`.
    ///
    /// Returns `None` for a dark waveform.
    pub fn decode_first_bit_by_delay(&self, wave: &Waveform, theta: Fs) -> Option<bool> {
        let first_fall = *wave.transitions().get(1)?;
        let delayed = wave.delayed(theta);
        let sampled_high = delayed.level_at(first_fall);
        // High at the fall => length >= theta => 2T pulse => logic 0.
        Some(!sampled_high)
    }
}

impl Default for LengthCode {
    fn default() -> Self {
        LengthCode::paper()
    }
}

/// Strips the first routing bit slot from the front of a routing-bit
/// waveform (the mask-off operation performed by AND0/AND1 in the switch
/// fabric): everything before `slot_end` is forced dark.
pub fn mask_front(wave: &Waveform, slot_end: Fs) -> Waveform {
    let mut pulses = Vec::new();
    for (s, e) in wave.pulses() {
        if e == Fs::MAX {
            if s >= slot_end {
                pulses.push((s, e));
            }
            continue;
        }
        if e <= slot_end {
            continue;
        }
        pulses.push((s.max(slot_end), e));
    }
    // Re-validate via from_transitions to keep invariants (open pulse end
    // sentinel is not a real transition).
    let mut transitions = Vec::with_capacity(pulses.len() * 2);
    for (s, e) in pulses {
        transitions.push(s);
        if e != Fs::MAX {
            transitions.push(e);
        }
    }
    Waveform::from_transitions(transitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Fs = BIT_PERIOD_FS;

    #[test]
    fn zero_is_2t_one_is_1t() {
        let c = LengthCode::paper();
        let w = c.encode(&[false, true], 0);
        let pulses: Vec<_> = w.pulses().collect();
        assert_eq!(pulses, vec![(0, 2 * T), (3 * T, 4 * T)]);
    }

    #[test]
    fn slots_are_3t() {
        let c = LengthCode::paper();
        assert_eq!(c.slot(), 3 * T);
        assert_eq!(c.duration(8), 24 * T);
    }

    #[test]
    fn decode_round_trip() {
        let c = LengthCode::paper();
        let bits = vec![true, false, false, true, true, false, true, false];
        let w = c.encode(&bits, 5 * T);
        let (decoded, next) = c.decode_prefix(&w, T / 10);
        assert_eq!(decoded, bits);
        assert_eq!(next, 5 * T + c.duration(8));
    }

    #[test]
    fn decode_stops_at_payload() {
        let c = LengthCode::paper();
        let mut pulses = c.encode_pulses(&[true, false], 0);
        // Payload pulse of length 4T does not match either symbol.
        pulses.push((c.duration(2), c.duration(2) + 4 * T));
        let w = Waveform::from_pulses(pulses);
        let (decoded, next) = c.decode_prefix(&w, T / 10);
        assert_eq!(decoded, vec![true, false]);
        assert_eq!(next, c.duration(2));
    }

    #[test]
    fn first_bit_by_delay_matches_direct_decode() {
        let c = LengthCode::paper();
        let theta = 13 * T / 10; // 1.3T as in the switch design
        for bits in [[false, true], [true, false], [true, true], [false, false]] {
            let w = c.encode(&bits, 7 * T);
            assert_eq!(
                c.decode_first_bit_by_delay(&w, theta),
                Some(bits[0]),
                "bits {bits:?}"
            );
        }
        assert_eq!(c.decode_first_bit_by_delay(&Waveform::dark(), theta), None);
    }

    #[test]
    fn first_bit_tolerates_moderate_jitter() {
        // The bare delay-and-sample mechanism thresholds pulse length at
        // theta = 1.3T, so a "1" tolerates < 0.3T of stretch and a "0"
        // tolerates < 0.7T of shrink. (The paper's symmetric 0.42T margin
        // additionally involves the detector window delta = 0.4T, which is
        // modelled in the full switch circuit in `baldur-tl`.)
        let c = LengthCode::paper();
        let theta = 13 * T / 10;
        // A "1" stretched by 0.25T is still < 1.3T: decoded as 1.
        let w = Waveform::from_pulses([(0, T + T / 4)]);
        assert_eq!(c.decode_first_bit_by_delay(&w, theta), Some(true));
        // A "0" shrunk by 0.42T is still > 1.3T: decoded as 0.
        let w = Waveform::from_pulses([(0, 2 * T - 42 * T / 100)]);
        assert_eq!(c.decode_first_bit_by_delay(&w, theta), Some(false));
        // Past the threshold the decision flips, as expected.
        let w = Waveform::from_pulses([(0, T + T / 2)]);
        assert_eq!(c.decode_first_bit_by_delay(&w, theta), Some(false));
    }

    #[test]
    fn mask_front_removes_first_slot() {
        let c = LengthCode::paper();
        let w = c.encode(&[false, true, false], 0);
        let masked = mask_front(&w, c.slot());
        let (decoded, _) = c.decode_prefix(&masked, T / 10);
        assert_eq!(decoded, vec![true, false]);
    }

    #[test]
    fn mask_front_truncates_partial_pulse() {
        // A pulse straddling the cut is clipped, not deleted.
        let w = Waveform::from_pulses([(0, 10), (20, 40)]);
        let masked = mask_front(&w, 30);
        assert_eq!(masked.pulses().collect::<Vec<_>>(), vec![(30, 40)]);
    }
}

//! The declarative experiment registry: one [`ExperimentSpec`] per
//! table/figure of the paper, all enumerable from a single static table.
//!
//! Before this module existed, every artifact had its own hand-rolled
//! bench binary duplicating flag parsing, sweep construction, CSV/JSON
//! emission, and the failure epilogue — adding a flag meant editing 14
//! files. Now each per-artifact module under [`crate::experiments`]
//! registers a spec describing *what* it is (name, paper artifact,
//! parameter axes with defaults, cache version, output columns) and
//! *how* to run it (a typed `run(&Sweep, &Params)` hook returning an
//! [`Output`]); the single generic runner in `baldur-bench` owns
//! everything else. Adding experiment #18 is one spec registration, not
//! a new binary.
//!
//! Cache-key hygiene lives here too: a spec's `version` is hashed into
//! every job key its sweeps write (via [`Sweep::map_versioned`]), so
//! bumping one experiment's version invalidates exactly its own cache
//! entries. All specs start at version [`crate::sweep::CACHE_SCHEMA`],
//! which reproduces the keys the pre-registry harness wrote —
//! a warm cache stays 100% warm across the refactor.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::BaldurError;
use crate::experiments::{self, EvalConfig};
use crate::sweep::Sweep;

/// Appends one formatted line to a console rendering. Writing to a
/// `String` cannot fail, so the `fmt::Write` result is discarded.
macro_rules! outln {
    ($dst:expr) => {
        $dst.push('\n')
    };
    ($dst:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($dst, $($arg)*);
    }};
}
/// Like [`outln!`] without the trailing newline.
macro_rules! outp {
    ($dst:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($dst, $($arg)*);
    }};
}
pub(crate) use {outln, outp};

/// The typed run hook: everything an experiment produces, or the first
/// harness-level failure. Hooks never print and never exit — rendering
/// and exit codes belong to the runner.
pub type RunHook = fn(&Sweep, &Params) -> Result<Output, BaldurError>;

/// How an [`Axis`] value parses, so the runner can validate `--set`
/// overrides eagerly (usage error, exit 2) instead of failing mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisKind {
    /// Comma-separated floats, e.g. `0.1,0.3,0.5`.
    F64List,
    /// Comma-separated unsigned integers, e.g. `256,1024`.
    U32List,
    /// One unsigned integer.
    U64,
    /// Comma-separated names, e.g. `baldur,fattree`.
    StrList,
    /// Free-form string (empty = unset).
    Str,
}

impl AxisKind {
    /// Stable identifier used in `--describe` output.
    pub fn name(self) -> &'static str {
        match self {
            AxisKind::F64List => "f64-list",
            AxisKind::U32List => "u32-list",
            AxisKind::U64 => "u64",
            AxisKind::StrList => "str-list",
            AxisKind::Str => "str",
        }
    }

    /// Validates a raw override against this kind.
    fn check(self, raw: &str) -> Result<(), String> {
        match self {
            AxisKind::F64List => split_parse::<f64>(raw).map(|_| ()),
            AxisKind::U32List => split_parse::<u32>(raw).map(|_| ()),
            AxisKind::U64 => raw
                .trim()
                .parse::<u64>()
                .map(|_| ())
                .map_err(|_| format!("`{raw}` is not an unsigned integer")),
            AxisKind::StrList | AxisKind::Str => Ok(()),
        }
    }
}

/// One overridable parameter of an experiment (set via `--set name=v`
/// or the `--name v` shorthand).
#[derive(Debug, Clone, Copy)]
pub struct Axis {
    /// Flag-style name (`loads`, `fractions`, `samples`, ...).
    pub name: &'static str,
    /// Value shape, for eager validation and `--describe`.
    pub kind: AxisKind,
    /// Default raw value when not overridden.
    pub default: &'static str,
    /// One-line help string.
    pub help: &'static str,
}

/// A boolean switch an experiment understands (e.g. droptool `--big`).
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// Flag name without the leading dashes.
    pub name: &'static str,
    /// One-line help string.
    pub help: &'static str,
}

/// An alternate entry point selected by a flag (e.g. faults `--smoke`),
/// replacing the spec's default [`RunHook`] for that invocation.
#[derive(Clone, Copy)]
pub struct Mode {
    /// Selecting flag, without the leading dashes.
    pub flag: &'static str,
    /// One-line help string.
    pub help: &'static str,
    /// The hook to run instead of [`ExperimentSpec::run`].
    pub run: RunHook,
}

/// Everything the generic runner needs to know about one experiment.
pub struct ExperimentSpec {
    /// Registry name; also the bench binary name and the stem of the
    /// files `all_figures` writes (`<name>.json` / `<name>.csv`).
    pub name: &'static str,
    /// Which paper artifact this reproduces ("Figure 6", "Table V", ...).
    pub artifact: &'static str,
    /// One-line summary for `--list` and the docs table.
    pub summary: &'static str,
    /// Cache-schema version, hashed into every job key this spec's
    /// sweeps write. Bump when the payload semantics change; other
    /// experiments' cache entries stay warm.
    pub version: u32,
    /// The sweep labels this spec runs (cache-key namespaces).
    pub labels: &'static [&'static str],
    /// Overridable parameter axes (defaults are the standalone-binary
    /// defaults).
    pub axes: &'static [Axis],
    /// Boolean switches.
    pub flags: &'static [Flag],
    /// Alternate flag-selected entry points.
    pub modes: &'static [Mode],
    /// CSV column header, when the experiment renders CSV.
    pub output_columns: &'static [&'static str],
    /// Golden snapshot file under `results/golden/`, when this
    /// experiment is snapshot-gated (`None` = explicitly exempt).
    pub golden: Option<&'static str>,
    /// Where the standalone binary writes CSV when `--csv` is absent
    /// (only the fault sweep does this, historically).
    pub csv_default: Option<&'static str>,
    /// Where the standalone binary writes JSON when `--json` is absent.
    pub json_default: Option<&'static str>,
    /// A gnuplot script `all_figures` drops next to the CSV.
    pub gnuplot: Option<(&'static str, &'static str)>,
    /// Axis overrides `all_figures` applies on top of the defaults
    /// (e.g. the saturation sweep runs fewer loads there).
    pub all_figures: fn(&EvalConfig) -> Vec<(&'static str, String)>,
    /// The default entry point.
    pub run: RunHook,
}

/// The shared "no overrides in `all_figures`" hook.
pub fn no_overrides(_cfg: &EvalConfig) -> Vec<(&'static str, String)> {
    Vec::new()
}

/// Resolved parameters handed to a [`RunHook`]: the shared sizing
/// config plus this spec's axis values (defaults merged with overrides)
/// and enabled flags.
#[derive(Debug, Clone)]
pub struct Params {
    /// Shared sizing knobs (`--nodes`, `--packets`, `--seed`, ...).
    pub cfg: EvalConfig,
    values: BTreeMap<&'static str, String>,
    flags: Vec<&'static str>,
}

impl Params {
    /// Parameters at the spec's defaults.
    pub fn for_spec(spec: &ExperimentSpec, cfg: EvalConfig) -> Params {
        Params {
            cfg,
            values: spec
                .axes
                .iter()
                .map(|a| (a.name, a.default.to_string()))
                .collect(),
            flags: Vec::new(),
        }
    }

    /// Overrides one axis, validating the value against the axis kind.
    pub fn set(
        &mut self,
        spec: &ExperimentSpec,
        axis: &str,
        value: &str,
    ) -> Result<(), BaldurError> {
        let Some(a) = spec.axes.iter().find(|a| a.name == axis) else {
            let known: Vec<&str> = spec.axes.iter().map(|a| a.name).collect();
            return Err(invalid(
                axis,
                &format!(
                    "experiment `{}` has no such axis (axes: {})",
                    spec.name,
                    if known.is_empty() {
                        "none".to_string()
                    } else {
                        known.join(", ")
                    }
                ),
            ));
        };
        a.kind.check(value).map_err(|m| invalid(axis, &m))?;
        self.values.insert(a.name, value.to_string());
        Ok(())
    }

    /// Enables one of the spec's boolean flags.
    pub fn enable(&mut self, spec: &ExperimentSpec, flag: &str) -> Result<(), BaldurError> {
        let Some(f) = spec.flags.iter().find(|f| f.name == flag) else {
            return Err(invalid(
                flag,
                &format!("experiment `{}` has no such flag", spec.name),
            ));
        };
        if !self.flags.contains(&f.name) {
            self.flags.push(f.name);
        }
        Ok(())
    }

    /// True if the named flag was enabled.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| *f == name)
    }

    fn raw(&self, name: &str) -> Result<&str, BaldurError> {
        match self.values.get(name) {
            Some(v) => Ok(v.as_str()),
            None => Err(invalid(name, "axis not declared by this experiment")),
        }
    }

    /// The named axis as a float list.
    pub fn f64_list(&self, name: &str) -> Result<Vec<f64>, BaldurError> {
        split_parse(self.raw(name)?).map_err(|m| invalid(name, &m))
    }

    /// The named axis as an unsigned-integer list.
    pub fn u32_list(&self, name: &str) -> Result<Vec<u32>, BaldurError> {
        split_parse(self.raw(name)?).map_err(|m| invalid(name, &m))
    }

    /// The named axis as one unsigned integer.
    pub fn u64(&self, name: &str) -> Result<u64, BaldurError> {
        let raw = self.raw(name)?;
        raw.trim()
            .parse()
            .map_err(|_| invalid(name, &format!("`{raw}` is not an unsigned integer")))
    }

    /// The named axis as a name list.
    pub fn str_list(&self, name: &str) -> Result<Vec<String>, BaldurError> {
        Ok(self
            .raw(name)?
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect())
    }

    /// The named axis as a string, `None` when empty/unset.
    pub fn opt_str(&self, name: &str) -> Result<Option<&str>, BaldurError> {
        let raw = self.raw(name)?;
        Ok(if raw.is_empty() { None } else { Some(raw) })
    }
}

/// Resolves the shared `networks` axis into the named-lineup shape the
/// simulation experiments sweep over. An unknown network name surfaces
/// as [`BaldurError::InvalidParam`] (usage error, exit 2) listing the
/// valid choices.
pub fn networks_axis(
    p: &Params,
    nodes: u32,
) -> Result<Vec<(String, crate::net::runner::NetworkKind)>, BaldurError> {
    let names = p.str_list("networks")?;
    crate::net::runner::NetworkKind::lineup_named(nodes, &names)
        .map_err(|message| invalid("networks", &message))
}

fn invalid(param: &str, message: &str) -> BaldurError {
    BaldurError::InvalidParam {
        param: param.to_string(),
        message: message.to_string(),
    }
}

fn split_parse<T: std::str::FromStr>(raw: &str) -> Result<Vec<T>, String> {
    raw.split(',')
        .map(|piece| {
            piece
                .trim()
                .parse::<T>()
                .map_err(|_| format!("`{piece}` did not parse (expected e.g. 0.1,0.3,0.5)"))
        })
        .collect()
}

/// What one run produced. The runner decides where each part goes: the
/// console text to stdout, CSV/JSON to `--csv`/`--json` (or the spec's
/// default paths, or `<out>/<name>.{csv,json}` under `all_figures`),
/// and extra files (the Figure 5 VCD) to their named paths.
pub struct Output {
    /// Human-readable tables, ready to print.
    pub console: String,
    /// CSV rendering, when the experiment has one.
    pub csv: Option<String>,
    /// Pretty-printed JSON of the structured results.
    pub json: Option<String>,
    /// Extra artifacts as `(relative path, contents)` pairs.
    pub files: Vec<(String, String)>,
}

impl Output {
    /// An output with only console text.
    pub fn console_only(console: String) -> Output {
        Output {
            console,
            csv: None,
            json: None,
            files: Vec::new(),
        }
    }
}

/// Serializes a value for [`Output::json`], mapping the (never expected)
/// serialization failure onto the experiment error path instead of a
/// panic.
pub fn json_of<T: Serialize>(name: &str, value: &T) -> Result<String, BaldurError> {
    serde_json::to_string_pretty(value).map_err(|e| BaldurError::Experiment {
        name: name.to_string(),
        message: format!("serialize results: {e:?}"),
    })
}

/// The `--describe` document for one spec: a plain-data mirror of
/// [`ExperimentSpec`] that round-trips through the vendored serde.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Descriptor {
    /// Registry name.
    pub name: String,
    /// Paper artifact.
    pub artifact: String,
    /// One-line summary.
    pub summary: String,
    /// Cache-schema version.
    pub version: u32,
    /// Sweep labels (cache-key namespaces).
    pub labels: Vec<String>,
    /// Parameter axes.
    pub axes: Vec<AxisDescriptor>,
    /// Boolean flags.
    pub flags: Vec<SwitchDescriptor>,
    /// Alternate flag-selected modes.
    pub modes: Vec<SwitchDescriptor>,
    /// CSV column header, empty when the experiment has no CSV.
    pub output_columns: Vec<String>,
    /// Golden snapshot file, `null` when exempt.
    pub golden: Option<String>,
}

/// One axis in a [`Descriptor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisDescriptor {
    /// Axis name.
    pub name: String,
    /// Value shape (see [`AxisKind::name`]).
    pub kind: String,
    /// Default raw value.
    pub default: String,
    /// Help string.
    pub help: String,
}

/// One flag or mode in a [`Descriptor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchDescriptor {
    /// Flag name without dashes.
    pub name: String,
    /// Help string.
    pub help: String,
}

/// Builds the `--describe` document for a spec.
pub fn describe(spec: &ExperimentSpec) -> Descriptor {
    Descriptor {
        name: spec.name.to_string(),
        artifact: spec.artifact.to_string(),
        summary: spec.summary.to_string(),
        version: spec.version,
        labels: spec.labels.iter().map(|l| l.to_string()).collect(),
        axes: spec
            .axes
            .iter()
            .map(|a| AxisDescriptor {
                name: a.name.to_string(),
                kind: a.kind.name().to_string(),
                default: a.default.to_string(),
                help: a.help.to_string(),
            })
            .collect(),
        flags: spec
            .flags
            .iter()
            .map(|f| SwitchDescriptor {
                name: f.name.to_string(),
                help: f.help.to_string(),
            })
            .collect(),
        modes: spec
            .modes
            .iter()
            .map(|m| SwitchDescriptor {
                name: m.flag.to_string(),
                help: m.help.to_string(),
            })
            .collect(),
        output_columns: spec.output_columns.iter().map(|c| c.to_string()).collect(),
        golden: spec.golden.map(|g| g.to_string()),
    }
}

/// Every registered experiment, in `all_figures` execution order.
///
/// This table is the single registration point: a spec absent here is
/// unreachable from the bench binaries, `all_figures`, the docs table,
/// and the completeness test — which is exactly what the test checks.
pub fn all() -> &'static [&'static ExperimentSpec] {
    static ALL: [&ExperimentSpec; 21] = [
        &experiments::table5::SPEC,
        &experiments::fig6::SPEC,
        &experiments::fig7::SPEC,
        &experiments::fig8::SPEC,
        &experiments::fig9::SPEC,
        &experiments::fig10::SPEC,
        &experiments::saturation::SPEC,
        &experiments::droptool::SPEC,
        &experiments::reliability::SPEC,
        &experiments::awgr::SPEC,
        &experiments::buffers::SPEC,
        &experiments::ablation::SPEC,
        &experiments::topologies::SPEC,
        &experiments::faults::SPEC,
        &experiments::chaos::SPEC,
        &experiments::overload::SPEC,
        &experiments::fig5::SPEC,
        &experiments::tables34::SPEC,
        &experiments::packaging::SPEC,
        &experiments::perf::SPEC,
        &experiments::scaling::SPEC,
    ];
    &ALL
}

/// Looks up a spec by registry name.
pub fn get(name: &str) -> Option<&'static ExperimentSpec> {
    all().iter().copied().find(|s| s.name == name)
}

/// Renders the `--list` table: one aligned line per spec.
pub fn list_table() -> String {
    let mut out = String::new();
    let wide = all().iter().map(|s| s.name.len()).max().unwrap_or(0);
    let awide = all().iter().map(|s| s.artifact.len()).max().unwrap_or(0);
    for spec in all() {
        outln!(
            out,
            "{:<wide$}  {:<awide$}  {}",
            spec.name,
            spec.artifact,
            spec.summary
        );
    }
    out
}

/// Renders the experiment table embedded in EXPERIMENTS.md — the docs
/// are regenerated from the registry, never hand-edited (a test diffs
/// the committed file against this function).
pub fn markdown_table() -> String {
    let mut out = String::new();
    outln!(
        out,
        "| Experiment | Paper artifact | Axes (defaults) | Golden | Summary |"
    );
    outln!(out, "| --- | --- | --- | --- | --- |");
    for spec in all() {
        let axes = if spec.axes.is_empty() {
            "—".to_string()
        } else {
            spec.axes
                .iter()
                .map(|a| format!("`{}={}`", a.name, a.default))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let golden = match spec.golden {
            Some(g) => format!("`{g}`"),
            None => "exempt".to_string(),
        };
        outln!(
            out,
            "| `{}` | {} | {} | {} | {} |",
            spec.name,
            spec.artifact,
            axes,
            golden,
            spec.summary
        );
    }
    out
}

// ---------------------------------------------------------- console text

/// Formats a nanosecond value the way the paper's figures read.
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "-".into()
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Formats a byte count with a binary-prefix unit (peak RSS, state
/// bytes). Zero renders as `0 B` — the "no probe installed" case.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.2} KiB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Appends a section header to a console rendering (the string twin of
/// the old bench `header()` helper).
pub fn section(out: &mut String, title: &str) {
    out.push('\n');
    outln!(out, "=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(250.0), "250.0 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(f64::NAN), "-");
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = all().iter().map(|s| s.name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate registry names");
        for name in names {
            assert!(get(name).is_some(), "{name} must resolve");
        }
        assert!(get("no_such_experiment").is_none());
    }

    #[test]
    fn axis_defaults_parse_under_their_declared_kind() {
        for spec in all() {
            for axis in spec.axes {
                assert!(
                    axis.kind.check(axis.default).is_ok(),
                    "{}: axis {} default `{}` does not parse as {}",
                    spec.name,
                    axis.name,
                    axis.default,
                    axis.kind.name()
                );
            }
        }
    }

    #[test]
    fn params_validate_overrides_eagerly() {
        let spec = get("fig6").expect("fig6 registered");
        let mut p = Params::for_spec(spec, EvalConfig::tiny());
        assert!(p.set(spec, "loads", "0.2,0.4").is_ok());
        assert_eq!(p.f64_list("loads").expect("parses"), vec![0.2, 0.4]);
        assert!(matches!(
            p.set(spec, "loads", "0.2,wat"),
            Err(BaldurError::InvalidParam { .. })
        ));
        assert!(matches!(
            p.set(spec, "bogus_axis", "1"),
            Err(BaldurError::InvalidParam { .. })
        ));
    }

    #[test]
    fn describe_round_trips_through_vendored_serde() {
        for spec in all() {
            let d = describe(spec);
            let text = serde_json::to_string_pretty(&d).expect("serialize descriptor");
            let back: Descriptor = serde_json::from_str(&text).expect("parse descriptor");
            assert_eq!(d, back, "{}", spec.name);
        }
    }

    #[test]
    fn markdown_table_covers_every_spec() {
        let table = markdown_table();
        for spec in all() {
            assert!(table.contains(&format!("| `{}` |", spec.name)), "{table}");
        }
    }
}

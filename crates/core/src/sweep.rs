//! Sweep orchestration: deterministic parallel fan-out, a
//! content-addressed run cache, and a crash-safe completion journal.
//!
//! Every experiment in [`crate::experiments`] is a sweep — a list of fully
//! self-describing jobs (each item serializes to JSON and determines its
//! result completely) mapped through a pure function. That structure buys
//! three things at once:
//!
//! * **Parallelism without divergence.** Jobs fan out over
//!   [`crate::supervise::run_jobs`] (and, below it,
//!   `baldur_sim::par::par_map_isolated`), which returns results in
//!   submission order, so rendered CSV/JSON is byte-identical at any
//!   thread count (`BALDUR_THREADS=1` and `=8` produce the same bytes; a
//!   tier-1 test asserts it).
//! * **Content-addressed caching.** Each job's cache key is the SHA-256 of
//!   `label | schema | crate version | exact-JSON(item)`. A hit replays
//!   the stored result instead of simulating; because results are stored
//!   with [`serde_json::to_string_exact`] (non-finite floats round-trip)
//!   and floats render shortest-round-trip, a replayed result is
//!   bit-identical to a fresh one. Corrupt or unreadable entries are
//!   recomputed, overwritten, counted in [`SweepStats::corrupt`], and
//!   warned about on stderr.
//! * **Crash safety.** Each completed job's cache entry is persisted *as
//!   the job finishes* (temp file + rename), then recorded in an fsync'd
//!   JSONL journal (`journal.jsonl` in the cache directory). A `kill -9`
//!   mid-sweep loses at most the in-flight jobs: a rerun with
//!   [`Sweep::with_resume`] replays everything the journal confirms
//!   (counted in [`SweepStats::resumed`]) and re-executes only the rest.
//!   A torn final journal line — the signature of dying mid-append — is
//!   discarded on load, never fatal.
//!
//! Failure handling is supervised (see [`crate::supervise`]): panicking
//! jobs become [`JobError`] slots instead of tearing down the sweep,
//! watchdog deadlines quarantine hung jobs, and a failure budget aborts
//! the sweep cleanly once exceeded. [`Sweep::try_map`] exposes the full
//! per-slot picture; [`Sweep::map`] keeps the infallible-looking
//! signature the experiments use (failed jobs are dropped from its output
//! after being warned about, recorded in [`Sweep::failures`], and — when
//! a budget aborts — reflected in [`Sweep::aborted`]).
//!
//! The cache lives under `results/cache/` by default (one `<hex>.json`
//! per job) and is enabled by the bench binaries, not by unit tests: the
//! experiment wrappers in [`crate::experiments`] default to an uncached
//! [`Sweep`] so `cargo test` never touches the filesystem.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::error::JobError;
use crate::supervise::{self, Policy};

/// Workspace-wide cache-schema baseline, and the default per-experiment
/// cache version for [`Sweep::map`] / [`Sweep::try_map`].
///
/// Experiments registered in [`crate::registry`] carry their own
/// `version` (hashed into every job key via [`Sweep::map_versioned`]);
/// bumping a spec's version invalidates only that experiment's entries.
/// Bump *this* constant only when the meaning of cached payloads changes
/// globally (e.g. the journal format): every key changes, so stale
/// entries are never replayed.
pub const CACHE_SCHEMA: u32 = 1;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Completion journal file name, inside the cache directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Per-sweep accounting: one entry per [`Sweep::map`] / [`Sweep::try_map`]
/// call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// The sweep label (also part of every job's cache key).
    pub label: String,
    /// Jobs in the sweep.
    pub jobs: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Corrupt cache entries healed by recomputing.
    pub corrupt: usize,
    /// Cache hits confirmed complete by a prior run's journal (only
    /// nonzero on [`Sweep::with_resume`] runs).
    pub resumed: usize,
    /// Jobs that failed: panicked, timed out, or cancelled.
    pub failed: usize,
    /// Wall-clock time for the whole sweep, milliseconds.
    pub wall_ms: u64,
}

/// One failed job, kept for the end-of-run status table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFailure {
    /// The sweep label the job belonged to.
    pub label: String,
    /// Submission index of the job within its sweep.
    pub index: usize,
    /// The structured failure.
    pub error: JobError,
}

/// One line of the completion journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// The job's content-addressed cache key (hex SHA-256).
    pub key: String,
    /// The sweep label.
    pub label: String,
    /// `"done"` for completed jobs, else a [`JobError`] kind name
    /// (`"panicked"` / `"timed_out"` / `"skipped"`).
    pub status: String,
    /// Wall-clock milliseconds the job (including retries) took.
    pub wall_ms: u64,
}

/// A journal read back from disk, tolerant of a torn tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Every record that parsed, in append order.
    pub records: Vec<JournalRecord>,
    /// Lines that failed to parse — normally 0 or 1 (a half-written
    /// final line from a crash mid-append). Discarded, never fatal.
    pub torn_lines: usize,
}

/// Reads a completion journal. A missing file is an empty journal; an
/// unparseable line (torn tail from a crash mid-append, or outright
/// corruption) is skipped and counted, never fatal — at worst the job it
/// described is re-executed.
pub fn read_journal(path: &Path) -> JournalSnapshot {
    let mut snap = JournalSnapshot {
        records: Vec::new(),
        torn_lines: 0,
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return snap;
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalRecord>(line) {
            Ok(rec) => snap.records.push(rec),
            Err(_) => snap.torn_lines += 1,
        }
    }
    snap
}

/// The live append side of the journal, opened lazily on first use.
#[derive(Debug)]
struct Journal {
    file: File,
    /// Keys the prior run's journal confirms as completed (empty unless
    /// resuming).
    prior_done: BTreeSet<String>,
}

impl Journal {
    /// Opens the journal inside `dir`. Resuming appends to the existing
    /// file (after harvesting its completed keys); a fresh run truncates
    /// it, so stale completions can never leak into a later resume.
    fn open(dir: &Path, resume: bool) -> Option<Journal> {
        std::fs::create_dir_all(dir).ok()?;
        let path = dir.join(JOURNAL_FILE);
        let mut prior_done = BTreeSet::new();
        let file = if resume {
            for rec in read_journal(&path).records {
                if rec.status == "done" {
                    prior_done.insert(rec.key);
                }
            }
            File::options().create(true).append(true).open(&path).ok()?
        } else {
            File::create(&path).ok()?
        };
        Some(Journal { file, prior_done })
    }

    /// Appends one record and syncs it to disk before returning, so a
    /// record the journal reports is durable even through `kill -9`.
    /// (Append + fsync per completed job; jobs are seconds-scale
    /// simulations, so the sync is noise.) I/O failures are swallowed:
    /// the journal is a resume accelerator, never a correctness
    /// dependency.
    fn append(&mut self, rec: &JournalRecord) {
        let Ok(line) = serde_json::to_string_exact(rec) else {
            return;
        };
        if self.file.write_all(line.as_bytes()).is_ok() && self.file.write_all(b"\n").is_ok() {
            let _ = self.file.sync_data();
        }
    }
}

/// Lazily-initialised journal cell: `opened` flips on first use so a
/// cache-less sweep never touches the filesystem.
#[derive(Debug, Default)]
struct JournalCell {
    opened: bool,
    journal: Option<Journal>,
}

/// A supervised parallel sweep runner with optional result caching and
/// crash-safe resume.
///
/// Construct once per harness invocation and thread through the
/// `*_on` experiment variants; [`Sweep::summary`] renders the collected
/// per-sweep wall-clock and cache counters, and [`Sweep::status_table`]
/// renders the failure report (if any).
#[derive(Debug)]
pub struct Sweep {
    threads: usize,
    cache_dir: Option<PathBuf>,
    policy: Policy,
    resume: bool,
    journal: Mutex<JournalCell>,
    stats: Mutex<Vec<SweepStats>>,
    failures: Mutex<Vec<SweepFailure>>,
    aborted: AtomicBool,
}

impl Sweep {
    /// An uncached sweep runner. `threads == 0` resolves through
    /// `BALDUR_THREADS`, then the machine's parallelism.
    pub fn new(threads: usize) -> Self {
        Sweep {
            threads: crate::sim::par::thread_count(threads),
            cache_dir: None,
            policy: Policy::default(),
            resume: false,
            journal: Mutex::new(JournalCell::default()),
            stats: Mutex::new(Vec::new()),
            failures: Mutex::new(Vec::new()),
            aborted: AtomicBool::new(false),
        }
    }

    /// A sweep runner caching into [`DEFAULT_CACHE_DIR`].
    pub fn cached(threads: usize) -> Self {
        Sweep::new(threads).with_cache_dir(DEFAULT_CACHE_DIR)
    }

    /// Redirects (and enables) the cache at `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disables the cache (jobs always recompute; no journal either).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache_dir = None;
        self.journal = Mutex::new(JournalCell::default());
        self
    }

    /// Sets the supervision policy (watchdog deadline, timeout retries,
    /// failure budget).
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Resume mode: harvest the prior run's journal instead of
    /// truncating it, and count journal-confirmed cache hits in
    /// [`SweepStats::resumed`]. Only meaningful with a cache directory.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The active supervision policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Maps `f` over `items` in parallel, preserving order, replaying
    /// cached results where available. Failed jobs (panicked, timed out,
    /// or cancelled by the failure budget) are **dropped from the
    /// output** after a stderr warning — they remain visible via
    /// [`Sweep::failures`], [`Sweep::status_table`], and
    /// [`Sweep::aborted`]. Use [`Sweep::try_map`] to see every slot.
    ///
    /// Each item must be *self-describing*: its serialized form (plus
    /// `label`) is the cache key, so everything that influences `f`'s
    /// result must be part of the item — which is why the experiment
    /// sweeps carry their full `RunConfig` in the item tuples.
    pub fn map<T, R, F>(&self, label: &str, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Serialize + Send + Sync,
        R: Serialize + Deserialize + Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_versioned(label, CACHE_SCHEMA, items, f)
    }

    /// [`Sweep::map`] with an explicit per-experiment cache version.
    ///
    /// The version is hashed into every job's content address, so a spec
    /// that bumps its `version` (because its payload semantics changed)
    /// invalidates exactly its own entries while every other experiment's
    /// cache stays warm. `version == CACHE_SCHEMA` reproduces the keys
    /// [`Sweep::map`] has always written.
    pub fn map_versioned<T, R, F>(&self, label: &str, version: u32, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Serialize + Send + Sync,
        R: Serialize + Deserialize + Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_map_versioned(label, version, items, f)
            .into_iter()
            .filter_map(Result::ok)
            .collect()
    }

    /// The supervised primitive under [`Sweep::map`]: one
    /// submission-ordered `Result` per item, failures included.
    ///
    /// Completed jobs are persisted to the cache and journaled *as they
    /// finish* (not at the end of the sweep), which is what makes a
    /// `kill -9` mid-sweep resumable.
    pub fn try_map<T, R, F>(&self, label: &str, items: Vec<T>, f: F) -> Vec<Result<R, JobError>>
    where
        T: Serialize + Send + Sync,
        R: Serialize + Deserialize + Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_map_versioned(label, CACHE_SCHEMA, items, f)
    }

    /// [`Sweep::try_map`] with an explicit per-experiment cache version
    /// (see [`Sweep::map_versioned`] for the key-derivation contract).
    pub fn try_map_versioned<T, R, F>(
        &self,
        label: &str,
        version: u32,
        items: Vec<T>,
        f: F,
    ) -> Vec<Result<R, JobError>>
    where
        T: Serialize + Send + Sync,
        R: Serialize + Deserialize + Send,
        F: Fn(&T) -> R + Sync,
    {
        let start = Instant::now();
        let n = items.len();
        let hexes: Vec<Option<String>> = match self.cache_dir {
            Some(_) => items.iter().map(|it| key_hex(label, version, it)).collect(),
            None => vec![None; n],
        };
        let paths: Vec<Option<PathBuf>> = hexes
            .iter()
            .map(|hex| {
                let (dir, hex) = (self.cache_dir.as_ref()?, hex.as_ref()?);
                Some(dir.join(format!("{hex}.json")))
            })
            .collect();
        let prior_done = self.journal_prior_done();

        let mut results: Vec<Option<Result<R, JobError>>> = Vec::with_capacity(n);
        let mut miss_idx: Vec<usize> = Vec::new();
        let (mut cache_hits, mut corrupt, mut resumed) = (0usize, 0usize, 0usize);
        for i in 0..n {
            match paths[i].as_deref().map_or(CacheRead::Miss, read_entry::<R>) {
                CacheRead::Hit(r) => {
                    cache_hits += 1;
                    if hexes[i].as_ref().is_some_and(|h| prior_done.contains(h)) {
                        resumed += 1;
                    }
                    results.push(Some(Ok(r)));
                }
                CacheRead::Corrupt => {
                    corrupt += 1;
                    miss_idx.push(i);
                    results.push(None);
                }
                CacheRead::Miss => {
                    miss_idx.push(i);
                    results.push(None);
                }
            }
        }

        let outcome = supervise::run_jobs(self.threads, &self.policy, &miss_idx, |_, &i| {
            let t0 = Instant::now();
            let r = f(&items[i]);
            let wall_ms = supervise::elapsed_ms(t0);
            // Persist + journal as the job completes: this is the
            // crash-safety point. A kill after this line loses nothing.
            if let Some(path) = &paths[i] {
                write_entry(path, &r);
            }
            if let Some(hex) = &hexes[i] {
                self.journal_append(JournalRecord {
                    key: hex.clone(),
                    label: label.to_string(),
                    status: "done".to_string(),
                    wall_ms,
                });
            }
            r
        });

        let mut failed = 0usize;
        for (slot, report) in miss_idx.iter().zip(outcome.jobs) {
            let i = *slot;
            match report.result {
                Ok(r) => results[i] = Some(Ok(r)),
                Err(error) => {
                    failed += 1;
                    if let Some(hex) = &hexes[i] {
                        self.journal_append(JournalRecord {
                            key: hex.clone(),
                            label: label.to_string(),
                            status: error.kind.as_str().to_string(),
                            wall_ms: report.wall_ms,
                        });
                    }
                    eprintln!("warning: sweep '{label}': job {i} {error}");
                    self.failures
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(SweepFailure {
                            label: label.to_string(),
                            index: i,
                            error: error.clone(),
                        });
                    results[i] = Some(Err(error));
                }
            }
        }
        if outcome.aborted {
            self.aborted.store(true, Ordering::Relaxed);
            let budget = self.policy.fail_budget.unwrap_or(0);
            eprintln!(
                "error: sweep '{label}': failure budget ({budget}) exhausted after {failed} \
                 failure{}; remaining jobs cancelled",
                if failed == 1 { "" } else { "s" }
            );
        }
        if corrupt > 0 {
            eprintln!(
                "warning: sweep '{label}': healed {corrupt} corrupt cache entr{} by recomputing",
                if corrupt == 1 { "y" } else { "ies" }
            );
        }

        let wall_ms = supervise::elapsed_ms(start);
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(SweepStats {
                label: label.to_string(),
                jobs: n,
                cache_hits,
                corrupt,
                resumed,
                failed,
                wall_ms,
            });

        results
            .into_iter()
            .map(|r| match r {
                Some(v) => v,
                None => unreachable!("every sweep job is a hit, a result, or a failure"),
            })
            .collect()
    }

    /// The per-sweep counters collected so far, in execution order.
    pub fn stats(&self) -> Vec<SweepStats> {
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Every job failure recorded so far, in completion-report order.
    pub fn failures(&self) -> Vec<SweepFailure> {
        self.failures
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// True once any sweep on this runner exhausted its failure budget
    /// (bench binaries exit nonzero exactly in this case).
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Renders the collected counters as an aligned console block, e.g.
    ///
    /// ```text
    /// sweep summary (threads=8, cache=results/cache)
    ///   fig6            48 jobs    48 hits   0 corrupt      213 ms
    ///   total           48 jobs    48 hits (100.0%)   0 corrupt   213 ms
    /// ```
    pub fn summary(&self) -> String {
        let stats = self.stats();
        let cache_note = match &self.cache_dir {
            Some(dir) => format!("cache={}", dir.display()),
            None => "cache=off".to_string(),
        };
        let mut out = format!("sweep summary (threads={}, {cache_note})\n", self.threads);
        let (mut jobs, mut hits, mut corrupt, mut resumed, mut ms) =
            (0usize, 0usize, 0usize, 0usize, 0u64);
        for s in &stats {
            out.push_str(&format!(
                "  {:<18} {:>5} jobs {:>5} hits {:>3} corrupt {:>8} ms\n",
                s.label, s.jobs, s.cache_hits, s.corrupt, s.wall_ms
            ));
            jobs += s.jobs;
            hits += s.cache_hits;
            corrupt += s.corrupt;
            resumed += s.resumed;
            ms += s.wall_ms;
        }
        let pct = if jobs == 0 {
            0.0
        } else {
            100.0 * hits as f64 / jobs as f64
        };
        out.push_str(&format!(
            "  {:<18} {jobs:>5} jobs {hits:>5} hits ({pct:.1}%) {corrupt:>3} corrupt {ms:>4} ms\n",
            "total"
        ));
        if resumed > 0 {
            out.push_str(&format!(
                "  resumed: {resumed} job{} confirmed complete by the journal\n",
                if resumed == 1 { "" } else { "s" }
            ));
        }
        out
    }

    /// Renders the per-job failure report, or `None` when every job
    /// succeeded (so callers can skip the block entirely).
    ///
    /// ```text
    /// job status (2 failed, sweep aborted: failure budget exhausted)
    ///   sweep            job  status     attempts  detail
    ///   fig6               7  panicked          1  index out of bounds...
    /// ```
    pub fn status_table(&self) -> Option<String> {
        let failures = self.failures();
        if failures.is_empty() && !self.aborted() {
            return None;
        }
        let mut out = format!(
            "job status ({} failed{})\n",
            failures.len(),
            if self.aborted() {
                ", sweep aborted: failure budget exhausted"
            } else {
                ""
            }
        );
        out.push_str(&format!(
            "  {:<16} {:>5}  {:<9} {:>8}  detail\n",
            "sweep", "job", "status", "attempts"
        ));
        for fail in &failures {
            let mut detail = fail.error.payload.clone();
            if detail.len() > 60 {
                detail.truncate(57);
                detail.push_str("...");
            }
            out.push_str(&format!(
                "  {:<16} {:>5}  {:<9} {:>8}  {}\n",
                fail.label,
                fail.index,
                fail.error.kind.as_str(),
                fail.error.attempts,
                detail
            ));
        }
        Some(out)
    }

    /// `(total jobs, cache hits)` across every sweep so far.
    pub fn totals(&self) -> (usize, usize) {
        let stats = self.stats();
        (
            stats.iter().map(|s| s.jobs).sum(),
            stats.iter().map(|s| s.cache_hits).sum(),
        )
    }

    /// Total journal-confirmed resumed jobs across every sweep so far.
    pub fn resumed_total(&self) -> usize {
        self.stats().iter().map(|s| s.resumed).sum()
    }

    /// Appends one record to the journal (opening it on first use).
    fn journal_append(&self, rec: JournalRecord) {
        let mut cell = self
            .journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.ensure_journal(&mut cell);
        if let Some(journal) = cell.journal.as_mut() {
            journal.append(&rec);
        }
    }

    /// The prior run's completed keys (empty unless resuming with a
    /// cache directory).
    fn journal_prior_done(&self) -> BTreeSet<String> {
        let mut cell = self
            .journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.ensure_journal(&mut cell);
        cell.journal
            .as_ref()
            .map(|j| j.prior_done.clone())
            .unwrap_or_default()
    }

    fn ensure_journal(&self, cell: &mut JournalCell) {
        if cell.opened {
            return;
        }
        cell.opened = true;
        if let Some(dir) = &self.cache_dir {
            cell.journal = Journal::open(dir, self.resume);
        }
    }
}

/// The hex cache key for one `(label, version, item)` job, or `None`
/// when the item fails to serialize — that job simply runs uncached.
///
/// `version` is the experiment's cache version from its
/// [`crate::registry::ExperimentSpec`] (or [`CACHE_SCHEMA`] for sweeps
/// run outside the registry); hashing it here is what makes per-spec
/// invalidation possible without touching other experiments' keys.
fn key_hex<T: Serialize>(label: &str, version: u32, item: &T) -> Option<String> {
    let payload = serde_json::to_string_exact(item).ok()?;
    let mut h = crate::hash::Sha256::new();
    h.update(label.as_bytes());
    h.update(b"|");
    h.update(&version.to_le_bytes());
    h.update(b"|");
    h.update(env!("CARGO_PKG_VERSION").as_bytes());
    h.update(b"|");
    h.update(payload.as_bytes());
    let digest = h.finish();
    let mut name = String::with_capacity(64);
    for b in digest {
        use std::fmt::Write;
        let _ = write!(name, "{b:02x}"); // writing to a String cannot fail
    }
    Some(name)
}

/// Outcome of probing one cache entry.
enum CacheRead<R> {
    /// Decoded successfully.
    Hit(R),
    /// The file exists but is unreadable or undecodable — a torn write
    /// or bit rot. Healed by recomputing (and counted, unlike a miss).
    Corrupt,
    /// No entry.
    Miss,
}

/// Probes one cache entry, distinguishing "absent" from "present but
/// corrupt" so heals are visible in the sweep stats.
fn read_entry<R: Deserialize>(path: &Path) -> CacheRead<R> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheRead::Miss,
        Err(_) => return CacheRead::Corrupt,
    };
    match serde_json::from_str(&text) {
        Ok(value) => CacheRead::Hit(value),
        Err(_) => CacheRead::Corrupt,
    }
}

/// Writes one cache entry via a temp file + rename so concurrent
/// harnesses never observe a torn entry. Failures are silent: the cache
/// is an accelerator, never a correctness dependency.
fn write_entry<R: Serialize>(path: &Path, value: &R) {
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let Ok(text) = serde_json::to_string_exact(value) else {
        return;
    };
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::JobErrorKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("baldur-sweep-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quietly<R>(body: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = body();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn uncached_map_preserves_order() {
        let sw = Sweep::new(4);
        let out = sw.map("square", (0u64..50).collect(), |&x| x * x);
        assert_eq!(out, (0u64..50).map(|x| x * x).collect::<Vec<_>>());
        let stats = sw.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!((stats[0].jobs, stats[0].cache_hits), (50, 0));
        assert_eq!(
            (stats[0].corrupt, stats[0].resumed, stats[0].failed),
            (0, 0, 0)
        );
    }

    #[test]
    fn second_run_hits_cache_and_agrees() {
        let dir = temp_dir("hits");
        let calls = AtomicUsize::new(0);
        let job = |&x: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            (x, (x as f64).sqrt())
        };
        let sw = Sweep::new(2).with_cache_dir(&dir);
        let first = sw.map("roots", (0u64..20).collect(), job);
        assert_eq!(calls.load(Ordering::Relaxed), 20);

        let sw2 = Sweep::new(2).with_cache_dir(&dir);
        let second = sw2.map("roots", (0u64..20).collect(), job);
        assert_eq!(calls.load(Ordering::Relaxed), 20, "all jobs replayed");
        assert_eq!(first, second);
        let stats = sw2.stats();
        assert_eq!((stats[0].jobs, stats[0].cache_hits), (20, 20));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn label_separates_cache_namespaces() {
        let dir = temp_dir("labels");
        let sw = Sweep::new(1).with_cache_dir(&dir);
        let a = sw.map("double", vec![21u64], |&x| x * 2);
        let b = sw.map("triple", vec![21u64], |&x| x * 3);
        assert_eq!((a[0], b[0]), (42, 63));
        let (jobs, hits) = sw.totals();
        assert_eq!((jobs, hits), (2, 0), "same item, different label: no hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_bump_invalidates_only_its_own_label() {
        let dir = temp_dir("versions");
        let sw = Sweep::new(1).with_cache_dir(&dir);
        sw.map_versioned("fig_a", 1, vec![5u64], |&x| x + 1);
        sw.map_versioned("fig_b", 1, vec![5u64], |&x| x + 2);

        // fig_a bumps its spec version: its entry goes cold, fig_b's
        // entry (same item, untouched version) stays warm.
        let sw2 = Sweep::new(1).with_cache_dir(&dir);
        sw2.map_versioned("fig_a", 2, vec![5u64], |&x| x + 1);
        sw2.map_versioned("fig_b", 1, vec![5u64], |&x| x + 2);
        let stats = sw2.stats();
        assert_eq!(stats[0].cache_hits, 0, "bumped version must miss");
        assert_eq!(stats[1].cache_hits, 1, "other experiment stays warm");

        // Version 1 of fig_a is still addressable — old entries are
        // orphaned, not destroyed.
        let sw3 = Sweep::new(1).with_cache_dir(&dir);
        sw3.map_versioned("fig_a", 1, vec![5u64], |&x| x + 1);
        assert_eq!(sw3.stats()[0].cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_map_keys_match_versioned_at_schema_baseline() {
        let dir = temp_dir("baseline-keys");
        let sw = Sweep::new(1).with_cache_dir(&dir);
        sw.map("base", vec![9u64], |&x| x * 2);
        // map_versioned at CACHE_SCHEMA replays the plain-map entry:
        // the registry's default spec version preserves historical keys.
        let sw2 = Sweep::new(1).with_cache_dir(&dir);
        sw2.map_versioned("base", CACHE_SCHEMA, vec![9u64], |&x| x * 2);
        assert_eq!(sw2.stats()[0].cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_recompute_and_are_counted() {
        let dir = temp_dir("corrupt");
        let sw = Sweep::new(1).with_cache_dir(&dir);
        sw.map("c", vec![7u64], |&x| x + 1);
        for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
            let path = entry.expect("dir entry").path();
            std::fs::write(&path, "{ not json").expect("overwrite entry");
        }
        let sw2 = Sweep::new(1).with_cache_dir(&dir);
        let out = sw2.map("c", vec![7u64], |&x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(sw2.stats()[0].cache_hits, 0);
        assert_eq!(sw2.stats()[0].corrupt, 1, "the heal is surfaced");
        // The corrupt entry was healed: a third run hits, heal count 0.
        let sw3 = Sweep::new(1).with_cache_dir(&dir);
        sw3.map("c", vec![7u64], |&x| x + 1);
        assert_eq!(sw3.stats()[0].cache_hits, 1);
        assert_eq!(sw3.stats()[0].corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_results_round_trip_through_cache() {
        let dir = temp_dir("nonfinite");
        let job = |&x: &u32| match x {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => 0.1,
        };
        let sw = Sweep::new(1).with_cache_dir(&dir);
        sw.map("nf", (0u32..4).collect(), job);
        let sw2 = Sweep::new(1).with_cache_dir(&dir);
        let replayed = sw2.map("nf", (0u32..4).collect(), job);
        assert_eq!(sw2.stats()[0].cache_hits, 4);
        assert!(replayed[0].is_nan());
        assert_eq!(replayed[1], f64::INFINITY);
        assert_eq!(replayed[2], f64::NEG_INFINITY);
        assert_eq!(replayed[3].to_bits(), 0.1f64.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_mentions_totals() {
        let sw = Sweep::new(1);
        sw.map("alpha", vec![1u32, 2], |&x| x);
        sw.map("beta", vec![3u32], |&x| x);
        let s = sw.summary();
        assert!(s.contains("alpha"), "{s}");
        assert!(s.contains("beta"), "{s}");
        assert!(s.contains("total"), "{s}");
        assert!(s.contains("3 jobs"), "{s}");
        assert!(s.contains("corrupt"), "{s}");
    }

    #[test]
    fn panicking_job_yields_err_slot_and_siblings_complete() {
        let sw = Sweep::new(4);
        let slots = quietly(|| {
            sw.try_map("mix", (0u32..10).collect(), |&x| {
                if x == 6 {
                    panic!("job six is cursed");
                }
                x * 3
            })
        });
        assert_eq!(slots.len(), 10);
        for (i, slot) in slots.iter().enumerate() {
            if i == 6 {
                let err = slot.as_ref().expect_err("job 6 failed");
                assert_eq!(err.kind, JobErrorKind::Panicked);
                assert_eq!(err.payload, "job six is cursed");
            } else {
                assert_eq!(*slot, Ok(i as u32 * 3));
            }
        }
        assert!(!sw.aborted());
        assert_eq!(sw.stats()[0].failed, 1);
        let table = sw.status_table().expect("one failure to report");
        assert!(table.contains("panicked"), "{table}");
        assert!(table.contains("job six is cursed"), "{table}");
        // map() drops the failed slot but keeps order.
        let sw2 = Sweep::new(2);
        let kept = quietly(|| {
            sw2.map("mix", (0u32..10).collect(), |&x| {
                if x == 6 {
                    panic!("job six is cursed");
                }
                x * 3
            })
        });
        assert_eq!(kept, vec![0, 3, 6, 9, 12, 15, 21, 24, 27]);
    }

    #[test]
    fn failure_budget_aborts_the_sweep() {
        let sw = Sweep::new(1).with_policy(Policy {
            fail_budget: Some(1),
            ..Policy::default()
        });
        let slots = quietly(|| {
            sw.try_map("budget", (0u32..10).collect(), |&x| {
                if x == 1 || x == 3 {
                    panic!("bad {x}");
                }
                x
            })
        });
        assert!(sw.aborted());
        assert_eq!(
            slots[3].as_ref().expect_err("second failure").kind,
            JobErrorKind::Panicked
        );
        assert!(slots[4..]
            .iter()
            .all(|s| s.as_ref().is_err_and(|e| e.kind == JobErrorKind::Skipped)));
        let table = sw.status_table().expect("failures to report");
        assert!(table.contains("aborted"), "{table}");
    }

    #[test]
    fn journal_records_completions_and_resume_counts_them() {
        let dir = temp_dir("journal");
        let sw = Sweep::new(2).with_cache_dir(&dir);
        sw.map("j", (0u64..5).collect(), |&x| x * 2);
        let snap = read_journal(&dir.join(JOURNAL_FILE));
        assert_eq!(snap.records.len(), 5);
        assert_eq!(snap.torn_lines, 0);
        assert!(snap.records.iter().all(|r| r.status == "done"));
        assert!(snap.records.iter().all(|r| r.label == "j"));

        // Resume: all five hits are journal-confirmed.
        let sw2 = Sweep::new(2).with_cache_dir(&dir).with_resume(true);
        sw2.map("j", (0u64..5).collect(), |&x| x * 2);
        let stats = sw2.stats();
        assert_eq!(stats[0].cache_hits, 5);
        assert_eq!(stats[0].resumed, 5);
        assert_eq!(sw2.resumed_total(), 5);

        // A fresh (non-resume) run truncates the journal: hits still
        // come from the cache, but nothing is journal-confirmed.
        let sw3 = Sweep::new(2).with_cache_dir(&dir);
        sw3.map("j", (0u64..5).collect(), |&x| x * 2);
        assert_eq!(sw3.stats()[0].resumed, 0);
        assert_eq!(read_journal(&dir.join(JOURNAL_FILE)).records.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_discarded_not_fatal() {
        let dir = temp_dir("torn");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(JOURNAL_FILE);
        let whole = serde_json::to_string_exact(&JournalRecord {
            key: "aa".to_string(),
            label: "t".to_string(),
            status: "done".to_string(),
            wall_ms: 3,
        })
        .expect("serialize record");
        // Two whole records, then a half-written line with no newline —
        // exactly what dying mid-append leaves behind.
        let torn = format!("{whole}\n{whole}\n{{\"key\":\"bb\",\"lab");
        std::fs::write(&path, torn).expect("write torn journal");
        let snap = read_journal(&path);
        assert_eq!(snap.records.len(), 2);
        assert_eq!(snap.torn_lines, 1);

        // And a resuming sweep over that journal still works.
        let sw = Sweep::new(1).with_cache_dir(&dir).with_resume(true);
        let out = sw.map("t", vec![1u64], |&x| x + 1);
        assert_eq!(out, vec![2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_are_journaled_with_their_kind() {
        let dir = temp_dir("failrec");
        let sw = Sweep::new(1).with_cache_dir(&dir);
        quietly(|| {
            sw.try_map("f", (0u64..3).collect(), |&x| {
                if x == 1 {
                    panic!("no");
                }
                x
            })
        });
        let snap = read_journal(&dir.join(JOURNAL_FILE));
        let mut statuses: Vec<&str> = snap.records.iter().map(|r| r.status.as_str()).collect();
        statuses.sort_unstable();
        assert_eq!(statuses, vec!["done", "done", "panicked"]);
        // A resume run must NOT treat the panicked job as complete.
        let sw2 = Sweep::new(1).with_cache_dir(&dir).with_resume(true);
        let out = sw2.map("f", (0u64..3).collect(), |&x| x); // healed job fn
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(sw2.stats()[0].resumed, 2, "only the two 'done' records");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Sweep orchestration: deterministic parallel fan-out plus a
//! content-addressed run cache.
//!
//! Every experiment in [`crate::experiments`] is a sweep — a list of fully
//! self-describing jobs (each item serializes to JSON and determines its
//! result completely) mapped through a pure function. That structure buys
//! two things at once:
//!
//! * **Parallelism without divergence.** Jobs fan out over
//!   [`baldur_sim::par::par_map`], which returns results in submission
//!   order, so rendered CSV/JSON is byte-identical at any thread count
//!   (`BALDUR_THREADS=1` and `=8` produce the same bytes; a tier-1 test
//!   asserts it).
//! * **Content-addressed caching.** Each job's cache key is the SHA-256 of
//!   `label | schema | crate version | exact-JSON(item)`. A hit replays
//!   the stored result instead of simulating; because results are stored
//!   with [`serde_json::to_string_exact`] (non-finite floats round-trip)
//!   and floats render shortest-round-trip, a replayed result is
//!   bit-identical to a fresh one. Corrupt or unreadable entries are
//!   silently recomputed and overwritten.
//!
//! The cache lives under `results/cache/` by default (one `<hex>.json`
//! per job) and is enabled by the bench binaries, not by unit tests: the
//! experiment wrappers in [`crate::experiments`] default to an uncached
//! [`Sweep`] so `cargo test` never touches the filesystem.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::sim::par;

/// Bump when the meaning of cached payloads changes (e.g. a report field
/// is added): every key changes, so stale entries are never replayed.
const CACHE_SCHEMA: u32 = 1;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Per-sweep accounting: one entry per [`Sweep::map`] call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// The sweep label (also part of every job's cache key).
    pub label: String,
    /// Jobs in the sweep.
    pub jobs: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Wall-clock time for the whole sweep, milliseconds.
    pub wall_ms: u64,
}

/// A parallel sweep runner with optional result caching.
///
/// Construct once per harness invocation and thread through the
/// `*_on` experiment variants; [`Sweep::summary`] renders the collected
/// per-sweep wall-clock and cache-hit counters.
#[derive(Debug)]
pub struct Sweep {
    threads: usize,
    cache_dir: Option<PathBuf>,
    stats: Mutex<Vec<SweepStats>>,
}

impl Sweep {
    /// An uncached sweep runner. `threads == 0` resolves through
    /// `BALDUR_THREADS`, then the machine's parallelism.
    pub fn new(threads: usize) -> Self {
        Sweep {
            threads: par::thread_count(threads),
            cache_dir: None,
            stats: Mutex::new(Vec::new()),
        }
    }

    /// A sweep runner caching into [`DEFAULT_CACHE_DIR`].
    pub fn cached(threads: usize) -> Self {
        Sweep::new(threads).with_cache_dir(DEFAULT_CACHE_DIR)
    }

    /// Redirects (and enables) the cache at `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disables the cache (jobs always recompute).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, preserving order, replaying
    /// cached results where available.
    ///
    /// Each item must be *self-describing*: its serialized form (plus
    /// `label`) is the cache key, so everything that influences `f`'s
    /// result must be part of the item — which is why the experiment
    /// sweeps carry their full `RunConfig` in the item tuples.
    pub fn map<T, R, F>(&self, label: &str, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Serialize + Send + Sync,
        R: Serialize + Deserialize + Send,
        F: Fn(&T) -> R + Sync,
    {
        let start = Instant::now();
        let n = items.len();
        let keys: Vec<Option<PathBuf>> = match &self.cache_dir {
            Some(dir) => items.iter().map(|it| key_path(dir, label, it)).collect(),
            None => vec![None; n],
        };

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let cached = key.as_deref().and_then(read_entry::<R>);
            if cached.is_none() {
                miss_idx.push(i);
            }
            results.push(cached);
        }
        let cache_hits = n - miss_idx.len();

        let computed = par::par_map(self.threads, miss_idx.clone(), |&i| f(&items[i]));
        for (i, r) in miss_idx.into_iter().zip(computed) {
            if let Some(path) = &keys[i] {
                write_entry(path, &r);
            }
            results[i] = Some(r);
        }

        let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(SweepStats {
                label: label.to_string(),
                jobs: n,
                cache_hits,
                wall_ms,
            });

        results
            .into_iter()
            .map(|r| match r {
                Some(v) => v,
                None => unreachable!("every sweep job is either a hit or recomputed"),
            })
            .collect()
    }

    /// The per-sweep counters collected so far, in execution order.
    pub fn stats(&self) -> Vec<SweepStats> {
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Renders the collected counters as an aligned console block, e.g.
    ///
    /// ```text
    /// sweep summary (threads=8, cache=results/cache)
    ///   fig6            48 jobs    48 hits       213 ms
    ///   total           48 jobs    48 hits (100.0%)   213 ms
    /// ```
    pub fn summary(&self) -> String {
        let stats = self.stats();
        let cache_note = match &self.cache_dir {
            Some(dir) => format!("cache={}", dir.display()),
            None => "cache=off".to_string(),
        };
        let mut out = format!("sweep summary (threads={}, {cache_note})\n", self.threads);
        let (mut jobs, mut hits, mut ms) = (0usize, 0usize, 0u64);
        for s in &stats {
            out.push_str(&format!(
                "  {:<18} {:>5} jobs {:>5} hits {:>8} ms\n",
                s.label, s.jobs, s.cache_hits, s.wall_ms
            ));
            jobs += s.jobs;
            hits += s.cache_hits;
            ms += s.wall_ms;
        }
        let pct = if jobs == 0 {
            0.0
        } else {
            100.0 * hits as f64 / jobs as f64
        };
        out.push_str(&format!(
            "  {:<18} {jobs:>5} jobs {hits:>5} hits ({pct:.1}%) {ms:>4} ms\n",
            "total"
        ));
        out
    }

    /// `(total jobs, cache hits)` across every sweep so far.
    pub fn totals(&self) -> (usize, usize) {
        let stats = self.stats();
        (
            stats.iter().map(|s| s.jobs).sum(),
            stats.iter().map(|s| s.cache_hits).sum(),
        )
    }
}

/// The cache file for one `(label, item)` job, or `None` when the item
/// fails to serialize — that job simply runs uncached.
fn key_path<T: Serialize>(dir: &Path, label: &str, item: &T) -> Option<PathBuf> {
    let payload = serde_json::to_string_exact(item).ok()?;
    let mut h = crate::hash::Sha256::new();
    h.update(label.as_bytes());
    h.update(b"|");
    h.update(&CACHE_SCHEMA.to_le_bytes());
    h.update(b"|");
    h.update(env!("CARGO_PKG_VERSION").as_bytes());
    h.update(b"|");
    h.update(payload.as_bytes());
    let digest = h.finish();
    let mut name = String::with_capacity(69);
    for b in digest {
        use std::fmt::Write;
        let _ = write!(name, "{b:02x}"); // writing to a String cannot fail
    }
    name.push_str(".json");
    Some(dir.join(name))
}

/// Reads and decodes one cache entry; any failure (missing file, torn
/// write, schema drift that survived the key) is just a miss.
fn read_entry<R: Deserialize>(path: &Path) -> Option<R> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Writes one cache entry via a temp file + rename so concurrent
/// harnesses never observe a torn entry. Failures are silent: the cache
/// is an accelerator, never a correctness dependency.
fn write_entry<R: Serialize>(path: &Path, value: &R) {
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let Ok(text) = serde_json::to_string_exact(value) else {
        return;
    };
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("baldur-sweep-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn uncached_map_preserves_order() {
        let sw = Sweep::new(4);
        let out = sw.map("square", (0u64..50).collect(), |&x| x * x);
        assert_eq!(out, (0u64..50).map(|x| x * x).collect::<Vec<_>>());
        let stats = sw.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!((stats[0].jobs, stats[0].cache_hits), (50, 0));
    }

    #[test]
    fn second_run_hits_cache_and_agrees() {
        let dir = temp_dir("hits");
        let calls = AtomicUsize::new(0);
        let job = |&x: &u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            (x, (x as f64).sqrt())
        };
        let sw = Sweep::new(2).with_cache_dir(&dir);
        let first = sw.map("roots", (0u64..20).collect(), job);
        assert_eq!(calls.load(Ordering::Relaxed), 20);

        let sw2 = Sweep::new(2).with_cache_dir(&dir);
        let second = sw2.map("roots", (0u64..20).collect(), job);
        assert_eq!(calls.load(Ordering::Relaxed), 20, "all jobs replayed");
        assert_eq!(first, second);
        let stats = sw2.stats();
        assert_eq!((stats[0].jobs, stats[0].cache_hits), (20, 20));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn label_separates_cache_namespaces() {
        let dir = temp_dir("labels");
        let sw = Sweep::new(1).with_cache_dir(&dir);
        let a = sw.map("double", vec![21u64], |&x| x * 2);
        let b = sw.map("triple", vec![21u64], |&x| x * 3);
        assert_eq!((a[0], b[0]), (42, 63));
        let (jobs, hits) = sw.totals();
        assert_eq!((jobs, hits), (2, 0), "same item, different label: no hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_recompute() {
        let dir = temp_dir("corrupt");
        let sw = Sweep::new(1).with_cache_dir(&dir);
        sw.map("c", vec![7u64], |&x| x + 1);
        for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
            let path = entry.expect("dir entry").path();
            std::fs::write(&path, "{ not json").expect("overwrite entry");
        }
        let sw2 = Sweep::new(1).with_cache_dir(&dir);
        let out = sw2.map("c", vec![7u64], |&x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(sw2.stats()[0].cache_hits, 0);
        // The corrupt entry was healed: a third run hits.
        let sw3 = Sweep::new(1).with_cache_dir(&dir);
        sw3.map("c", vec![7u64], |&x| x + 1);
        assert_eq!(sw3.stats()[0].cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_results_round_trip_through_cache() {
        let dir = temp_dir("nonfinite");
        let job = |&x: &u32| match x {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => 0.1,
        };
        let sw = Sweep::new(1).with_cache_dir(&dir);
        sw.map("nf", (0u32..4).collect(), job);
        let sw2 = Sweep::new(1).with_cache_dir(&dir);
        let replayed = sw2.map("nf", (0u32..4).collect(), job);
        assert_eq!(sw2.stats()[0].cache_hits, 4);
        assert!(replayed[0].is_nan());
        assert_eq!(replayed[1], f64::INFINITY);
        assert_eq!(replayed[2], f64::NEG_INFINITY);
        assert_eq!(replayed[3].to_bits(), 0.1f64.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_mentions_totals() {
        let sw = Sweep::new(1);
        sw.map("alpha", vec![1u32, 2], |&x| x);
        sw.map("beta", vec![3u32], |&x| x);
        let s = sw.summary();
        assert!(s.contains("alpha"), "{s}");
        assert!(s.contains("beta"), "{s}");
        assert!(s.contains("total"), "{s}");
        assert!(s.contains("3 jobs"), "{s}");
    }
}

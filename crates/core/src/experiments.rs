//! One function per table/figure of the paper's evaluation.
//!
//! Every harness binary in `baldur-bench`, every example, and the
//! integration tests call these; the default parameters are sized to run
//! in seconds-to-minutes — pass larger [`EvalConfig`] values to approach
//! the paper's full 1,024-node × 10,000-packet setup.

use serde::{Deserialize, Serialize};

use crate::error::{all_ok, BaldurError};
use crate::net::config::BaldurParams;
use crate::net::droptool;
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::net::workloads::{HpcApp, TraceParams};
use crate::power::networks::NetworkPower;
use crate::power::scaling::{paper_scales, scaling_sweep, ScalePoint};
use crate::power::sensitivity::Scenario;
use crate::sim::stats::geometric_mean;
use crate::sweep::Sweep;
use crate::tl::gate_count::{SwitchDesign, TABLE_V_DROP_PCT};
use crate::tl::reliability::JitterModel;

/// Shared sizing knobs for the simulation-backed experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Active server nodes (paper: 1,024).
    pub nodes: u32,
    /// Packets injected per node for open-loop runs (paper: 10,000).
    pub packets_per_node: u32,
    /// Rounds per pair for ping-pong runs.
    pub pingpong_rounds: u32,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for sweeps (0 = all cores).
    pub threads: usize,
}

impl EvalConfig {
    /// A configuration that completes the full figure set in minutes.
    pub fn quick() -> Self {
        EvalConfig {
            nodes: 256,
            packets_per_node: 300,
            pingpong_rounds: 50,
            seed: 0xBA1D,
            threads: 0,
        }
    }

    /// A small configuration for tests (seconds).
    pub fn tiny() -> Self {
        EvalConfig {
            nodes: 64,
            packets_per_node: 60,
            pingpong_rounds: 10,
            seed: 0xBA1D,
            threads: 0,
        }
    }

    /// The paper's full scale (expect long runtimes).
    pub fn paper() -> Self {
        EvalConfig {
            nodes: 1_024,
            packets_per_node: 10_000,
            pingpong_rounds: 1_000,
            seed: 0xBA1D,
            threads: 0,
        }
    }

    /// A one-shot uncached [`Sweep`] honoring `self.threads` (0 resolves
    /// through `BALDUR_THREADS`, then the machine's parallelism) — what
    /// the plain experiment wrappers fan out on.
    pub fn sweep(&self) -> Sweep {
        Sweep::new(self.threads)
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::quick()
    }
}

/// Maps `f` over `items` on a thread pool, preserving order.
///
/// Retained as a thin shim over [`baldur_sim::par::par_map`] (the
/// work-stealing pool) for callers that don't need sweep accounting or
/// caching; the experiment functions themselves go through [`Sweep`].
pub fn parallel_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    crate::sim::par::par_map(workers, items, f)
}

// ---------------------------------------------------------------- Table V

/// One row of Table V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableVRow {
    /// Path multiplicity.
    pub multiplicity: u32,
    /// TL gates per switch (paper netlist values).
    pub gates: u32,
    /// Switch latency, ns.
    pub latency_ns: f64,
    /// Paper's drop rate (%) — transpose, 0.7 load, 1,024 nodes.
    pub paper_drop_pct: f64,
    /// Our simulator's drop rate (%) at the configured scale.
    pub measured_drop_pct: f64,
}

/// Regenerates Table V: design cost and drop rate versus multiplicity.
pub fn table_v(cfg: &EvalConfig) -> Vec<TableVRow> {
    table_v_on(&cfg.sweep(), cfg)
}

/// [`table_v`] on a caller-provided [`Sweep`] (shared thread pool, run
/// cache, per-sweep counters).
pub fn table_v_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<TableVRow> {
    let items: Vec<(u32, RunConfig)> = (1..=5)
        .map(|m| {
            let design = SwitchDesign::new(m);
            let mut params = BaldurParams::paper_for(u64::from(cfg.nodes));
            params.multiplicity = m;
            params.switch_latency_ps = (design.latency_ns() * 1e3) as u64;
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern: Pattern::Transpose,
                        load: 0.7,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            (m, rc)
        })
        .collect();
    sw.map("table_v", items, |(m, rc)| {
        let design = SwitchDesign::new(*m);
        let r = run(rc);
        TableVRow {
            multiplicity: *m,
            gates: design.gates(),
            latency_ns: design.latency_ns(),
            paper_drop_pct: TABLE_V_DROP_PCT[(*m - 1) as usize],
            measured_drop_pct: r.drop_rate * 100.0,
        }
    })
}

// ------------------------------------------------------------- Figures 6/7

/// One measured cell of Figure 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Traffic pattern name.
    pub pattern: String,
    /// Network name.
    pub network: String,
    /// Offered input load.
    pub load: f64,
    /// The measured report.
    pub report: LatencyReport,
}

/// The Figure 6 load sweep: average + tail latency for four patterns on
/// all five networks.
pub fn figure6(cfg: &EvalConfig, loads: &[f64]) -> Vec<Fig6Row> {
    figure6_on(&cfg.sweep(), cfg, loads)
}

/// [`figure6`] on a caller-provided [`Sweep`].
pub fn figure6_on(sw: &Sweep, cfg: &EvalConfig, loads: &[f64]) -> Vec<Fig6Row> {
    let patterns = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
        Pattern::GroupPermutation,
    ];
    let mut items: Vec<(String, String, f64, RunConfig)> = Vec::new();
    for &pattern in &patterns {
        for (name, net) in NetworkKind::paper_lineup(cfg.nodes) {
            for &load in loads {
                let rc = RunConfig {
                    seed: cfg.seed,
                    ..RunConfig::new(
                        cfg.nodes,
                        net.clone(),
                        Workload::Synthetic {
                            pattern,
                            load,
                            packets_per_node: cfg.packets_per_node,
                        },
                    )
                };
                items.push((pattern.name().to_string(), name.clone(), load, rc));
            }
        }
    }
    sw.map("fig6", items, |(pattern, name, load, rc)| Fig6Row {
        pattern: pattern.clone(),
        network: name.clone(),
        load: *load,
        report: run(rc),
    })
}

/// One measured cell of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Workload name (hotspot / ping_pong1 / ping_pong2 / AMG / CR / FB / MG).
    pub workload: String,
    /// Network name.
    pub network: String,
    /// The measured report.
    pub report: LatencyReport,
}

/// The Figure 7 workload set: hotspot, both ping-pongs, and the four HPC
/// traces, on all five networks.
pub fn figure7(cfg: &EvalConfig) -> Vec<Fig7Row> {
    figure7_on(&cfg.sweep(), cfg)
}

/// [`figure7`] on a caller-provided [`Sweep`].
pub fn figure7_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<Fig7Row> {
    let mut workloads: Vec<(String, Workload)> = vec![
        (
            "hotspot".into(),
            Workload::Synthetic {
                pattern: Pattern::Hotspot,
                load: 0.7,
                packets_per_node: cfg.packets_per_node.min(200),
            },
        ),
        (
            "ping_pong1".into(),
            Workload::PingPong1 {
                rounds: cfg.pingpong_rounds,
            },
        ),
        (
            "ping_pong2".into(),
            Workload::PingPong2 {
                rounds: cfg.pingpong_rounds,
            },
        ),
    ];
    for app in HpcApp::ALL {
        workloads.push((
            app.name().into(),
            Workload::Hpc {
                app,
                params: TraceParams::default_scale(),
            },
        ));
    }
    let mut items: Vec<(String, String, RunConfig)> = Vec::new();
    for (wname, wl) in &workloads {
        for (nname, net) in NetworkKind::paper_lineup(cfg.nodes) {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(cfg.nodes, net, *wl)
            };
            items.push((wname.clone(), nname, rc));
        }
    }
    sw.map("fig7", items, |(wname, nname, rc)| Fig7Row {
        workload: wname.clone(),
        network: nname.clone(),
        report: run(rc),
    })
}

/// Normalizes Figure 7 rows to Baldur per workload and returns
/// `(workload, network, normalized_avg, normalized_p99)` tuples.
///
/// A workload whose Baldur baseline row is missing (its job failed and
/// was dropped by the sweep) has no denominator, so its rows are skipped
/// rather than panicking — partial sweeps render partial tables.
pub fn normalize_fig7(rows: &[Fig7Row]) -> Vec<(String, String, f64, f64)> {
    let mut out = Vec::new();
    for row in rows {
        let Some(baldur) = rows
            .iter()
            .find(|r| r.workload == row.workload && r.network == "baldur")
        else {
            continue;
        };
        out.push((
            row.workload.clone(),
            row.network.clone(),
            row.report.avg_ns / baldur.report.avg_ns,
            row.report.p99_ns / baldur.report.p99_ns,
        ));
    }
    out
}

/// Geometric-mean normalized latency per network across workloads
/// (`(network, geomean_avg, geomean_p99)`), as quoted in Sec. V-B.
pub fn fig7_geomeans(rows: &[Fig7Row]) -> Vec<(String, f64, f64)> {
    let normalized = normalize_fig7(rows);
    let mut networks: Vec<String> = normalized.iter().map(|r| r.1.clone()).collect();
    networks.sort();
    networks.dedup();
    networks
        .into_iter()
        .map(|net| {
            let avg: Vec<f64> = normalized
                .iter()
                .filter(|r| r.1 == net)
                .map(|r| r.2)
                .collect();
            let p99: Vec<f64> = normalized
                .iter()
                .filter(|r| r.1 == net)
                .map(|r| r.3)
                .collect();
            (net, geometric_mean(&avg), geometric_mean(&p99))
        })
        .collect()
}

// ----------------------------------------------------------- Figures 8-10

/// The Figure 8 power sweep at the paper's four scales.
pub fn figure8() -> Vec<ScalePoint> {
    scaling_sweep(&paper_scales())
}

/// [`figure8`] on a caller-provided [`Sweep`] — one cached job per scale.
pub fn figure8_on(sw: &Sweep) -> Vec<ScalePoint> {
    sw.map("fig8", paper_scales(), |point| {
        match scaling_sweep(std::slice::from_ref(point)).pop() {
            Some(row) => row,
            None => unreachable!("scaling_sweep returns one point per scale"),
        }
    })
}

/// One Figure 9 scenario row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Scenario name.
    pub scenario: String,
    /// `(network, per-node W, Baldur improvement factor)`.
    pub entries: Vec<(String, f64, f64)>,
}

/// The Figure 9 sensitivity analysis at the 1M-1.4M scale.
pub fn figure9() -> Vec<Fig9Row> {
    let scale = 1_048_576;
    let items: Vec<(String, u64)> = ["baseline", "pessimistic", "optimistic"]
        .into_iter()
        .map(|name| (name.to_string(), scale))
        .collect();
    items.iter().map(fig9_row).collect()
}

/// [`figure9`] on a caller-provided [`Sweep`] — one cached job per
/// scenario.
pub fn figure9_on(sw: &Sweep) -> Vec<Fig9Row> {
    let scale = 1_048_576;
    let items: Vec<(String, u64)> = ["baseline", "pessimistic", "optimistic"]
        .into_iter()
        .map(|name| (name.to_string(), scale))
        .collect();
    sw.map("fig9", items, fig9_row)
}

fn fig9_row(item: &(String, u64)) -> Fig9Row {
    let (name, scale) = item;
    let s = match name.as_str() {
        "pessimistic" => Scenario::PESSIMISTIC,
        "optimistic" => Scenario::OPTIMISTIC,
        _ => Scenario::BASELINE,
    };
    Fig9Row {
        scenario: name.clone(),
        entries: NetworkPower::ALL
            .iter()
            .map(|&n| {
                (
                    n.name().to_string(),
                    s.per_node_w(n, *scale),
                    s.improvement(n, *scale),
                )
            })
            .collect(),
    }
}

/// One Figure 10 cost row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Scale label.
    pub label: String,
    /// Nodes instantiated.
    pub nodes: u64,
    /// Cost breakdown, USD/node.
    pub breakdown: crate::cost::CostBreakdown,
}

/// The Figure 10 cost sweep.
pub fn figure10() -> Vec<Fig10Row> {
    paper_scales().iter().map(fig10_row).collect()
}

/// [`figure10`] on a caller-provided [`Sweep`] — one cached job per
/// scale.
pub fn figure10_on(sw: &Sweep) -> Vec<Fig10Row> {
    sw.map("fig10", paper_scales(), fig10_row)
}

fn fig10_row(item: &(u64, String)) -> Fig10Row {
    let (requested, label) = item;
    Fig10Row {
        label: label.clone(),
        nodes: requested.next_power_of_two(),
        breakdown: crate::cost::cost_per_node(*requested),
    }
}

// ------------------------------------------------- Sec. IV-E / IV-F / VII

/// One drop-tool row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DropRow {
    /// Network scale.
    pub nodes: u32,
    /// Pattern name.
    pub pattern: String,
    /// Multiplicity.
    pub multiplicity: u32,
    /// Worst-case simultaneous-burst drop rate.
    pub drop_rate: f64,
}

/// The Sec. IV-E "in-house tool" study: worst-case drop rate versus
/// multiplicity and scale, plus the required multiplicity per scale.
pub fn droptool_study(scales: &[u32], seed: u64) -> (Vec<DropRow>, Vec<(u32, u32)>) {
    droptool_study_on(&Sweep::new(0), scales, seed)
}

/// [`droptool_study`] on a caller-provided [`Sweep`].
pub fn droptool_study_on(sw: &Sweep, scales: &[u32], seed: u64) -> (Vec<DropRow>, Vec<(u32, u32)>) {
    let patterns = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
    ];
    let mut items: Vec<(u32, Pattern, u32, u64)> = Vec::new();
    for &nodes in scales {
        for &pattern in &patterns {
            for m in 1..=5 {
                items.push((nodes, pattern, m, seed));
            }
        }
    }
    let rows = sw.map("droptool", items, |(nodes, pattern, m, seed)| {
        let r = droptool::worst_case(*nodes, *m, *pattern, *seed);
        DropRow {
            nodes: *nodes,
            pattern: pattern.name().into(),
            multiplicity: *m,
            drop_rate: r.drop_rate,
        }
    });
    let req_items: Vec<(u32, u64)> = scales.iter().map(|&n| (n, seed)).collect();
    let required = sw.map("droptool_req", req_items, |(n, seed)| {
        (
            *n,
            droptool::required_multiplicity(*n, &patterns, 0.01, 3, *seed),
        )
    });
    (rows, required)
}

/// The Sec. IV-F reliability summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Jitter sigma, ps.
    pub sigma_ps: f64,
    /// Margin, ps (0.42T).
    pub margin_ps: f64,
    /// Margin in sigmas.
    pub margin_sigmas: f64,
    /// Analytic per-transition error probability.
    pub analytic_error_probability: f64,
    /// Monte Carlo check points: `(threshold_sigmas, mc, analytic)`.
    pub monte_carlo: Vec<(f64, f64, f64)>,
}

/// Regenerates the Sec. IV-F reliability analysis. Errs when any Monte
/// Carlo job fails: a partial threshold table would silently misstate
/// the tail comparison.
pub fn reliability(samples: u64, seed: u64) -> Result<ReliabilityReport, BaldurError> {
    reliability_on(&Sweep::new(0), samples, seed)
}

/// [`reliability`] on a caller-provided [`Sweep`] — the Monte Carlo
/// threshold points fan out (and cache) independently.
pub fn reliability_on(
    sw: &Sweep,
    samples: u64,
    seed: u64,
) -> Result<ReliabilityReport, BaldurError> {
    let m = JitterModel::paper();
    let items: Vec<(f64, u64, u64)> = [1.0, 2.0, 3.0, 3.5]
        .into_iter()
        .map(|thr| (thr, samples, seed))
        .collect();
    let monte_carlo = all_ok(
        "reliability",
        sw.try_map("reliability", items, |(thr, samples, seed)| {
            let m = JitterModel::paper();
            (
                *thr,
                m.monte_carlo_exceedance(*thr, *samples, *seed),
                crate::tl::reliability::normal_tail(*thr),
            )
        }),
    )?;
    Ok(ReliabilityReport {
        sigma_ps: m.sigma_ps(),
        margin_ps: m.margin_ps(),
        margin_sigmas: m.margin_sigmas(),
        analytic_error_probability: m.error_probability(),
        monte_carlo,
    })
}

/// The Sec. VII AWGR comparison at 32 nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AwgrComparison {
    /// Baldur W/node (TL chips only).
    pub baldur_w: f64,
    /// AWGR W/node (receivers, SerDes, buffers, wavelength converters).
    pub awgr_w: f64,
    /// Baldur per-hop latency, ns.
    pub baldur_latency_ns: f64,
    /// AWGR header-processing latency, ns.
    pub awgr_latency_ns: f64,
}

/// Regenerates the AWGR comparison.
pub fn awgr_comparison() -> AwgrComparison {
    let model = crate::power::awgr::AwgrModel::paper();
    AwgrComparison {
        baldur_w: crate::power::awgr::baldur_32node_tl_only_w(),
        awgr_w: model.per_node_w(),
        baldur_latency_ns: crate::power::awgr::baldur_32node_latency_ns(),
        awgr_latency_ns: model.header_latency_ns(),
    }
}

/// The Sec. IV-E retransmission-buffer sizing study: the high-water
/// buffer occupancy across the synthetic patterns at 0.7 load.
pub fn buffer_sizing(cfg: &EvalConfig) -> Vec<(String, u64)> {
    buffer_sizing_on(&cfg.sweep(), cfg)
}

/// [`buffer_sizing`] on a caller-provided [`Sweep`].
pub fn buffer_sizing_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<(String, u64)> {
    let patterns = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
        Pattern::GroupPermutation,
        Pattern::Hotspot,
    ];
    let items: Vec<(String, RunConfig)> = patterns
        .into_iter()
        .map(|pattern| {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(BaldurParams::paper_for(u64::from(cfg.nodes))),
                    Workload::Synthetic {
                        pattern,
                        load: 0.7,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            (pattern.name().to_string(), rc)
        })
        .collect();
    sw.map("buffer_sizing", items, |(name, rc)| {
        let r = run(rc);
        (name.clone(), r.max_retx_buffer_bytes)
    })
}

// ------------------------------------------------- Topology isomorphism

/// One row of the staged-topology comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyRow {
    /// Topology name.
    pub topology: String,
    /// Pattern name.
    pub pattern: String,
    /// The measured report.
    pub report: LatencyReport,
}

/// Compares Baldur running on its randomized multi-butterfly against the
/// structured Omega (and the dilated butterfly), testing the paper's
/// claim that multi-stage topologies behave similarly — and showing where
/// randomization matters (structured adversarial permutations).
pub fn topology_comparison(cfg: &EvalConfig) -> Vec<TopologyRow> {
    topology_comparison_on(&cfg.sweep(), cfg)
}

/// [`topology_comparison`] on a caller-provided [`Sweep`].
pub fn topology_comparison_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<TopologyRow> {
    use crate::net::config::StagedTopology;
    use crate::topo::multibutterfly::Wiring;
    let variants: [(&str, StagedTopology, Wiring); 3] = [
        (
            "multibutterfly",
            StagedTopology::MultiButterfly,
            Wiring::Randomized,
        ),
        (
            "dilated_butterfly",
            StagedTopology::MultiButterfly,
            Wiring::Dilated,
        ),
        ("omega", StagedTopology::Omega, Wiring::Randomized),
    ];
    let patterns = [Pattern::UniformRandom, Pattern::Transpose];
    let mut items: Vec<(String, String, RunConfig)> = Vec::new();
    for &(name, topo, wiring) in &variants {
        for &pattern in &patterns {
            let params = BaldurParams {
                topology: topo,
                wiring,
                ..BaldurParams::paper_for(u64::from(cfg.nodes))
            };
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern,
                        load: 0.6,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            items.push((name.to_string(), pattern.name().to_string(), rc));
        }
    }
    sw.map("topologies", items, |(name, pattern, rc)| TopologyRow {
        topology: name.clone(),
        pattern: pattern.clone(),
        report: run(rc),
    })
}

// ----------------------------------------------------------- Saturation

/// One cell of the offered-vs-accepted saturation analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationRow {
    /// Network name.
    pub network: String,
    /// Offered input load.
    pub offered: f64,
    /// Accepted load (delivered bandwidth / link rate).
    pub accepted: f64,
    /// Average latency at this point, ns.
    pub avg_ns: f64,
}

/// Sweeps offered load under uniform-random traffic and reports the
/// accepted throughput of every network — the classical saturation curve
/// backing Figure 6's "saturates at higher input loads" observation.
pub fn saturation(cfg: &EvalConfig, loads: &[f64]) -> Vec<SaturationRow> {
    saturation_on(&cfg.sweep(), cfg, loads)
}

/// [`saturation`] on a caller-provided [`Sweep`].
pub fn saturation_on(sw: &Sweep, cfg: &EvalConfig, loads: &[f64]) -> Vec<SaturationRow> {
    let mut items: Vec<(String, f64, RunConfig)> = Vec::new();
    for (name, net) in NetworkKind::paper_lineup(cfg.nodes) {
        for &load in loads {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    net.clone(),
                    Workload::Synthetic {
                        pattern: Pattern::UniformRandom,
                        load,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            items.push((name.clone(), load, rc));
        }
    }
    let link = crate::net::config::LinkParams::paper();
    sw.map("saturation", items, |(name, load, rc)| {
        let r = run(rc);
        SaturationRow {
            network: name.clone(),
            offered: *load,
            accepted: r.accepted_load(rc.nodes, link.packet_time().as_ps()),
            avg_ns: r.avg_ns,
        }
    })
}

// ------------------------------------------------- Fault degradation

/// One cell of the fault-degradation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationRow {
    /// Network name.
    pub network: String,
    /// Fraction of switching elements failed at t = 0.
    pub fraction: f64,
    /// The measured report (per-epoch breakdowns included when the plan
    /// has events after t = 0).
    pub report: LatencyReport,
}

/// Sweeps the failed-element fraction across Baldur and the electrical
/// baselines (the ideal network has no components to fail) under
/// uniform-random traffic. Kill sets nest — a higher fraction fails a
/// strict superset of a lower one — so goodput degrades monotonically in
/// the fraction by construction, not by luck of the draw.
pub fn degradation(cfg: &EvalConfig, fractions: &[f64]) -> Vec<DegradationRow> {
    degradation_on(&cfg.sweep(), cfg, fractions)
}

/// [`degradation`] on a caller-provided [`Sweep`].
pub fn degradation_on(sw: &Sweep, cfg: &EvalConfig, fractions: &[f64]) -> Vec<DegradationRow> {
    use crate::net::faults::FaultPlan;
    let mut items: Vec<(String, f64, RunConfig)> = Vec::new();
    for (name, net) in NetworkKind::paper_lineup(cfg.nodes) {
        if matches!(net, NetworkKind::Ideal) {
            continue;
        }
        for &fraction in fractions {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    net.clone(),
                    Workload::Synthetic {
                        pattern: Pattern::UniformRandom,
                        load: 0.5,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            }
            .with_faults(FaultPlan::degradation(cfg.seed, fraction));
            items.push((name.clone(), fraction, rc));
        }
    }
    sw.map("faults", items, |(name, fraction, rc)| DegradationRow {
        network: name.clone(),
        fraction: *fraction,
        report: run(rc),
    })
}

// ------------------------------------------------------------ Ablations

/// The wiring ablation: randomized (expansion) versus dilated-butterfly
/// (structured) inter-stage connections, under an adversarial pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WiringAblation {
    /// Pattern used.
    pub pattern: String,
    /// Worst-case burst drop rate, randomized wiring.
    pub randomized_burst_drop: f64,
    /// Worst-case burst drop rate, dilated wiring.
    pub dilated_burst_drop: f64,
    /// Steady-state sim report, randomized wiring.
    pub randomized: LatencyReport,
    /// Steady-state sim report, dilated wiring.
    pub dilated: LatencyReport,
}

/// Runs the randomization ablation (paper Sec. IV-E: expansion makes the
/// network immune to worst-case permutations; without it, structured
/// permutations concentrate on a few internal paths).
pub fn wiring_ablation(cfg: &EvalConfig) -> Result<WiringAblation, BaldurError> {
    wiring_ablation_on(&cfg.sweep(), cfg)
}

/// [`wiring_ablation`] on a caller-provided [`Sweep`]: the two burst
/// analyses and the two steady-state runs are four independent cached
/// jobs. Errs when any of the four fails — the ablation is a paired
/// comparison, meaningless with a side missing.
pub fn wiring_ablation_on(sw: &Sweep, cfg: &EvalConfig) -> Result<WiringAblation, BaldurError> {
    use crate::topo::multibutterfly::Wiring;
    let pattern = Pattern::Transpose;
    let nodes = cfg.nodes.next_power_of_two();
    let burst_items: Vec<(u32, u32, Pattern, u64, Wiring)> = [Wiring::Randomized, Wiring::Dilated]
        .into_iter()
        .map(|w| (nodes, 4, pattern, cfg.seed, w))
        .collect();
    let bursts = all_ok(
        "wiring_burst",
        sw.try_map("wiring_burst", burst_items, |(n, m, p, seed, w)| {
            droptool::worst_case_with_wiring(*n, *m, *p, *seed, *w).drop_rate
        }),
    )?;
    let sim_items: Vec<RunConfig> = [Wiring::Randomized, Wiring::Dilated]
        .into_iter()
        .map(|wiring| {
            let params = BaldurParams {
                wiring,
                ..BaldurParams::paper_for(u64::from(cfg.nodes))
            };
            RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern,
                        load: 0.7,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            }
        })
        .collect();
    let mut sims = all_ok("wiring_sim", sw.try_map("wiring_sim", sim_items, run))?;
    let (randomized, dilated) = match (sims.pop(), sims.pop()) {
        (Some(d), Some(r)) => (r, d),
        _ => {
            return Err(BaldurError::MissingResult {
                label: "wiring_sim".to_string(),
                what: "two wiring configs in, two reports out".to_string(),
            })
        }
    };
    Ok(WiringAblation {
        pattern: pattern.name().into(),
        randomized_burst_drop: bursts[0],
        dilated_burst_drop: bursts[1],
        randomized,
        dilated,
    })
}

/// The backoff ablation: binary exponential backoff on versus off under a
/// congested pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackoffAblation {
    /// With BEB (the paper's design).
    pub with_backoff: LatencyReport,
    /// Without BEB.
    pub without_backoff: LatencyReport,
}

/// Runs the binary-exponential-backoff ablation: a congested-but-
/// completable configuration (multiplicity 2, transpose at 0.9 load)
/// where retransmission pressure is real and BEB's throttling shows up
/// as fewer wasted traversals.
pub fn backoff_ablation(cfg: &EvalConfig) -> Result<BackoffAblation, BaldurError> {
    backoff_ablation_on(&cfg.sweep(), cfg)
}

/// [`backoff_ablation`] on a caller-provided [`Sweep`] — the on/off runs
/// are two independent cached jobs. Errs when either side fails (a
/// paired comparison).
pub fn backoff_ablation_on(sw: &Sweep, cfg: &EvalConfig) -> Result<BackoffAblation, BaldurError> {
    let items: Vec<RunConfig> = [true, false]
        .into_iter()
        .map(|backoff| {
            let params = BaldurParams {
                backoff,
                multiplicity: 2,
                ..BaldurParams::paper_for(u64::from(cfg.nodes))
            };
            RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern: Pattern::Transpose,
                        load: 0.9,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            }
        })
        .collect();
    let mut reports = all_ok("backoff", sw.try_map("backoff", items, run))?;
    let (with_backoff, without_backoff) = match (reports.pop(), reports.pop()) {
        (Some(wo), Some(w)) => (w, wo),
        _ => {
            return Err(BaldurError::MissingResult {
                label: "backoff".to_string(),
                what: "two backoff configs in, two reports out".to_string(),
            })
        }
    };
    Ok(BackoffAblation {
        with_backoff,
        without_backoff,
    })
}

// ------------------------------------------------------------- Figure 5

/// The Figure 5 waveform reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Waveform {
    /// Full VCD document for a waveform viewer.
    pub vcd: String,
    /// ASCII rendering for terminals.
    pub ascii: String,
    /// Which output port carried the packet.
    pub output_port: usize,
}

/// Runs the gate-level 2x2 switch on one packet (routing bits `[0, 1]`)
/// and captures the Figure 5 signal set.
pub fn figure5() -> Fig5Waveform {
    use crate::phy::length_code::LengthCode;
    use crate::phy::packet_wave::assemble;
    use crate::tl::netlist::{CircuitSim, Netlist, RunOutcome};
    use crate::tl::switch::{build_switch, SwitchParams};

    let t = crate::phy::waveform::BIT_PERIOD_FS;
    let p = SwitchParams::paper();
    let code = LengthCode::paper();
    let mut n = Netlist::new();
    let sw = build_switch(&mut n, p);
    let mut sim = CircuitSim::new(n);
    let probes = [
        sw.inputs[0],
        sw.taps[0].envelope,
        sw.taps[0].route,
        sw.taps[0].valid,
        sw.taps[0].mask,
        sw.grants[0][0],
        sw.outputs[0],
        sw.outputs[1],
    ];
    for w in probes {
        sim.probe(w);
    }
    let pw = assemble(&code, &[false, true], b"FIG5", 10 * t);
    sim.drive(sw.inputs[0], &pw.wave);
    let outcome = sim.run(pw.end + 3_000_000);
    assert!(
        matches!(outcome, RunOutcome::Settled { .. }),
        "switch failed to settle"
    );
    let out0 = !sim.probed(sw.outputs[0]).is_dark();
    Fig5Waveform {
        vcd: crate::tl::vcd::to_vcd(&sim, "baldur_switch"),
        ascii: crate::tl::vcd::to_ascii(&sim, 0, pw.end + 200_000, t / 2),
        output_port: usize::from(!out0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let r = parallel_map(4, (0..100).collect::<Vec<i32>>(), |&x| x * 2);
        assert_eq!(r, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn figure5_routes_bit0_to_port0() {
        let f = figure5();
        assert_eq!(f.output_port, 0);
        assert!(f.vcd.contains("$var wire 1"));
        assert!(f.ascii.contains('█'));
    }

    #[test]
    fn table_v_shape_holds_at_tiny_scale() {
        let rows = table_v(&EvalConfig::tiny());
        assert_eq!(rows.len(), 5);
        // Drop rate falls monotonically with multiplicity, like the paper.
        for w in rows.windows(2) {
            assert!(
                w[1].measured_drop_pct <= w[0].measured_drop_pct + 1e-9,
                "{w:?}"
            );
        }
        assert!(rows[0].measured_drop_pct > rows[4].measured_drop_pct);
        assert_eq!(rows[3].gates, 1_112);
    }

    #[test]
    fn figure9_pessimistic_still_wins() {
        let rows = figure9();
        let pess = rows.iter().find(|r| r.scenario == "pessimistic").unwrap();
        for (name, _, improvement) in &pess.entries {
            if name != "baldur" {
                assert!(*improvement > 3.0, "{name}: {improvement}");
            }
        }
    }

    #[test]
    fn awgr_numbers() {
        let c = awgr_comparison();
        assert!(c.awgr_w / c.baldur_w > 5.0);
        assert!(c.awgr_latency_ns / c.baldur_latency_ns > 50.0);
    }

    #[test]
    fn reliability_is_1e_minus_9_class() {
        let r = reliability(100_000, 1).expect("no faults injected here");
        assert!(r.analytic_error_probability < 1e-8);
        for (_, mc, an) in &r.monte_carlo {
            if *an > 1e-3 {
                assert!((mc / an - 1.0).abs() < 0.25, "{mc} vs {an}");
            }
        }
    }
}

//! Offered versus accepted load (the saturation companion to Figure 6).

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{
    json_of, networks_axis, outln, outp, section, Axis, AxisKind, ExperimentSpec, Output, Params,
};
use crate::sweep::Sweep;

const LABEL: &str = "saturation";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "saturation",
    artifact: "Figure 6 companion",
    summary: "accepted versus offered load under uniform-random traffic",
    version: VERSION,
    labels: &[LABEL],
    axes: &[
        Axis {
            name: "loads",
            kind: AxisKind::F64List,
            default: "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0",
            help: "offered input loads to sweep",
        },
        Axis {
            name: "networks",
            kind: AxisKind::StrList,
            default: "baldur,electrical_mb,dragonfly,fattree,ideal",
            help: "networks to compare (paper lineup by default)",
        },
    ],
    flags: &[],
    modes: &[],
    output_columns: &["network", "offered", "accepted", "avg_ns"],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: Some(("saturation.gp", SAT_GP)),
    all_figures: all_figures_overrides,
    run: run_hook,
};

const SAT_GP: &str = r#"set datafile separator ','
set xlabel 'offered load'
set ylabel 'accepted load'
set key left top
set title 'Saturation: accepted vs offered'
plot for [net in "baldur electrical_mb dragonfly fattree ideal"] \
  '< grep "^'.net.'," saturation.csv' using 2:3 with linespoints title net, x with lines dt 2 title 'ideal slope'
"#;

// `all_figures` has always run this sweep on the Figure 6 load grid
// rather than the standalone binary's denser ten-point grid.
fn all_figures_overrides(_cfg: &EvalConfig) -> Vec<(&'static str, String)> {
    vec![("loads", "0.1,0.3,0.5,0.7,0.9".to_string())]
}

/// One cell of the offered-vs-accepted saturation analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationRow {
    /// Network name.
    pub network: String,
    /// Offered input load.
    pub offered: f64,
    /// Accepted load (delivered bandwidth / link rate).
    pub accepted: f64,
    /// Average latency at this point, ns.
    pub avg_ns: f64,
}

/// Sweeps offered load under uniform-random traffic and reports the
/// accepted throughput of every network — the classical saturation curve
/// backing Figure 6's "saturates at higher input loads" observation.
pub fn saturation(cfg: &EvalConfig, loads: &[f64]) -> Vec<SaturationRow> {
    saturation_on(&cfg.sweep(), cfg, loads)
}

/// [`saturation`] on a caller-provided [`Sweep`].
pub fn saturation_on(sw: &Sweep, cfg: &EvalConfig, loads: &[f64]) -> Vec<SaturationRow> {
    saturation_lineup_on(sw, cfg, &NetworkKind::paper_lineup(cfg.nodes), loads)
}

/// [`saturation`] on a caller-provided named lineup (the registry's
/// `networks` axis). The paper lineup reproduces [`saturation_on`]'s
/// items — and therefore its cache keys — exactly.
pub fn saturation_lineup_on(
    sw: &Sweep,
    cfg: &EvalConfig,
    lineup: &[(String, NetworkKind)],
    loads: &[f64],
) -> Vec<SaturationRow> {
    let mut items: Vec<(String, f64, RunConfig)> = Vec::new();
    for (name, net) in lineup {
        for &load in loads {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    net.clone(),
                    Workload::Synthetic {
                        pattern: Pattern::UniformRandom,
                        load,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            items.push((name.clone(), load, rc));
        }
    }
    let link = crate::net::config::LinkParams::paper();
    sw.map_versioned(LABEL, VERSION, items, |(name, load, rc)| {
        let r = run(rc);
        SaturationRow {
            network: name.clone(),
            offered: *load,
            accepted: r.accepted_load(rc.nodes, link.packet_time().as_ps()),
            avg_ns: r.avg_ns,
        }
    })
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let loads = p.f64_list("loads")?;
    let lineup = networks_axis(p, cfg.nodes)?;
    let rows = saturation_lineup_on(sw, &cfg, &lineup, &loads);
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Saturation: accepted load vs offered (uniform random, {} nodes)",
            cfg.nodes
        ),
    );
    outp!(out, "{:>14}", "network");
    for l in &loads {
        outp!(out, "{l:>7.1}");
    }
    outln!(out);
    for (net, _) in &lineup {
        outp!(out, "{net:>14}");
        for &l in &loads {
            // A missing cell means that job failed and was dropped by
            // the sweep; render a hole, not a panic.
            match rows.iter().find(|r| &r.network == net && r.offered == l) {
                Some(r) => outp!(out, "{:>7.2}", r.accepted),
                None => outp!(out, "{:>7}", "-"),
            }
        }
        outln!(out);
    }
    outln!(
        out,
        "(a network saturates where accepted stops tracking offered)"
    );
    Ok(Output {
        console: out,
        csv: Some(crate::csv::saturation(&rows)),
        json: Some(json_of("saturation", &rows)?),
        files: Vec::new(),
    })
}

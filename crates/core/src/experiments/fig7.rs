//! Figure 7: normalized latency for hotspot, ping-pong, and HPC traces.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::net::workloads::{HpcApp, TraceParams};
use crate::registry::{
    fmt_ns, json_of, no_overrides, outln, section, ExperimentSpec, Output, Params,
};
use crate::sim::stats::geometric_mean;
use crate::sweep::Sweep;

const LABEL: &str = "fig7";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig7",
    artifact: "Figure 7",
    summary: "workload latency: hotspot, ping-pongs, and HPC traces on five networks",
    version: VERSION,
    labels: &[LABEL],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[
        "workload",
        "network",
        "avg_ns",
        "p99_ns",
        "normalized_avg",
        "normalized_p99",
    ],
    golden: Some("fig7.csv"),
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// One measured cell of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Workload name (hotspot / ping_pong1 / ping_pong2 / AMG / CR / FB / MG).
    pub workload: String,
    /// Network name.
    pub network: String,
    /// The measured report.
    pub report: LatencyReport,
}

/// The Figure 7 workload set: hotspot, both ping-pongs, and the four HPC
/// traces, on all five networks.
pub fn figure7(cfg: &EvalConfig) -> Vec<Fig7Row> {
    figure7_on(&cfg.sweep(), cfg)
}

/// [`figure7`] on a caller-provided [`Sweep`].
pub fn figure7_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<Fig7Row> {
    let mut workloads: Vec<(String, Workload)> = vec![
        (
            "hotspot".into(),
            Workload::Synthetic {
                pattern: Pattern::Hotspot,
                load: 0.7,
                packets_per_node: cfg.packets_per_node.min(200),
            },
        ),
        (
            "ping_pong1".into(),
            Workload::PingPong1 {
                rounds: cfg.pingpong_rounds,
            },
        ),
        (
            "ping_pong2".into(),
            Workload::PingPong2 {
                rounds: cfg.pingpong_rounds,
            },
        ),
    ];
    for app in HpcApp::ALL {
        workloads.push((
            app.name().into(),
            Workload::Hpc {
                app,
                params: TraceParams::default_scale(),
            },
        ));
    }
    let mut items: Vec<(String, String, RunConfig)> = Vec::new();
    for (wname, wl) in &workloads {
        for (nname, net) in NetworkKind::paper_lineup(cfg.nodes) {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(cfg.nodes, net, *wl)
            };
            items.push((wname.clone(), nname, rc));
        }
    }
    sw.map_versioned(LABEL, VERSION, items, |(wname, nname, rc)| Fig7Row {
        workload: wname.clone(),
        network: nname.clone(),
        report: run(rc),
    })
}

/// Normalizes Figure 7 rows to Baldur per workload and returns
/// `(workload, network, normalized_avg, normalized_p99)` tuples.
///
/// A workload whose Baldur baseline row is missing (its job failed and
/// was dropped by the sweep) has no denominator, so its rows are skipped
/// rather than panicking — partial sweeps render partial tables.
pub fn normalize_fig7(rows: &[Fig7Row]) -> Vec<(String, String, f64, f64)> {
    let mut out = Vec::new();
    for row in rows {
        let Some(baldur) = rows
            .iter()
            .find(|r| r.workload == row.workload && r.network == "baldur")
        else {
            continue;
        };
        out.push((
            row.workload.clone(),
            row.network.clone(),
            row.report.avg_ns / baldur.report.avg_ns,
            row.report.p99_ns / baldur.report.p99_ns,
        ));
    }
    out
}

/// Geometric-mean normalized latency per network across workloads
/// (`(network, geomean_avg, geomean_p99)`), as quoted in Sec. V-B.
pub fn fig7_geomeans(rows: &[Fig7Row]) -> Vec<(String, f64, f64)> {
    let normalized = normalize_fig7(rows);
    let mut networks: Vec<String> = normalized.iter().map(|r| r.1.clone()).collect();
    networks.sort();
    networks.dedup();
    networks
        .into_iter()
        .map(|net| {
            let avg: Vec<f64> = normalized
                .iter()
                .filter(|r| r.1 == net)
                .map(|r| r.2)
                .collect();
            let p99: Vec<f64> = normalized
                .iter()
                .filter(|r| r.1 == net)
                .map(|r| r.3)
                .collect();
            (net, geometric_mean(&avg), geometric_mean(&p99))
        })
        .collect()
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let rows = figure7_on(sw, &cfg);
    let workloads = [
        "hotspot",
        "ping_pong1",
        "ping_pong2",
        "AMG",
        "CR",
        "FB",
        "MG",
    ];
    let mut out = String::new();
    section(
        &mut out,
        &format!("Figure 7: absolute latency ({} nodes)", cfg.nodes),
    );
    outln!(
        out,
        "{:>12} | {:>14} | {:>12} | {:>12}",
        "workload",
        "network",
        "avg",
        "p99"
    );
    for w in &workloads {
        for r in rows.iter().filter(|r| r.workload == *w) {
            outln!(
                out,
                "{:>12} | {:>14} | {:>12} | {:>12}",
                r.workload,
                r.network,
                fmt_ns(r.report.avg_ns),
                fmt_ns(r.report.p99_ns)
            );
        }
    }
    section(&mut out, "Figure 7: normalized to Baldur (avg / p99)");
    let norm = normalize_fig7(&rows);
    for w in &workloads {
        for (wl, net, a, pn) in norm.iter().filter(|r| r.0 == *w) {
            outln!(out, "{wl:>12} | {net:>14} | {a:>8.2}x | {pn:>8.2}x");
        }
    }
    section(
        &mut out,
        "Geomean normalized latency per network (paper Sec. V-B)",
    );
    for (net, a, pn) in fig7_geomeans(&rows) {
        outln!(out, "{net:>14} | avg {a:>7.2}x | p99 {pn:>7.2}x");
    }
    Ok(Output {
        console: out,
        csv: Some(crate::csv::fig7(&rows)),
        json: Some(json_of("fig7", &rows)?),
        files: Vec::new(),
    })
}

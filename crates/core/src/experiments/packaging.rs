//! Sec. IV-G: cabinets, PCBs, interposers under fiber-pitch and power
//! constraints.

use crate::error::BaldurError;
use crate::registry::{json_of, no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "packaging",
    artifact: "Sec. IV-G",
    summary: "packaging plan at four scales under fiber and power limits",
    version: 1,
    labels: &[],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

fn run_hook(_sw: &Sweep, _p: &Params) -> Result<Output, BaldurError> {
    let mut out = String::new();
    section(&mut out, "Sec. IV-G packaging");
    outln!(
        out,
        "{:>10} | m | stages | {:>11} | {:>7} | fiber-lim | power-lim | cabinets | TL area",
        "nodes",
        "interposers",
        "pcbs"
    );
    let mut rows = Vec::new();
    for nodes in [1_024u64, 16_384, 131_072, 1 << 20] {
        let p = crate::cost::packaging_for(nodes);
        outln!(
            out,
            "{:>10} | {} | {:>6} | {:>11} | {:>7} | {:>9} | {:>9} | {:>8} | {:>6.2}%",
            p.nodes,
            p.multiplicity,
            p.stages,
            p.interposers,
            p.pcbs,
            p.cabinets_fiber_limited,
            p.cabinets_power_limited,
            p.cabinets(),
            p.tl_area_fraction * 100.0
        );
        rows.push(p);
    }
    outln!(
        out,
        "(paper: 1 cabinet at 1K; 752 at 1M with fiber pitch binding, 176 power-only)"
    );
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("packaging", &rows)?),
        files: Vec::new(),
    })
}

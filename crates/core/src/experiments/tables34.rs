//! Tables III/IV + the Sec. IV-B encoding-overhead analysis.

use crate::error::BaldurError;
use crate::registry::{no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "tables34",
    artifact: "Tables III/IV",
    summary: "TL device/gate parameter tables and length-code overhead",
    version: 1,
    labels: &[],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

fn run_hook(_sw: &Sweep, _p: &Params) -> Result<Output, BaldurError> {
    use crate::phy::overhead::length_code_overhead;
    use crate::tl::device::{TlDevice, TlGate};

    let mut out = String::new();
    section(&mut out, "Table III: TL device parameters");
    let d = TlDevice::PAPER;
    outln!(
        out,
        "junction capacitance     {:>8.1} fF",
        d.junction_capacitance_ff
    );
    outln!(
        out,
        "recombination lifetime   {:>8.1} ps",
        d.recombination_lifetime_ps
    );
    outln!(
        out,
        "photon lifetime          {:>8.2} ps",
        d.photon_lifetime_ps
    );
    outln!(out, "wavelength               {:>8.0} nm", d.wavelength_nm);
    outln!(
        out,
        "threshold current        {:>8.1} mA",
        d.threshold_current_ma
    );
    outln!(
        out,
        "bias current             {:>8.1} mA",
        d.bias_current_ma
    );

    section(&mut out, "Table IV: TL gate figures of merit");
    let g = TlGate::PAPER;
    outln!(
        out,
        "area {:>5.0} um^2 | rise/fall {:>4.1} ps | delay {:>5.2} ps | power {:>6.3} mW | {:>3.0} Gbps | {:.2} fJ/bit",
        g.area_um2,
        g.rise_fall_ps,
        g.delay_ps,
        g.power_mw,
        g.data_rate_gbps,
        g.energy_per_bit_fj()
    );

    section(&mut out, "Sec. IV-B: length-code bandwidth overhead");
    for (bits, payload) in [(8u64, 512u64), (10, 512), (20, 512), (8, 64)] {
        let o = length_code_overhead(bits, payload);
        outln!(
            out,
            "{bits:>3} routing bits + {payload:>4} B payload -> {:>6.3}% overhead",
            o.fraction * 100.0
        );
    }
    outln!(out, "(paper quotes ~0.34% for 8 routing bits + 512 B)");
    Ok(Output::console_only(out))
}

//! Datacenter-scale kernel curves: wall-clock, event rate, and memory
//! footprint as the Baldur model grows from 1K toward 1M endpoints.
//!
//! This experiment exercises the struct-of-arrays state layout and the
//! generational packet arenas end to end: each sweep cell builds one
//! Baldur network at `N` endpoints, pushes a light open-loop uniform
//! load through it, and records
//!
//! * wall-clock and events/second (via the bench-side clock probe;
//!   zero when run without the bench harness, e.g. under `cargo test`),
//! * peak process RSS (the `VmHWM` probe, same caveat),
//! * model state bytes and bytes/endpoint (exact, machine-independent:
//!   flat-table and queue capacities plus arena slabs),
//! * arena high-water marks and the scheduler's backend choice.
//!
//! The simulation outcome columns (`events`, `delivered`, `generated`,
//! `state_bytes`) are bit-deterministic for a fixed seed at any thread
//! count; the timing/RSS columns are measurements and replay verbatim
//! on sweep-cache hits (pass `--no-cache` for fresh numbers). There is
//! deliberately no golden snapshot. The default sweep tops out at the
//! paper-scale 1,048,576 endpoints; CI exercises the curve through
//! `--smoke` (1K→4K, byte-identical repeat, 1/8-thread invariance) and
//! accepts the full default up to 262,144 on CI-class resources.

use serde::{Deserialize, Serialize};

use super::perf::{peak_rss_bytes, wall_now_ns};
use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::baldur_net::simulate_scaling;
use crate::net::config::{BaldurParams, LinkParams};
use crate::net::driver::Driver;
use crate::net::traffic::Pattern;
use crate::registry::{
    fmt_bytes, json_of, outln, section, Axis, AxisKind, ExperimentSpec, Mode, Output, Params,
};
use crate::sweep::Sweep;

const LABEL: &str = "scaling";
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "scaling",
    artifact: "Sec. V scale",
    summary: "kernel scaling curves (wall, events/s, RSS, state bytes) to 1M endpoints",
    version: VERSION,
    labels: &[LABEL],
    axes: &[
        Axis {
            name: "endpoints",
            kind: AxisKind::U32List,
            default: "1024,65536,262144,1048576",
            help: "endpoint counts to sweep (rounded up to powers of two)",
        },
        Axis {
            name: "ppn",
            kind: AxisKind::U64,
            default: "2",
            help: "open-loop packets injected per endpoint",
        },
    ],
    flags: &[],
    modes: &[Mode {
        flag: "smoke",
        help: "CI gate: 1K-4K determinism, repeat + thread invariance",
        run: run_smoke,
    }],
    output_columns: &[
        "endpoints",
        "wall_ms",
        "events",
        "events_per_sec",
        "peak_rss_bytes",
        "state_bytes",
        "bytes_per_endpoint",
        "delivered",
        "generated",
        "peak_pending",
        "calendar",
    ],
    golden: None,
    csv_default: Some("results/scaling.csv"),
    json_default: Some("results/scaling.json"),
    gnuplot: None,
    all_figures: af_overrides,
    run: run_sweep,
};

/// `all_figures` caps the curve at 4K endpoints so the full-figure run
/// stays in the minutes regime.
fn af_overrides(_cfg: &EvalConfig) -> Vec<(&'static str, String)> {
    vec![("endpoints", "1024,4096".to_string())]
}

/// One cell of the scaling curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Active endpoints (power of two).
    pub endpoints: u32,
    /// Packets injected per endpoint.
    pub ppn: u32,
    /// Wall-clock for the simulation call, ns (0 without a clock probe).
    pub wall_ns: u64,
    /// Events executed by the kernel.
    pub events: u64,
    /// Total events ever scheduled (>= executed).
    pub events_scheduled: u64,
    /// Peak simultaneous scheduled events.
    pub peak_pending: u64,
    /// Whether the scheduler self-promoted to the calendar backend.
    pub calendar_backed: bool,
    /// Peak process RSS in bytes at measurement time (0 without probe).
    pub peak_rss_bytes: u64,
    /// Model state bytes (flat tables + queues + arena slabs).
    pub state_bytes: u64,
    /// Packet-arena high-water mark (live packets).
    pub arena_high_water: u64,
    /// Delivered packets.
    pub delivered: u64,
    /// Generated packets.
    pub generated: u64,
}

impl ScalingRow {
    /// Events per wall-clock second; 0 without a clock probe.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Model state bytes per endpoint.
    pub fn bytes_per_endpoint(&self) -> f64 {
        f64::from(self.endpoints).recip() * self.state_bytes as f64
    }
}

/// Sweeps the Baldur model over `endpoints` at a light open-loop
/// uniform load (`ppn` packets per endpoint at 50% offered load),
/// measuring kernel throughput and memory footprint per cell.
pub fn scaling_curves(cfg: &EvalConfig, endpoints: &[u32], ppn: u32) -> Vec<ScalingRow> {
    scaling_curves_on(&cfg.sweep(), cfg, endpoints, ppn)
}

/// [`scaling_curves`] on a caller-provided [`Sweep`].
pub fn scaling_curves_on(
    sw: &Sweep,
    cfg: &EvalConfig,
    endpoints: &[u32],
    ppn: u32,
) -> Vec<ScalingRow> {
    let items: Vec<(u32, u32, u64)> = endpoints
        .iter()
        .map(|&n| (n.max(2).next_power_of_two(), ppn, cfg.seed))
        .collect();
    sw.map_versioned(LABEL, VERSION, items, |&(n, ppn, seed)| {
        measure(n, ppn, seed)
    })
}

/// Builds, runs, and measures one scale point.
fn measure(endpoints: u32, ppn: u32, seed: u64) -> ScalingRow {
    let link = LinkParams::paper();
    let params = BaldurParams::paper_for(u64::from(endpoints));
    let driver = Driver::open_loop(endpoints, Pattern::UniformRandom, 0.5, ppn, &link, seed);
    let t0 = wall_now_ns();
    let (report, stats) = simulate_scaling(endpoints, params, link, driver, seed, None);
    let wall_ns = wall_now_ns().saturating_sub(t0);
    ScalingRow {
        endpoints,
        ppn,
        wall_ns,
        events: report.events,
        events_scheduled: stats.events_scheduled,
        peak_pending: stats.peak_pending_events,
        calendar_backed: stats.calendar_backed,
        peak_rss_bytes: peak_rss_bytes(),
        state_bytes: stats.state_bytes,
        arena_high_water: stats
            .ack_batches
            .high_water
            .max(stats.pending_batches.high_water),
        delivered: report.delivered,
        generated: report.generated,
    }
}

fn print_rows(out: &mut String, rows: &[ScalingRow]) {
    outln!(
        out,
        "{:>9} | {:>9} | {:>11} | {:>11} | {:>9} | {:>11} | {:>8} | {:>8}",
        "endpoints",
        "wall",
        "events",
        "events/s",
        "peak RSS",
        "state",
        "B/endpt",
        "sched"
    );
    for r in rows {
        outln!(
            out,
            "{:>9} | {:>8.1}ms | {:>11} | {:>11.0} | {:>9} | {:>11} | {:>8.1} | {:>8}",
            r.endpoints,
            r.wall_ns as f64 / 1e6,
            r.events,
            r.events_per_sec(),
            fmt_bytes(r.peak_rss_bytes),
            fmt_bytes(r.state_bytes),
            r.bytes_per_endpoint(),
            if r.calendar_backed {
                "calendar"
            } else {
                "heap"
            }
        );
    }
}

fn run_sweep(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let endpoints = p.u32_list("endpoints")?;
    let ppn = u32::try_from(p.u64("ppn")?).unwrap_or(u32::MAX).max(1);
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Kernel scaling: Baldur endpoints sweep ({} pkts/endpoint, seed {})",
            ppn, cfg.seed
        ),
    );
    let rows = scaling_curves_on(sw, &cfg, &endpoints, ppn);
    print_rows(&mut out, &rows);
    Ok(Output {
        console: out,
        csv: Some(crate::csv::scaling(&rows)),
        json: Some(json_of("scaling", &rows)?),
        files: Vec::new(),
    })
}

/// The deterministic projection of a scaling row: everything except the
/// wall-clock and RSS measurements. Byte-compared across repeated runs
/// and across sweep thread counts in `--smoke`.
fn deterministic_csv(rows: &[ScalingRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "endpoints,ppn,events,events_scheduled,peak_pending,calendar,state_bytes,arena_high_water,delivered,generated\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            r.endpoints,
            r.ppn,
            r.events,
            r.events_scheduled,
            r.peak_pending,
            r.calendar_backed,
            r.state_bytes,
            r.arena_high_water,
            r.delivered,
            r.generated
        );
    }
    out
}

/// CI gate: the 1K->4K head of the curve, run uncached three times —
/// twice single-threaded (byte-identical repeat) and once on an
/// 8-worker sweep (thread invariance) — comparing the deterministic
/// projection byte-for-byte and asserting packet conservation.
fn run_smoke(_sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let endpoints = [1_024u32, 4_096];
    let ppn = 2;
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Scaling smoke: {:?} endpoints, {} pkts/endpoint, seed {}",
            endpoints, ppn, cfg.seed
        ),
    );
    let first = scaling_curves_on(&Sweep::new(1), &cfg, &endpoints, ppn);
    let second = scaling_curves_on(&Sweep::new(1), &cfg, &endpoints, ppn);
    let wide = scaling_curves_on(&Sweep::new(8), &cfg, &endpoints, ppn);
    let det_a = deterministic_csv(&first);
    let det_b = deterministic_csv(&second);
    let det_c = deterministic_csv(&wide);
    let mut violations: Vec<String> = Vec::new();
    if det_a != det_b {
        violations.push("repeated single-thread runs are not byte-identical".to_string());
    }
    if det_a != det_c {
        violations.push("1-thread and 8-thread sweeps diverge".to_string());
    }
    for r in &first {
        if r.delivered != r.generated {
            violations.push(format!(
                "{} endpoints: delivered {} != generated {} with no faults",
                r.endpoints, r.delivered, r.generated
            ));
        }
        if r.state_bytes == 0 {
            violations.push(format!("{} endpoints: zero state bytes", r.endpoints));
        }
    }
    print_rows(&mut out, &first);
    if !violations.is_empty() {
        return Err(BaldurError::Experiment {
            name: "scaling".to_string(),
            message: violations.join("; "),
        });
    }
    outln!(
        out,
        "scaling smoke OK: determinism, thread invariance, conservation hold"
    );
    Ok(Output::console_only(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_are_deterministic_and_accounted() {
        let cfg = EvalConfig::tiny();
        let a = scaling_curves(&cfg, &[64, 128], 2);
        let b = scaling_curves(&cfg, &[64, 128], 2);
        assert_eq!(deterministic_csv(&a), deterministic_csv(&b));
        assert_eq!(a.len(), 2);
        for r in &a {
            assert_eq!(r.delivered, r.generated);
            assert!(r.state_bytes > 0);
            assert!(r.events_scheduled >= r.events);
            assert!(r.bytes_per_endpoint() > 0.0);
        }
        assert!(a[1].state_bytes > a[0].state_bytes);
    }

    #[test]
    fn endpoint_counts_round_up_to_powers_of_two() {
        let cfg = EvalConfig::tiny();
        let rows = scaling_curves(&cfg, &[100], 1);
        assert_eq!(rows[0].endpoints, 128);
    }
}

//! Figure 9: sensitivity of the 1M-scale power comparison to switch-power
//! modelling error.

use serde::{Deserialize, Serialize};

use crate::error::BaldurError;
use crate::power::networks::NetworkPower;
use crate::power::sensitivity::Scenario;
use crate::registry::{json_of, no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;

const LABEL: &str = "fig9";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig9",
    artifact: "Figure 9",
    summary: "switch-power sensitivity of the 1M-scale comparison",
    version: VERSION,
    labels: &[LABEL],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// One Figure 9 scenario row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Scenario name.
    pub scenario: String,
    /// `(network, per-node W, Baldur improvement factor)`.
    pub entries: Vec<(String, f64, f64)>,
}

/// The Figure 9 sensitivity analysis at the 1M-1.4M scale.
pub fn figure9() -> Vec<Fig9Row> {
    let scale = 1_048_576;
    let items: Vec<(String, u64)> = ["baseline", "pessimistic", "optimistic"]
        .into_iter()
        .map(|name| (name.to_string(), scale))
        .collect();
    items.iter().map(fig9_row).collect()
}

/// [`figure9`] on a caller-provided [`Sweep`] — one cached job per
/// scenario.
pub fn figure9_on(sw: &Sweep) -> Vec<Fig9Row> {
    let scale = 1_048_576;
    let items: Vec<(String, u64)> = ["baseline", "pessimistic", "optimistic"]
        .into_iter()
        .map(|name| (name.to_string(), scale))
        .collect();
    sw.map_versioned(LABEL, VERSION, items, fig9_row)
}

fn fig9_row(item: &(String, u64)) -> Fig9Row {
    let (name, scale) = item;
    let s = match name.as_str() {
        "pessimistic" => Scenario::PESSIMISTIC,
        "optimistic" => Scenario::OPTIMISTIC,
        _ => Scenario::BASELINE,
    };
    Fig9Row {
        scenario: name.clone(),
        entries: NetworkPower::ALL
            .iter()
            .map(|&n| {
                (
                    n.name().to_string(),
                    s.per_node_w(n, *scale),
                    s.improvement(n, *scale),
                )
            })
            .collect(),
    }
}

fn run_hook(sw: &Sweep, _p: &Params) -> Result<Output, BaldurError> {
    let rows = figure9_on(sw);
    let mut out = String::new();
    section(
        &mut out,
        "Figure 9: switch-power sensitivity at the 1M-1.4M scale",
    );
    for row in &rows {
        outln!(out, "-- {}", row.scenario);
        for (net, w, imp) in &row.entries {
            if net == "baldur" {
                outln!(out, "{net:>14}: {w:>8.1} W/node");
            } else {
                outln!(out, "{net:>14}: {w:>8.1} W/node   Baldur wins {imp:>5.1}x");
            }
        }
    }
    outln!(
        out,
        "(paper pessimistic case: 5.1x / 8.2x / 14.7x vs dragonfly / fat-tree / MB)"
    );
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("fig9", &rows)?),
        files: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_pessimistic_still_wins() {
        let rows = figure9();
        let pess = rows.iter().find(|r| r.scenario == "pessimistic").unwrap();
        for (name, _, improvement) in &pess.entries {
            if name != "baldur" {
                assert!(*improvement > 3.0, "{name}: {improvement}");
            }
        }
    }
}

//! Sec. IV-E: the worst-case simultaneous-injection drop tool.

use serde::{Deserialize, Serialize};

use crate::error::BaldurError;
use crate::net::traffic::Pattern;
use crate::registry::{
    json_of, outln, section, Axis, AxisKind, ExperimentSpec, Flag, Output, Params,
};
use crate::sweep::Sweep;

use super::EvalConfig;

const LABEL: &str = "droptool";
const REQ_LABEL: &str = "droptool_req";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "droptool",
    artifact: "Sec. IV-E",
    summary: "worst-case burst drop rate and required multiplicity per scale",
    version: VERSION,
    labels: &[LABEL, REQ_LABEL],
    axes: &[Axis {
        name: "scales",
        kind: AxisKind::U32List,
        default: "256,1024,8192,65536",
        help: "network scales (nodes) to analyze",
    }],
    flags: &[Flag {
        name: "big",
        help: "extend the sweep to 1M+ nodes (the paper's exascale check)",
    }],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: all_figures_overrides,
    run: run_hook,
};

// `all_figures` has always stopped at 8K nodes to bound runtime.
fn all_figures_overrides(_cfg: &EvalConfig) -> Vec<(&'static str, String)> {
    vec![("scales", "256,1024,8192".to_string())]
}

/// One drop-tool row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DropRow {
    /// Network scale.
    pub nodes: u32,
    /// Pattern name.
    pub pattern: String,
    /// Multiplicity.
    pub multiplicity: u32,
    /// Worst-case simultaneous-burst drop rate.
    pub drop_rate: f64,
}

/// The Sec. IV-E "in-house tool" study: worst-case drop rate versus
/// multiplicity and scale, plus the required multiplicity per scale.
pub fn droptool_study(scales: &[u32], seed: u64) -> (Vec<DropRow>, Vec<(u32, u32)>) {
    droptool_study_on(&Sweep::new(0), scales, seed)
}

/// [`droptool_study`] on a caller-provided [`Sweep`].
pub fn droptool_study_on(sw: &Sweep, scales: &[u32], seed: u64) -> (Vec<DropRow>, Vec<(u32, u32)>) {
    let patterns = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
    ];
    let mut items: Vec<(u32, Pattern, u32, u64)> = Vec::new();
    for &nodes in scales {
        for &pattern in &patterns {
            for m in 1..=5 {
                items.push((nodes, pattern, m, seed));
            }
        }
    }
    let rows = sw.map_versioned(LABEL, VERSION, items, |(nodes, pattern, m, seed)| {
        let r = crate::net::droptool::worst_case(*nodes, *m, *pattern, *seed);
        DropRow {
            nodes: *nodes,
            pattern: pattern.name().into(),
            multiplicity: *m,
            drop_rate: r.drop_rate,
        }
    });
    let req_items: Vec<(u32, u64)> = scales.iter().map(|&n| (n, seed)).collect();
    let required = sw.map_versioned(REQ_LABEL, VERSION, req_items, |(n, seed)| {
        (
            *n,
            crate::net::droptool::required_multiplicity(*n, &patterns, 0.01, 3, *seed),
        )
    });
    (rows, required)
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let mut scales = p.u32_list("scales")?;
    if p.flag("big") {
        scales.push(1 << 20);
    }
    let (rows, required) = droptool_study_on(sw, &scales, cfg.seed);
    let mut out = String::new();
    section(&mut out, "Worst-case burst drop rate (%)");
    outln!(
        out,
        "{:>9} | {:>18} | m=1    m=2    m=3    m=4    m=5",
        "nodes",
        "pattern"
    );
    let mut by_key: std::collections::BTreeMap<(u32, String), Vec<f64>> = Default::default();
    for r in &rows {
        by_key
            .entry((r.nodes, r.pattern.clone()))
            .or_default()
            .push(r.drop_rate * 100.0);
    }
    for ((nodes, pattern), drops) in &by_key {
        let cells: Vec<String> = drops.iter().map(|d| format!("{d:>6.2}")).collect();
        outln!(out, "{nodes:>9} | {pattern:>18} | {}", cells.join(" "));
    }
    section(
        &mut out,
        "Required multiplicity for <1% worst-case burst drops",
    );
    for (nodes, m) in &required {
        outln!(out, "{nodes:>9} nodes -> m = {m}");
    }
    outln!(out, "(paper: m=4 at 1K, m=5 sufficient for >1M)");
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("droptool", &(rows, required))?),
        files: Vec::new(),
    })
}

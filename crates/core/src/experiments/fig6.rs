//! Figure 6: average and tail latency versus input load, four synthetic
//! patterns x five networks.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{
    fmt_ns, json_of, networks_axis, no_overrides, outln, section, Axis, AxisKind, ExperimentSpec,
    Output, Params,
};
use crate::sweep::Sweep;

const LABEL: &str = "fig6";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig6",
    artifact: "Figure 6",
    summary: "average and tail latency versus input load, four patterns x five networks",
    version: VERSION,
    labels: &[LABEL],
    axes: &[
        Axis {
            name: "loads",
            kind: AxisKind::F64List,
            default: "0.1,0.3,0.5,0.7,0.9",
            help: "offered input loads to sweep",
        },
        Axis {
            name: "networks",
            kind: AxisKind::StrList,
            default: "baldur,electrical_mb,dragonfly,fattree,ideal",
            help: "networks to compare (paper lineup by default)",
        },
    ],
    flags: &[],
    modes: &[],
    output_columns: &[
        "pattern",
        "network",
        "load",
        "avg_ns",
        "p99_ns",
        "drop_rate",
        "delivered",
        "generated",
    ],
    golden: Some("fig6.csv"),
    csv_default: None,
    json_default: None,
    gnuplot: Some(("fig6.gp", FIG6_GP)),
    all_figures: no_overrides,
    run: run_hook,
};

const FIG6_GP: &str = r#"# gnuplot -e "pattern='random_permutation'" fig6.gp
set datafile separator ','
set logscale y
set xlabel 'input load'
set ylabel 'average latency (ns)'
set key outside
if (!exists("pattern")) pattern = 'random_permutation'
set title sprintf('Figure 6: %s', pattern)
plot for [net in "baldur electrical_mb dragonfly fattree ideal"] \
  '< grep -E "^'.pattern.','.net.'," fig6.csv' using 3:4 with linespoints title net
"#;

/// One measured cell of Figure 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Traffic pattern name.
    pub pattern: String,
    /// Network name.
    pub network: String,
    /// Offered input load.
    pub load: f64,
    /// The measured report.
    pub report: LatencyReport,
}

/// The Figure 6 load sweep: average + tail latency for four patterns on
/// all five networks.
pub fn figure6(cfg: &EvalConfig, loads: &[f64]) -> Vec<Fig6Row> {
    figure6_on(&cfg.sweep(), cfg, loads)
}

/// [`figure6`] on a caller-provided [`Sweep`].
pub fn figure6_on(sw: &Sweep, cfg: &EvalConfig, loads: &[f64]) -> Vec<Fig6Row> {
    figure6_lineup_on(sw, cfg, &NetworkKind::paper_lineup(cfg.nodes), loads)
}

/// [`figure6`] on a caller-provided named lineup (the registry's
/// `networks` axis). The paper lineup reproduces [`figure6_on`]'s items
/// — and therefore its cache keys — exactly.
pub fn figure6_lineup_on(
    sw: &Sweep,
    cfg: &EvalConfig,
    lineup: &[(String, NetworkKind)],
    loads: &[f64],
) -> Vec<Fig6Row> {
    let patterns = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
        Pattern::GroupPermutation,
    ];
    let mut items: Vec<(String, String, f64, RunConfig)> = Vec::new();
    for &pattern in &patterns {
        for (name, net) in lineup {
            for &load in loads {
                let rc = RunConfig {
                    seed: cfg.seed,
                    ..RunConfig::new(
                        cfg.nodes,
                        net.clone(),
                        Workload::Synthetic {
                            pattern,
                            load,
                            packets_per_node: cfg.packets_per_node,
                        },
                    )
                };
                items.push((pattern.name().to_string(), name.clone(), load, rc));
            }
        }
    }
    sw.map_versioned(LABEL, VERSION, items, |(pattern, name, load, rc)| Fig6Row {
        pattern: pattern.clone(),
        network: name.clone(),
        load: *load,
        report: run(rc),
    })
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let loads = p.f64_list("loads")?;
    let lineup = networks_axis(p, cfg.nodes)?;
    let rows = figure6_lineup_on(sw, &cfg, &lineup, &loads);
    let mut out = String::new();
    for pattern in [
        "random_permutation",
        "transpose",
        "bisection",
        "group_permutation",
    ] {
        section(
            &mut out,
            &format!(
                "Figure 6: {pattern} ({} nodes, {} pkts/node)",
                cfg.nodes, cfg.packets_per_node
            ),
        );
        outln!(
            out,
            "{:>14} | {}",
            "network",
            loads
                .iter()
                .map(|l| format!("{l:>22.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for (net, _) in &lineup {
            let cells: Vec<String> = loads
                .iter()
                .map(|&l| {
                    // A missing cell means that job failed and was
                    // dropped by the sweep; render a hole, not a panic.
                    match rows
                        .iter()
                        .find(|r| r.pattern == pattern && &r.network == net && r.load == l)
                    {
                        Some(r) => format!(
                            "{:>10}/{:>11}",
                            fmt_ns(r.report.avg_ns),
                            fmt_ns(r.report.p99_ns)
                        ),
                        None => format!("{:>10}/{:>11}", "-", "-"),
                    }
                })
                .collect();
            outln!(out, "{net:>14} | {}", cells.join(" "));
        }
        outln!(out, "(cells are avg/p99 latency)");
    }
    Ok(Output {
        console: out,
        csv: Some(crate::csv::fig6(&rows)),
        json: Some(json_of("fig6", &rows)?),
        files: Vec::new(),
    })
}

//! Sec. VII: Baldur versus an AWGR optical-packet-switching network at 32
//! nodes.

use serde::{Deserialize, Serialize};

use crate::error::BaldurError;
use crate::registry::{json_of, no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "awgr",
    artifact: "Sec. VII",
    summary: "Baldur versus a 32-radix AWGR network: power and per-hop latency",
    version: 1,
    labels: &[],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// The Sec. VII AWGR comparison at 32 nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AwgrComparison {
    /// Baldur W/node (TL chips only).
    pub baldur_w: f64,
    /// AWGR W/node (receivers, SerDes, buffers, wavelength converters).
    pub awgr_w: f64,
    /// Baldur per-hop latency, ns.
    pub baldur_latency_ns: f64,
    /// AWGR header-processing latency, ns.
    pub awgr_latency_ns: f64,
}

/// Regenerates the AWGR comparison.
pub fn awgr_comparison() -> AwgrComparison {
    let model = crate::power::awgr::AwgrModel::paper();
    AwgrComparison {
        baldur_w: crate::power::awgr::baldur_32node_tl_only_w(),
        awgr_w: model.per_node_w(),
        baldur_latency_ns: crate::power::awgr::baldur_32node_latency_ns(),
        awgr_latency_ns: model.header_latency_ns(),
    }
}

fn run_hook(_sw: &Sweep, _p: &Params) -> Result<Output, BaldurError> {
    let c = awgr_comparison();
    let mut out = String::new();
    section(
        &mut out,
        "Sec. VII: Baldur (m=3) vs 32-radix AWGR, 32 nodes",
    );
    outln!(out, "power  (excl. common node xcvr/serdes):");
    outln!(
        out,
        "  baldur {:>6.2} W/node   awgr {:>6.2} W/node   ({:.1}x)",
        c.baldur_w,
        c.awgr_w,
        c.awgr_w / c.baldur_w
    );
    outln!(out, "per-hop processing latency:");
    outln!(
        out,
        "  baldur {:>6.2} ns       awgr {:>6.1} ns      ({:.0}x)",
        c.baldur_latency_ns,
        c.awgr_latency_ns,
        c.awgr_latency_ns / c.baldur_latency_ns
    );
    outln!(
        out,
        "(paper: 0.7 W vs 4.2 W; 90 ns electrical header processing)"
    );
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("awgr", &c)?),
        files: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awgr_numbers() {
        let c = awgr_comparison();
        assert!(c.awgr_w / c.baldur_w > 5.0);
        assert!(c.awgr_latency_ns / c.baldur_latency_ns > 50.0);
    }
}

//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **Wiring randomization** — the expansion property (Sec. IV-E): the
//!    randomized multi-butterfly versus a structured dilated butterfly
//!    under the adversarial transpose permutation.
//! 2. **Binary exponential backoff** — retransmission throttling under a
//!    hotspot.
//!
//! (The third design knob, path multiplicity, is Table V: the `table5`
//! experiment.)

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::{all_ok, BaldurError};
use crate::net::config::BaldurParams;
use crate::net::droptool;
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{
    fmt_ns, json_of, no_overrides, outln, section, ExperimentSpec, Output, Params,
};
use crate::sweep::Sweep;

// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "ablation",
    artifact: "Sec. IV-E",
    summary: "wiring-randomization and exponential-backoff ablations",
    version: VERSION,
    labels: &["wiring_burst", "wiring_sim", "backoff"],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// The wiring ablation: randomized (expansion) versus dilated-butterfly
/// (structured) inter-stage connections, under an adversarial pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WiringAblation {
    /// Pattern used.
    pub pattern: String,
    /// Worst-case burst drop rate, randomized wiring.
    pub randomized_burst_drop: f64,
    /// Worst-case burst drop rate, dilated wiring.
    pub dilated_burst_drop: f64,
    /// Steady-state sim report, randomized wiring.
    pub randomized: LatencyReport,
    /// Steady-state sim report, dilated wiring.
    pub dilated: LatencyReport,
}

/// Runs the randomization ablation (paper Sec. IV-E: expansion makes the
/// network immune to worst-case permutations; without it, structured
/// permutations concentrate on a few internal paths).
pub fn wiring_ablation(cfg: &EvalConfig) -> Result<WiringAblation, BaldurError> {
    wiring_ablation_on(&cfg.sweep(), cfg)
}

/// [`wiring_ablation`] on a caller-provided [`Sweep`]: the two burst
/// analyses and the two steady-state runs are four independent cached
/// jobs. Errs when any of the four fails — the ablation is a paired
/// comparison, meaningless with a side missing.
pub fn wiring_ablation_on(sw: &Sweep, cfg: &EvalConfig) -> Result<WiringAblation, BaldurError> {
    use crate::topo::multibutterfly::Wiring;
    let pattern = Pattern::Transpose;
    let nodes = cfg.nodes.next_power_of_two();
    let burst_items: Vec<(u32, u32, Pattern, u64, Wiring)> = [Wiring::Randomized, Wiring::Dilated]
        .into_iter()
        .map(|w| (nodes, 4, pattern, cfg.seed, w))
        .collect();
    let bursts = all_ok(
        "wiring_burst",
        sw.try_map_versioned(
            "wiring_burst",
            VERSION,
            burst_items,
            |(n, m, p, seed, w)| droptool::worst_case_with_wiring(*n, *m, *p, *seed, *w).drop_rate,
        ),
    )?;
    let sim_items: Vec<RunConfig> = [Wiring::Randomized, Wiring::Dilated]
        .into_iter()
        .map(|wiring| {
            let params = BaldurParams {
                wiring,
                ..BaldurParams::paper_for(u64::from(cfg.nodes))
            };
            RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern,
                        load: 0.7,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            }
        })
        .collect();
    let mut sims = all_ok(
        "wiring_sim",
        sw.try_map_versioned("wiring_sim", VERSION, sim_items, run),
    )?;
    let (randomized, dilated) = match (sims.pop(), sims.pop()) {
        (Some(d), Some(r)) => (r, d),
        _ => {
            return Err(BaldurError::MissingResult {
                label: "wiring_sim".to_string(),
                what: "two wiring configs in, two reports out".to_string(),
            })
        }
    };
    Ok(WiringAblation {
        pattern: pattern.name().into(),
        randomized_burst_drop: bursts[0],
        dilated_burst_drop: bursts[1],
        randomized,
        dilated,
    })
}

/// The backoff ablation: binary exponential backoff on versus off under a
/// congested pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackoffAblation {
    /// With BEB (the paper's design).
    pub with_backoff: LatencyReport,
    /// Without BEB.
    pub without_backoff: LatencyReport,
}

/// Runs the binary-exponential-backoff ablation: a congested-but-
/// completable configuration (multiplicity 2, transpose at 0.9 load)
/// where retransmission pressure is real and BEB's throttling shows up
/// as fewer wasted traversals.
pub fn backoff_ablation(cfg: &EvalConfig) -> Result<BackoffAblation, BaldurError> {
    backoff_ablation_on(&cfg.sweep(), cfg)
}

/// [`backoff_ablation`] on a caller-provided [`Sweep`] — the on/off runs
/// are two independent cached jobs. Errs when either side fails (a
/// paired comparison).
pub fn backoff_ablation_on(sw: &Sweep, cfg: &EvalConfig) -> Result<BackoffAblation, BaldurError> {
    let items: Vec<RunConfig> = [true, false]
        .into_iter()
        .map(|backoff| {
            let params = BaldurParams {
                backoff,
                multiplicity: 2,
                ..BaldurParams::paper_for(u64::from(cfg.nodes))
            };
            RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern: Pattern::Transpose,
                        load: 0.9,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            }
        })
        .collect();
    let mut reports = all_ok(
        "backoff",
        sw.try_map_versioned("backoff", VERSION, items, run),
    )?;
    let (with_backoff, without_backoff) = match (reports.pop(), reports.pop()) {
        (Some(wo), Some(w)) => (w, wo),
        _ => {
            return Err(BaldurError::MissingResult {
                label: "backoff".to_string(),
                what: "two backoff configs in, two reports out".to_string(),
            })
        }
    };
    Ok(BackoffAblation {
        with_backoff,
        without_backoff,
    })
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let w = wiring_ablation_on(sw, &cfg)?;
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Ablation 1: wiring randomization ({} nodes, {}, load 0.7)",
            cfg.nodes, w.pattern
        ),
    );
    outln!(out, "{:>22} | {:>12} | {:>12}", "", "randomized", "dilated");
    outln!(
        out,
        "{:>22} | {:>11.2}% | {:>11.2}%",
        "worst-case burst drop",
        w.randomized_burst_drop * 100.0,
        w.dilated_burst_drop * 100.0
    );
    outln!(
        out,
        "{:>22} | {:>11.3}% | {:>11.3}%",
        "steady-state drop",
        w.randomized.drop_rate * 100.0,
        w.dilated.drop_rate * 100.0
    );
    outln!(
        out,
        "{:>22} | {:>12} | {:>12}",
        "avg latency",
        fmt_ns(w.randomized.avg_ns),
        fmt_ns(w.dilated.avg_ns)
    );
    outln!(
        out,
        "{:>22} | {:>12} | {:>12}",
        "p99 latency",
        fmt_ns(w.randomized.p99_ns),
        fmt_ns(w.dilated.p99_ns)
    );
    outln!(
        out,
        "(expansion via randomization is what defuses structured permutations)"
    );

    let b = backoff_ablation_on(sw, &cfg)?;
    section(
        &mut out,
        &format!(
            "Ablation 2: binary exponential backoff (m=2, transpose @ 0.9, {} nodes)",
            cfg.nodes
        ),
    );
    outln!(out, "{:>22} | {:>12} | {:>12}", "", "with BEB", "without");
    outln!(
        out,
        "{:>22} | {:>12} | {:>12}",
        "retransmissions",
        b.with_backoff.retransmissions,
        b.without_backoff.retransmissions
    );
    outln!(
        out,
        "{:>22} | {:>11.2}% | {:>11.2}%",
        "traversal drop rate",
        b.with_backoff.drop_rate * 100.0,
        b.without_backoff.drop_rate * 100.0
    );
    outln!(
        out,
        "{:>22} | {:>12} | {:>12}",
        "avg latency",
        fmt_ns(b.with_backoff.avg_ns),
        fmt_ns(b.without_backoff.avg_ns)
    );
    outln!(
        out,
        "{:>22} | {:>12} | {:>12}",
        "delivered",
        b.with_backoff.delivered,
        b.without_backoff.delivered
    );
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("ablation", &(w, b))?),
        files: Vec::new(),
    })
}

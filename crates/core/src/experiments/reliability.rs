//! Sec. IV-F: timing-jitter reliability analysis.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::{all_ok, BaldurError};
use crate::registry::{json_of, outln, section, Axis, AxisKind, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;
use crate::tl::reliability::JitterModel;

const LABEL: &str = "reliability";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "reliability",
    artifact: "Sec. IV-F",
    summary: "timing-jitter error probability, analytic and Monte Carlo",
    version: VERSION,
    labels: &[LABEL],
    axes: &[
        Axis {
            name: "samples",
            kind: AxisKind::U64,
            default: "2000000",
            help: "Monte Carlo samples per threshold",
        },
        Axis {
            name: "seed",
            kind: AxisKind::U64,
            // The standalone harness has always defaulted the Monte
            // Carlo seed to 7 (distinct from the simulation master
            // seed); `--seed` overrides both.
            default: "7",
            help: "Monte Carlo seed",
        },
    ],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: all_figures_overrides,
    run: run_hook,
};

// `all_figures` has always run fewer samples, seeded from the master
// seed rather than the standalone default of 7.
fn all_figures_overrides(cfg: &EvalConfig) -> Vec<(&'static str, String)> {
    vec![
        ("samples", "500000".to_string()),
        ("seed", cfg.seed.to_string()),
    ]
}

/// The Sec. IV-F reliability summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Jitter sigma, ps.
    pub sigma_ps: f64,
    /// Margin, ps (0.42T).
    pub margin_ps: f64,
    /// Margin in sigmas.
    pub margin_sigmas: f64,
    /// Analytic per-transition error probability.
    pub analytic_error_probability: f64,
    /// Monte Carlo check points: `(threshold_sigmas, mc, analytic)`.
    pub monte_carlo: Vec<(f64, f64, f64)>,
}

/// Regenerates the Sec. IV-F reliability analysis. Errs when any Monte
/// Carlo job fails: a partial threshold table would silently misstate
/// the tail comparison.
pub fn reliability(samples: u64, seed: u64) -> Result<ReliabilityReport, BaldurError> {
    reliability_on(&Sweep::new(0), samples, seed)
}

/// [`reliability`] on a caller-provided [`Sweep`] — the Monte Carlo
/// threshold points fan out (and cache) independently.
pub fn reliability_on(
    sw: &Sweep,
    samples: u64,
    seed: u64,
) -> Result<ReliabilityReport, BaldurError> {
    let m = JitterModel::paper();
    let items: Vec<(f64, u64, u64)> = [1.0, 2.0, 3.0, 3.5]
        .into_iter()
        .map(|thr| (thr, samples, seed))
        .collect();
    let monte_carlo = all_ok(
        LABEL,
        sw.try_map_versioned(LABEL, VERSION, items, |(thr, samples, seed)| {
            let m = JitterModel::paper();
            (
                *thr,
                m.monte_carlo_exceedance(*thr, *samples, *seed),
                crate::tl::reliability::normal_tail(*thr),
            )
        }),
    )?;
    Ok(ReliabilityReport {
        sigma_ps: m.sigma_ps(),
        margin_ps: m.margin_ps(),
        margin_sigmas: m.margin_sigmas(),
        analytic_error_probability: m.error_probability(),
        monte_carlo,
    })
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let samples = p.u64("samples")?;
    let seed = p.u64("seed")?;
    let r = reliability_on(sw, samples, seed)?;
    let mut out = String::new();
    section(
        &mut out,
        "Sec. IV-F reliability (jitter N(0, 1.53 ps^2), margin 0.42T)",
    );
    outln!(out, "sigma                 {:>10.3} ps", r.sigma_ps);
    outln!(
        out,
        "margin                {:>10.3} ps ({:.2} sigma)",
        r.margin_ps,
        r.margin_sigmas
    );
    outln!(
        out,
        "analytic P(error)     {:>10.2e}  (paper: ~1e-9)",
        r.analytic_error_probability
    );
    outln!(out, "\nMonte Carlo validation ({samples} samples):");
    outln!(out, "threshold | measured   | analytic");
    for (thr, mc, an) in &r.monte_carlo {
        outln!(out, "{thr:>8.1}s | {mc:>10.3e} | {an:>10.3e}");
    }
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("reliability", &r)?),
        files: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_is_1e_minus_9_class() {
        let r = reliability(100_000, 1).expect("no faults injected here");
        assert!(r.analytic_error_probability < 1e-8);
        for (_, mc, an) in &r.monte_carlo {
            if *an > 1e-3 {
                assert!((mc / an - 1.0).abs() < 0.25, "{mc} vs {an}");
            }
        }
    }
}

//! One experiment per table/figure of the paper's evaluation.
//!
//! This used to be a single thousand-line module; it is now a directory
//! of per-artifact modules. Each module exports its row types and
//! experiment functions (re-exported here, so `experiments::figure6`
//! and friends keep their historical paths) and registers one
//! [`crate::registry::ExperimentSpec`] with the experiment registry —
//! the bench binaries, the `all_figures` driver, the docs table, and
//! the completeness test all enumerate [`crate::registry::all`] instead
//! of naming modules.
//!
//! The default parameters are sized to run in seconds-to-minutes — pass
//! larger [`EvalConfig`] values to approach the paper's full 1,024-node
//! × 10,000-packet setup.

use serde::{Deserialize, Serialize};

use crate::sweep::Sweep;

pub(crate) mod ablation;
pub(crate) mod awgr;
pub(crate) mod buffers;
pub(crate) mod chaos;
pub(crate) mod droptool;
pub(crate) mod faults;
pub(crate) mod fig10;
pub(crate) mod fig5;
pub(crate) mod fig6;
pub(crate) mod fig7;
pub(crate) mod fig8;
pub(crate) mod fig9;
pub(crate) mod overload;
pub(crate) mod packaging;
pub(crate) mod perf;
pub(crate) mod reliability;
pub(crate) mod saturation;
pub(crate) mod scaling;
pub(crate) mod table5;
pub(crate) mod tables34;
pub(crate) mod topologies;

pub use ablation::{
    backoff_ablation, backoff_ablation_on, wiring_ablation, wiring_ablation_on, BackoffAblation,
    WiringAblation,
};
pub use awgr::{awgr_comparison, AwgrComparison};
pub use buffers::{buffer_sizing, buffer_sizing_on};
pub use chaos::{chaos, chaos_on, ChaosRow};
pub use droptool::{droptool_study, droptool_study_on, DropRow};
pub use faults::{degradation, degradation_lineup_on, degradation_on, DegradationRow};
pub use fig10::{figure10, figure10_on, Fig10Row};
pub use fig5::{figure5, Fig5Waveform};
pub use fig6::{figure6, figure6_lineup_on, figure6_on, Fig6Row};
pub use fig7::{fig7_geomeans, figure7, figure7_on, normalize_fig7, Fig7Row};
pub use fig8::{figure8, figure8_on};
pub use fig9::{figure9, figure9_on, Fig9Row};
pub use overload::{overload, overload_network, overload_on, storm_pattern, OverloadRow};
pub use perf::{
    bench_report, install_memory_probe, install_wall_clock, ops_report, override_samples,
    peak_rss_bytes, wall_clock_installed, wall_now_ns, BenchRecord, BenchReport, Counters,
    DeltaRecord, OpsReport, OpsRow, WallStats, MIN_SAMPLES, SCHEMA as PERF_SCHEMA,
};
pub use reliability::{reliability, reliability_on, ReliabilityReport};
pub use saturation::{saturation, saturation_lineup_on, saturation_on, SaturationRow};
pub use scaling::{scaling_curves, scaling_curves_on, ScalingRow};
pub use table5::{table_v, table_v_on, TableVRow};
pub use topologies::{topology_comparison, topology_comparison_on, TopologyRow};

/// Shared sizing knobs for the simulation-backed experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Active server nodes (paper: 1,024).
    pub nodes: u32,
    /// Packets injected per node for open-loop runs (paper: 10,000).
    pub packets_per_node: u32,
    /// Rounds per pair for ping-pong runs.
    pub pingpong_rounds: u32,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for sweeps (0 = all cores).
    pub threads: usize,
}

impl EvalConfig {
    /// A configuration that completes the full figure set in minutes.
    pub fn quick() -> Self {
        EvalConfig {
            nodes: 256,
            packets_per_node: 300,
            pingpong_rounds: 50,
            seed: 0xBA1D,
            threads: 0,
        }
    }

    /// A small configuration for tests (seconds).
    pub fn tiny() -> Self {
        EvalConfig {
            nodes: 64,
            packets_per_node: 60,
            pingpong_rounds: 10,
            seed: 0xBA1D,
            threads: 0,
        }
    }

    /// The paper's full scale (expect long runtimes).
    pub fn paper() -> Self {
        EvalConfig {
            nodes: 1_024,
            packets_per_node: 10_000,
            pingpong_rounds: 1_000,
            seed: 0xBA1D,
            threads: 0,
        }
    }

    /// A one-shot uncached [`Sweep`] honoring `self.threads` (0 resolves
    /// through `BALDUR_THREADS`, then the machine's parallelism) — what
    /// the plain experiment wrappers fan out on.
    pub fn sweep(&self) -> Sweep {
        Sweep::new(self.threads)
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::quick()
    }
}

/// Maps `f` over `items` on a thread pool, preserving order.
///
/// Retained as a thin shim over [`baldur_sim::par::par_map`] (the
/// work-stealing pool) for callers that don't need sweep accounting or
/// caching; the experiment functions themselves go through [`Sweep`].
pub fn parallel_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    crate::sim::par::par_map(workers, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let r = parallel_map(4, (0..100).collect::<Vec<i32>>(), |&x| x * 2);
        assert_eq!(r, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}

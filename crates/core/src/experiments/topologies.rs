//! Staged-topology comparison: the paper's isomorphism claim ("we expect
//! Baldur to achieve similar results with other multi-stage topologies")
//! plus the value of randomization.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{
    fmt_ns, json_of, no_overrides, outln, section, ExperimentSpec, Output, Params,
};
use crate::sweep::Sweep;

const LABEL: &str = "topologies";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "topologies",
    artifact: "Sec. VII",
    summary: "Baldur on three staged topologies: the isomorphism claim",
    version: VERSION,
    labels: &[LABEL],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// One row of the staged-topology comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyRow {
    /// Topology name.
    pub topology: String,
    /// Pattern name.
    pub pattern: String,
    /// The measured report.
    pub report: LatencyReport,
}

/// Compares Baldur running on its randomized multi-butterfly against the
/// structured Omega (and the dilated butterfly), testing the paper's
/// claim that multi-stage topologies behave similarly — and showing where
/// randomization matters (structured adversarial permutations).
pub fn topology_comparison(cfg: &EvalConfig) -> Vec<TopologyRow> {
    topology_comparison_on(&cfg.sweep(), cfg)
}

/// [`topology_comparison`] on a caller-provided [`Sweep`].
pub fn topology_comparison_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<TopologyRow> {
    use crate::net::config::{BaldurParams, StagedTopology};
    use crate::topo::multibutterfly::Wiring;
    let variants: [(&str, StagedTopology, Wiring); 3] = [
        (
            "multibutterfly",
            StagedTopology::MultiButterfly,
            Wiring::Randomized,
        ),
        (
            "dilated_butterfly",
            StagedTopology::MultiButterfly,
            Wiring::Dilated,
        ),
        ("omega", StagedTopology::Omega, Wiring::Randomized),
    ];
    let patterns = [Pattern::UniformRandom, Pattern::Transpose];
    let mut items: Vec<(String, String, RunConfig)> = Vec::new();
    for &(name, topo, wiring) in &variants {
        for &pattern in &patterns {
            let params = BaldurParams {
                topology: topo,
                wiring,
                ..BaldurParams::paper_for(u64::from(cfg.nodes))
            };
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern,
                        load: 0.6,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            items.push((name.to_string(), pattern.name().to_string(), rc));
        }
    }
    sw.map_versioned(LABEL, VERSION, items, |(name, pattern, rc)| TopologyRow {
        topology: name.clone(),
        pattern: pattern.clone(),
        report: run(rc),
    })
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let rows = topology_comparison_on(sw, &cfg);
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Baldur on three staged topologies ({} nodes, load 0.6)",
            cfg.nodes
        ),
    );
    outln!(
        out,
        "{:>18} | {:>16} | {:>10} | {:>10} | {:>8}",
        "topology",
        "pattern",
        "avg",
        "p99",
        "drop %"
    );
    for r in &rows {
        outln!(
            out,
            "{:>18} | {:>16} | {:>10} | {:>10} | {:>8.3}",
            r.topology,
            r.pattern,
            fmt_ns(r.report.avg_ns),
            fmt_ns(r.report.p99_ns),
            r.report.drop_rate * 100.0
        );
    }
    outln!(
        out,
        "(uniform traffic: all three are near-identical — the paper's"
    );
    outln!(
        out,
        " isomorphism claim; transpose: only randomized wiring survives)"
    );
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("topologies", &rows)?),
        files: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_rows_cover_all_variant_pattern_pairs() {
        let rows = topology_comparison(&EvalConfig {
            nodes: 32,
            packets_per_node: 10,
            ..EvalConfig::tiny()
        });
        assert_eq!(rows.len(), 6);
    }
}
